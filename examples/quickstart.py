#!/usr/bin/env python3
"""Quickstart: stream one layered clip over a congested bottleneck.

Builds the paper's T1 scenario -- one quality-adaptive RAP flow sharing a
bottleneck with 9 plain RAP flows and 10 TCP flows -- runs it for 40
simulated seconds, and prints what happened: the rate the congestion
controller obtained, how the layer count tracked it, and the receiver's
quality-of-experience counters.

Run:  python examples/quickstart.py
"""

from repro.analysis import ascii_chart, format_kv, sparkline
from repro.experiments.common import PaperWorkload


def main() -> None:
    workload = PaperWorkload(k_max=2, duration=40.0, seed=1)
    result = workload.run()

    t = result.tracer
    print(ascii_chart(
        t.get("rate"), overlay=t.get("consumption"),
        title="Transmission rate (*) vs consumption rate (o), bytes/s"))
    print("Active layers over time:")
    print("  " + sparkline(t.get("layers").values))
    print()
    print(format_kv(result.summary(), title="Session summary"))
    print(format_kv(workload.network_summary(), title="Network summary"))

    stalls = result.playout.stall_count
    print(f"Playback stalled {stalls} time(s) -- the paper's goal is "
          "zero: quality adapts so the base layer never starves.")


if __name__ == "__main__":
    main()
