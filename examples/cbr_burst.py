#!/usr/bin/env python3
"""Responsiveness to a bandwidth collapse (the paper's Figure 13 story).

At t=30 s a CBR source claims half the bottleneck; at t=60 s it leaves.
A well-behaved quality-adaptive stream should shed enhancement layers
quickly (drawing on every layer's buffer), keep the base layer playing
throughout, and rebuild quality once the bandwidth returns.

Run:  python examples/cbr_burst.py
"""

from repro.analysis import ascii_chart, format_kv, sparkline
from repro.experiments.fig13_cbr_step import run


def main() -> None:
    result = run(k_max=4, seed=1)
    t = result.session.tracer

    print(ascii_chart(
        t.get("rate"), overlay=t.get("consumption"),
        title="Transmission (*) vs consumption (o); CBR burst 30-60 s"))
    print("Active layers (| marks ~30 s and ~60 s):")
    line = sparkline(t.get("layers").values, width=90)
    third = len(line) // 3
    print("  " + line[:third] + "|" + line[third:2 * third] + "|"
          + line[2 * third:])
    print()
    print(format_kv(result.phase_means(),
                    title="Mean quality by phase"))
    stalls = result.session.playout.stall_count
    print(f"\nBase-layer stalls during the collapse: {stalls} "
          "(the reception of the base layer is never jeopardized).")


if __name__ == "__main__":
    main()
