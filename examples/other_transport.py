#!/usr/bin/env python3
"""Quality adaptation over a different AIMD transport (section 7).

The adapter never asks *how* its transport controls congestion -- only
for a clock, a rate, a slope estimate, and delivery/backoff events. This
example streams the same clip over RAP (rate-based, the paper's choice)
and over a TCP-like window-based AIMD transport, side by side.

Run:  python examples/other_transport.py
"""

from repro.analysis import format_kv, sparkline
from repro.experiments.common import PaperWorkload, WorkloadConfig
from repro.transport import RapSource, WindowAimdSource


def stream_over(name, transport_cls):
    workload = PaperWorkload(WorkloadConfig(seed=1, duration=40.0),
                             transport_cls=transport_cls)
    result = workload.run()
    print(f"--- {name} ---")
    print("  layers: " + sparkline(result.tracer.get("layers").values,
                                   width=70))
    summary = result.summary()
    print(format_kv({
        "mean_rate_Bps": summary["mean_rate"],
        "mean_layers": summary["mean_layers"],
        "quality_changes": summary["quality_changes"],
        "stalls": summary["stalls_receiver"],
    }))


def main() -> None:
    stream_over("RAP (rate-based AIMD, the paper's transport)",
                RapSource)
    stream_over("Window AIMD (TCP-like ACK clocking)",
                WindowAimdSource)
    print("Same adapter, same formulas -- the slope S = P/srtt^2 and the")
    print("halve-on-congestion behaviour are all it relies on. RAP's")
    print("smooth pacing buys visibly steadier quality.")


if __name__ == "__main__":
    main()
