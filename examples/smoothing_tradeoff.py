#!/usr/bin/env python3
"""The smoothing knob: K_max trades quality stability for reactivity.

Sweeps K_max over a wider range than the paper's Figure 12 and prints
the two sides of the trade:

- changes in quality (layer adds + drops) -- smaller is calmer;
- time until the stream first reaches its best quality -- smaller is
  snappier.

Run:  python examples/smoothing_tradeoff.py
"""

from repro.experiments.fig12_kmax_sweep import run


def main() -> None:
    result = run(k_values=(1, 2, 3, 4, 5, 8), duration=60.0)
    print(result.render())
    print("K_max=1 is 'no smoothing': buffering only ever targets one")
    print("backoff, so every loss event risks a quality flap. Large")
    print("K_max barely changes quality but holds more buffering and")
    print("takes longer to reach (and re-reach) the best quality.")


if __name__ == "__main__":
    main()
