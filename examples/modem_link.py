#!/usr/bin/env python3
"""The paper's modem argument: a link that fits 2.9 layers.

Section 3.1 rejects adding layers based on average bandwidth with this
scenario: if a link sustains 2.9 layers' worth of throughput, an
average-bandwidth rule never delivers the third layer (2.9 < 3), while
the buffer-based rule streams three layers "90% of the time", riding
receiver buffering through the shortfall.

This example runs a lone adaptive flow on exactly such a link under all
three add rules and reports the time spent at three or more layers.

Run:  python examples/modem_link.py
"""

from repro.experiments.ablation_add_rules import run


def main() -> None:
    result = run(duration=90.0)
    print(result.render())
    print("Interpretation: the buffer-based rule (the paper's choice)")
    print("delivers the third layer a large fraction of the time; the")
    print("average-bandwidth rule (the rejected alternative) rarely or")
    print("never does, because the average never clears 3 layers.")


if __name__ == "__main__":
    main()
