"""Setuptools shim.

Kept alongside pyproject.toml so the package can be installed in
environments without the ``wheel`` package (where PEP 517 editable installs
fail): ``python setup.py develop`` there, ``pip install -e .`` elsewhere.
"""

from setuptools import setup

setup()
