"""Benchmark the experiment runner: cold misses vs warm cache hits.

The acceptance bar for the orchestration layer is that a warm
`repro-experiments all` beats the cold serial baseline by >=5x; this
benchmark tracks the same ratio on a cheap experiment subset so the
trajectory stays visible without multi-minute table runs.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.cache import ResultCache
from repro.experiments.runner import run_experiments

NAMES = ["fig01", "fig02", "fig03", "fig04", "fig05"]


def test_cold_serial(benchmark, tmp_path):
    records = run_once(
        benchmark, run_experiments, NAMES,
        cache=ResultCache(tmp_path / "cache"))
    assert all(not r.cache_hit for r in records)


def test_warm_cache(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = run_experiments(NAMES, cache=cache)
    warm = run_once(benchmark, run_experiments, NAMES, cache=cache)
    assert all(r.cache_hit for r in warm)
    assert [r.text for r in warm] == [r.text for r in cold]
