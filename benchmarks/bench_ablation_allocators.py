"""Benchmark: allocator ablation (optimal vs section 2.3 strawmen)."""

from conftest import emit

from repro.experiments import ablation_allocators


def test_ablation_allocators(once):
    result = once(ablation_allocators.run, seeds=(1, 2))
    emit(result.render())
    assert set(result.metrics) == {"optimal", "equal_share",
                                   "base_first"}
