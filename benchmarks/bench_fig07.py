"""Benchmark: regenerate Figure 7 (double-backoff scenarios)."""

from conftest import emit

from repro.experiments import fig07_double_backoff


def test_fig07_double_backoff(once):
    result = once(fig07_double_backoff.run)
    emit(result.render())
    assert len(result.rows) >= 3
