"""Benchmark: regenerate Figure 1 (RAP sawtooth)."""

from conftest import emit

from repro.experiments import fig01_rap_sawtooth


def test_fig01_rap_sawtooth(once):
    result = once(fig01_rap_sawtooth.run)
    emit(result.render())
    assert result.backoffs > 0
    assert result.utilization > 0.7
