"""Benchmark: adaptive vs fixed-quality streaming."""

from conftest import emit

from repro.experiments import ablation_static


def test_ablation_static(once):
    result = once(ablation_static.run, seeds=(1, 2))
    emit(result.render())
    adaptive = next(r for r in result.rows if r.scheme == "adaptive")
    assert adaptive.stalls == 0
