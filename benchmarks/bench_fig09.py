"""Benchmark: regenerate Figure 9 (states ordered by total)."""

from conftest import emit

from repro.experiments import fig09_state_order


def test_fig09_state_order(once):
    result = once(fig09_state_order.run)
    emit(result.render())
    totals = [row[1] for row in result.rows()]
    assert totals == sorted(totals)
