"""Benchmark: regenerate Figure 11 (the 40 s K_max=2 T1 trace)."""

from conftest import emit

from repro.experiments import fig11_trace_kmax2


def test_fig11_trace_kmax2(once):
    result = once(fig11_trace_kmax2.run)
    emit(result.render())
    assert result.session.playout.stall_count == 0
    t = result.session.tracer
    assert t.get("buffer_L0").mean() >= t.get("buffer_L3").mean()
