"""Benchmark: the quality adapter over RAP vs window AIMD (section 7)."""

from conftest import emit

from repro.experiments import ablation_transport


def test_ablation_transport(once):
    result = once(ablation_transport.run, seeds=(1, 2))
    emit(result.render())
    assert {r.transport for r in result.rows} == {"rap", "window-aimd"}
