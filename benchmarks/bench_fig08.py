"""Benchmark: regenerate Figure 8 (buffer states for k backoffs)."""

from conftest import emit

from repro.experiments import fig08_buffer_states


def test_fig08_buffer_states(once):
    result = once(fig08_buffer_states.run)
    emit(result.render())
    assert len(result.rows()) == 2 * result.k_max
