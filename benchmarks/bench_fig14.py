"""Benchmark: regenerate Figure 14 (scenario-2 geometry, appendix)."""

from conftest import emit

from repro.experiments import fig14_scenario2_geometry


def test_fig14_scenario2_geometry(once):
    result = once(fig14_scenario2_geometry.run)
    emit(result.render())
