"""Benchmark: regenerate Figure 4 (optimal buffer distribution)."""

from conftest import emit

from repro.experiments import fig04_optimal_alloc


def test_fig04_optimal_alloc(once):
    result = once(fig04_optimal_alloc.run)
    emit(result.render())
    assert result.shares[0] == max(result.shares)
