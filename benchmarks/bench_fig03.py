"""Benchmark: regenerate Figure 3 (phase geometry, analytic)."""

from conftest import emit

from repro.experiments import fig03_phase_geometry


def test_fig03_phase_geometry(once):
    result = once(fig03_phase_geometry.run)
    emit(result.render())
    assert result.draining_deficit_area > 0
