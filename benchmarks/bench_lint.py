#!/usr/bin/env python3
"""repro-lint throughput benchmark: emits ``BENCH_lint.json``.

The lint gate runs on every CI push, so its wall-clock cost is a budget,
not a curiosity: the whole-program flow rules (RL005-RL016) parse every
file, build the project symbol tables, the call graph, and the async
graph, and run the dataflow engine over every function — an accidental
quadratic there would tax every commit. This script times four
configurations over ``src/``:

- ``per_file``: RL001-RL004 only (the pre-dataflow cost floor);
- ``full``: all rules including the whole-program flow analysis;
- ``cold``: all rules through a fresh incremental cache (analysis plus
  the cost of writing the index);
- ``warm``: the same run again -- a full cache hit that replays stored
  findings without parsing a single file.

A fifth section, ``profile``, breaks the full run down per rule and
shared phase (``project:build``, ``project:asyncgraph``) so a budget
regression names its culprit instead of just tripping the bound.

The CI job fails if the quick full-tree run exceeds a hard wall-clock
bound, keeping "lint the tree" an interactive-speed operation, and if
the warm/cold speedup drops below 5x -- the incremental cache is only
worth its complexity while it stays an order of magnitude off the cold
path.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py            # full
    PYTHONPATH=src python benchmarks/bench_lint.py --quick    # CI smoke

The JSON schema is checked by the ``benchmark-smoke`` CI job; bump
``SCHEMA`` and update that job when the layout changes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
import time

from repro.lint.cli import lint_paths
from repro.lint.profile import Profiler
from repro.lint.rules import default_rules
from repro.lint.rules.base import FlowRule

SCHEMA = 3

#: Keys every report must carry, nested section by section. The CI smoke
#: job fails when a produced report stops matching this shape.
REQUIRED_KEYS = {
    "schema": None,
    "quick": None,
    "per_file": ("files", "violations", "seconds", "files_per_sec"),
    "full": ("files", "violations", "seconds", "files_per_sec"),
    "cold": ("files", "violations", "seconds", "files_per_sec"),
    "warm": ("files", "violations", "seconds", "files_per_sec"),
    "speedup": None,
    "profile": None,
}

_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")


def bench_lint(
    paths: list[str], flow: bool, cache_dir: pathlib.Path | None = None
) -> dict:
    """Lint ``paths`` once, with or without the whole-program rules."""
    rules = default_rules()
    if not flow:
        rules = tuple(r for r in rules if not isinstance(r, FlowRule))
    start = time.perf_counter()
    violations, files = lint_paths(paths, rules=rules, cache_dir=cache_dir)
    seconds = time.perf_counter() - start
    return {
        "files": files,
        "violations": len(violations),
        "seconds": seconds,
        "files_per_sec": files / seconds,
    }


def best_of(repeats: int, fn, *args) -> dict:
    """Run ``fn`` ``repeats`` times, keep the fastest (least noisy) run."""
    best = None
    for _ in range(repeats):
        sample = fn(*args)
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    return best


def bench_cache_pair(paths: list[str]) -> tuple[dict, dict]:
    """One cold run through a fresh cache, then the warm full hit."""
    with tempfile.TemporaryDirectory() as scratch:
        cache_dir = pathlib.Path(scratch)
        cold = bench_lint(paths, True, cache_dir=cache_dir)
        warm = bench_lint(paths, True, cache_dir=cache_dir)
    return cold, warm


def run_report(quick: bool, paths: list[str]) -> dict:
    repeats = 1 if quick else 3
    cold_best: dict | None = None
    warm_best: dict | None = None
    for _ in range(repeats):
        cold, warm = bench_cache_pair(paths)
        if cold_best is None or cold["seconds"] < cold_best["seconds"]:
            cold_best = cold
        if warm_best is None or warm["seconds"] < warm_best["seconds"]:
            warm_best = warm
    assert cold_best is not None and warm_best is not None
    profiler = Profiler()
    lint_paths(paths, rules=default_rules(), profiler=profiler)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "per_file": best_of(repeats, bench_lint, paths, False),
        "full": best_of(repeats, bench_lint, paths, True),
        "cold": cold_best,
        "warm": warm_best,
        "speedup": cold_best["seconds"] / warm_best["seconds"],
        "profile": profiler.report_json(),
    }


def check_schema(report: dict) -> list[str]:
    """Names of missing sections/fields (empty when the shape is right)."""
    missing = []
    for section, fields in REQUIRED_KEYS.items():
        if section not in report:
            missing.append(section)
            continue
        for field in fields or ():
            if field not in report[section]:
                missing.append(f"{section}.{field}")
    return missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repro-lint throughput benchmark (BENCH_lint.json).")
    parser.add_argument("--quick", action="store_true",
                        help="single repeat (CI smoke)")
    parser.add_argument("--paths", nargs="*", default=[_SRC],
                        help="trees to lint (default: the repo's src/)")
    parser.add_argument("--out", default="BENCH_lint.json",
                        help="output path (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_report(quick=args.quick, paths=args.paths)
    missing = check_schema(report)
    if missing:
        print(f"schema drift, missing: {', '.join(missing)}")
        return 1

    target = pathlib.Path(args.out)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    per_file = report["per_file"]
    full = report["full"]
    print(f"per-file rules : {per_file['files_per_sec']:>8,.0f} files/s "
          f"({per_file['files']} files, {per_file['seconds']:.3f}s)")
    print(f"all rules      : {full['files_per_sec']:>8,.0f} files/s "
          f"({full['files']} files, {full['seconds']:.3f}s, "
          f"flow overhead {full['seconds'] - per_file['seconds']:.3f}s)")
    cold, warm = report["cold"], report["warm"]
    print(f"cold cache     : {cold['seconds']:.3f}s  "
          f"warm cache: {warm['seconds']:.3f}s  "
          f"speedup {report['speedup']:.1f}x")
    slowest = sorted(report["profile"].items(),
                     key=lambda item: -item[1])[:3]
    if slowest:
        print("slowest rules  : " + "  ".join(
            f"{label} {seconds:.3f}s" for label, seconds in slowest))
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
