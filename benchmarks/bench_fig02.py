"""Benchmark: regenerate Figure 2 (mechanism overview, fluid model)."""

from conftest import emit

from repro.experiments import fig02_overview


def test_fig02_overview(once):
    result = once(fig02_overview.run)
    emit(result.render())
    assert result.tracer.get("layers").final() == 2
