"""Benchmark: regenerate Figure 13 (responsiveness to a CBR burst)."""

from conftest import emit

from repro.experiments import fig13_cbr_step


def test_fig13_cbr_step(once):
    result = once(fig13_cbr_step.run)
    emit(result.render())
    phases = result.phase_means()
    assert (phases["mean_layers_during_cbr"]
            < phases["mean_layers_before_cbr"])
    assert (phases["mean_layers_after_cbr"]
            > phases["mean_layers_during_cbr"])
    assert result.session.playout.stall_count == 0
