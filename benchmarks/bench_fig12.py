"""Benchmark: regenerate Figure 12 (K_max smoothing sweep)."""

from conftest import emit

from repro.experiments import fig12_kmax_sweep


def test_fig12_kmax_sweep(once):
    result = once(fig12_kmax_sweep.run)
    emit(result.render())
    by_k = {row.k_max: row for row in result.rows}
    # The smoothing claim: K_max=4 changes quality no more often than
    # K_max=2.
    assert by_k[4].quality_changes <= by_k[2].quality_changes
