#!/usr/bin/env python3
"""Distributed-tracing overhead benchmark: emits ``BENCH_tracing.json``.

Three numbers the span-tracing work is judged by:

- ``off``: the 2-flow dumbbell with ``trace_spans`` disabled — the same
  workload as ``bench_engine.py``'s ``dumbbell_2flow``, so its events/s
  is directly comparable against ``BENCH_engine.json``. The
  ``--baseline`` gate enforces the ISSUE's acceptance criterion: the
  spans-off engine path must stay within 2% of the engine baseline
  (every hook call site is a single ``is None`` check when disabled);
- ``on``: the identical scenario with a shared
  :class:`~repro.telemetry.tracing.SpanRecorder` attached — adapter
  ticks and §2.2 decision events all become spans — giving the honest
  tracing-on overhead ratio;
- ``recorder``: a micro-benchmark of raw span-hook throughput
  (spans/s through one bound hook into the ring buffer).

Usage::

    PYTHONPATH=src python benchmarks/bench_tracing.py             # full
    PYTHONPATH=src python benchmarks/bench_tracing.py --quick \\
        --baseline BENCH_engine.json --max-ratio 1.02             # CI

The JSON schema is checked by the ``benchmark-smoke`` CI job; bump
``SCHEMA`` and update that job when the layout changes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.scenario import QAFlowSpec, Scenario, ScenarioConfig
from repro.sim.topology import DumbbellConfig
from repro.telemetry.tracing import SpanRecorder, TraceContext

SCHEMA = 1

#: Keys every report must carry, nested section by section (same
#: convention as bench_engine.py / bench_telemetry.py).
REQUIRED_KEYS = {
    "schema": None,
    "quick": None,
    "off": ("duration", "events", "seconds", "events_per_sec"),
    "on": ("duration", "events", "seconds", "events_per_sec",
           "spans_recorded", "traces"),
    "overhead_ratio": None,
    "recorder": ("spans", "seconds", "spans_per_sec"),
}


def build_scenario(duration: float, traced: bool) -> Scenario:
    """The bench_engine 2-flow dumbbell, with span tracing on or off."""
    return Scenario(ScenarioConfig(
        flows=(QAFlowSpec(label="qa0"), QAFlowSpec(label="qa1")),
        topology=DumbbellConfig(
            bottleneck_bandwidth=100_000.0,
            queue_capacity_packets=50,
        ),
        duration=duration,
        trace_spans=traced,
    ))


def bench_scenario(duration: float, traced: bool) -> dict:
    scenario = build_scenario(duration, traced)
    start = time.perf_counter()
    scenario.sim.run(until=duration)
    seconds = time.perf_counter() - start
    events = scenario.sim.events_processed
    out = {
        "duration": duration,
        "events": events,
        "seconds": seconds,
        "events_per_sec": events / seconds,
    }
    if traced:
        out["spans_recorded"] = scenario.spans.total_recorded
        out["traces"] = len(scenario.spans.trace_ids())
    return out


def bench_recorder(n_spans: int) -> dict:
    """Raw span-hook throughput with a typical decision payload."""
    recorder = SpanRecorder(capacity=n_spans // 2)
    hook = recorder.span_hook("qa0", TraceContext.derive(1, "bench"))
    assert hook is not None
    fields = {"rate": 12345.6, "consumption": 19500.0, "slope": 14238.7,
              "drainable": 114.2, "threshold": 1803.5, "layer": 2}
    start = time.perf_counter()
    for i in range(n_spans):
        hook(i * 1e-4, i * 1e-4, "qa.drop_rule", fields)
    seconds = time.perf_counter() - start
    return {
        "spans": recorder.total_recorded,
        "seconds": seconds,
        "spans_per_sec": n_spans / seconds,
    }


def best_of(repeats: int, fn, *args) -> dict:
    best = None
    for _ in range(repeats):
        sample = fn(*args)
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    return best


def run_report(quick: bool) -> dict:
    # A quick 5 s scenario runs in well under 100 ms of wall clock, so
    # even CI smoke affords best-of-5: the --baseline gate compares this
    # report's numbers against a separately-measured BENCH_engine.json,
    # and single-sample scheduling noise on shared runners swamps the
    # 2% margin it enforces.
    repeats = 5 if quick else 3
    duration = 5.0 if quick else 30.0
    n_spans = 100_000 if quick else 1_000_000
    off = best_of(repeats, bench_scenario, duration, False)
    on = best_of(repeats, bench_scenario, duration, True)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "off": off,
        "on": on,
        # > 1.0 means tracing costs wall clock; what the docs quote as
        # "spans-on overhead".
        "overhead_ratio": off["events_per_sec"] / on["events_per_sec"],
        "recorder": best_of(repeats, bench_recorder, n_spans),
    }


def check_schema(report: dict) -> list[str]:
    missing = []
    for section, fields in REQUIRED_KEYS.items():
        if section not in report:
            missing.append(section)
            continue
        for field in fields or ():
            if field not in report[section]:
                missing.append(f"{section}.{field}")
    return missing


def check_baseline(report: dict, baseline_path: pathlib.Path,
                   max_ratio: float) -> list[str]:
    """Failures if the spans-off path regressed vs BENCH_engine.

    Compares this report's ``off`` events/s against the baseline's
    ``dumbbell_2flow`` (same scenario, same machine, same CI run): the
    disabled tracing stack must cost at most ``(max_ratio - 1)`` of the
    engine's throughput — the ISSUE pins 2%.
    """
    baseline = json.loads(baseline_path.read_text())
    engine_eps = baseline["dumbbell_2flow"]["events_per_sec"]
    off_eps = report["off"]["events_per_sec"]
    ratio = engine_eps / off_eps
    if ratio > max_ratio:
        return [
            f"spans-off throughput regressed: {off_eps:,.0f} events/s"
            f" vs engine baseline {engine_eps:,.0f} "
            f"(ratio {ratio:.3f} > {max_ratio})"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Distributed-tracing overhead benchmark "
                    "(BENCH_tracing.json).")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, single repeat (CI smoke)")
    parser.add_argument("--out", default="BENCH_tracing.json",
                        help="output path (default: %(default)s)")
    parser.add_argument("--baseline", default=None,
                        help="BENCH_engine.json to gate the spans-off "
                             "path against")
    parser.add_argument("--max-ratio", type=float, default=1.02,
                        help="max engine/off events-per-sec ratio "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_report(quick=args.quick)
    failures = check_schema(report)
    if failures:
        print(f"schema drift, missing: {', '.join(failures)}")
        return 1

    target = pathlib.Path(args.out)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    off, on, rec = report["off"], report["on"], report["recorder"]
    print(f"spans off     : {off['events_per_sec']:>12,.0f} events/s")
    print(f"spans on      : {on['events_per_sec']:>12,.0f} events/s "
          f"({on['spans_recorded']:,} spans, {on['traces']} traces)")
    print(f"overhead ratio: {report['overhead_ratio']:.3f}x")
    print(f"span hook     : {rec['spans_per_sec']:>12,.0f} spans/s")
    print(f"wrote {target}")

    if args.baseline is not None:
        failures = check_baseline(report, pathlib.Path(args.baseline),
                                  args.max_ratio)
        for failure in failures:
            print(failure)
        if failures:
            return 1
        print(f"baseline gate : off path within {args.max_ratio}x of "
              f"{args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
