"""Benchmark: regenerate Figure 6 (filling with smoothing)."""

from conftest import emit

from repro.experiments import fig06_smoothing_phases


def test_fig06_smoothing_phases(once):
    result = once(fig06_smoothing_phases.run)
    emit(result.render())
    assert result.fluid.tracer.get("total_buffer").max() > 0
