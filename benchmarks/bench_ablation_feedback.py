"""Benchmark: receiver-buffer feedback model ablation."""

from conftest import emit

from repro.experiments import ablation_feedback


def test_ablation_feedback(once):
    result = once(ablation_feedback.run, seeds=(1, 2))
    emit(result.render())
    by_mode = {r.mode: r for r in result.rows}
    assert by_mode["send"].stalls <= by_mode["oracle"].stalls
