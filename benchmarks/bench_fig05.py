"""Benchmark: regenerate Figure 5 (sequential fill / reverse drain)."""

from conftest import emit

from repro.experiments import fig05_fill_drain


def test_fig05_fill_drain(once):
    result = once(fig05_fill_drain.run)
    emit(result.render())
    t = result.fluid.tracer
    assert t.get("buffer_L0").mean() >= t.get("buffer_L2").mean()
