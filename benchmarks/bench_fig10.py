"""Benchmark: regenerate Figure 10 (monotone filling steps)."""

from conftest import emit

from repro.experiments import fig10_filling_steps


def test_fig10_filling_steps(once):
    result = once(fig10_filling_steps.run)
    emit(result.render())
    totals = [row[2] for row in result.rows()]
    assert totals == sorted(totals)
