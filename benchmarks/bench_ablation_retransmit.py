"""Benchmark: selective base-layer retransmission (section 1.3)."""

from conftest import emit

from repro.experiments import ablation_retransmit


def test_ablation_retransmit(once):
    result = once(ablation_retransmit.run, seeds=(1, 2))
    emit(result.render())
    by = {r.scheme: r for r in result.rows}
    assert by["retransmit base"].retransmitted > 0
    assert by["no retransmission"].retransmitted == 0
