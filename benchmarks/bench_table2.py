"""Benchmark: regenerate Table 2 (drops due to poor distribution).

Shortened for the benchmark run (3 seeds, K_max in {2, 4, 8}); the
full-matrix numbers live in EXPERIMENTS.md.
"""

from conftest import emit

from repro.experiments import table2_drop_causes


def test_table2_drop_causes(once):
    result = once(table2_drop_causes.run, k_values=(2, 4, 8),
                  seeds=(1, 2, 3))
    emit(result.render())
    for (test, k), metrics in result.metrics.items():
        poor = metrics.poor_distribution_percent()
        if poor is not None:
            assert poor <= 30.0, (test, k)
