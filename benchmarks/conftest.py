"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (with
moderately shortened runs where the full version takes minutes) and
prints the rendered result, so ``pytest benchmarks/ --benchmark-only -s``
reproduces the whole evaluation section in one command. Timings reported
by pytest-benchmark measure the cost of regenerating each artifact.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Simulation experiments are deterministic and expensive; repeated
    rounds would only multiply runtime without changing the result.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def emit(text: str, head: int = 0) -> None:
    """Print a rendered artifact (optionally only its first lines)."""
    if head:
        lines = text.splitlines()
        text = "\n".join(lines[:head] + ["..."] if len(lines) > head
                         else lines)
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """``once(fn, *args, **kwargs)`` -> result, timed as one round."""
    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return _once
