#!/usr/bin/env python3
"""Fluid fast-path throughput benchmark: emits ``BENCH_fluid.json``.

Measures the two claims the fluid engine work is judged by:

- ``fluid_engine``: the scalar analytic engine solving one scripted
  paper-figure flow (a handful of closed-form epochs vs ~1500 sampler
  steps for the packet-quantum replay);
- ``batch_*``: the vectorized :class:`repro.sim.fluid_batch.
  FlowClassBatch` at 100 / 1k / 10k flows, reported as
  *events-equivalent per second* — one event-equivalent is one
  packet-transmission's worth of bytes (``sent_bytes / packet_size``),
  the unit that makes fluid and packet backends comparable;
- ``packet_calibration``: the same mechanism advanced per-quantum by
  :class:`repro.core.fluid.FluidRun`, priced in flow-simulated-seconds
  per wall second. Each batch section carries ``speedup_vs_packet`` =
  the ratio of per-flow-sim-second costs; the 10k row is the headline
  number (must stay >= 50x).

Usage::

    PYTHONPATH=src python benchmarks/bench_fluid.py            # full
    PYTHONPATH=src python benchmarks/bench_fluid.py --quick    # CI smoke

The JSON schema is checked by the ``benchmark-smoke`` CI job; bump
``SCHEMA`` and update that job when the layout changes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.core.config import QAConfig
from repro.core.fluid import FluidRun, ScriptedAimd
from repro.experiments.flock_scale import FAIR_SHARE, batch_config
from repro.sim.fluid import FluidEngine
from repro.sim.fluid_batch import FlowClassBatch

SCHEMA = 1

_BATCH_FIELDS = ("n_flows", "duration", "seconds", "flows_per_sec",
                 "events_equiv", "events_equiv_per_sec",
                 "speedup_vs_packet")

#: Keys every report must carry, nested section by section. The CI smoke
#: job fails when a produced report stops matching this shape.
REQUIRED_KEYS = {
    "schema": None,
    "quick": None,
    "fluid_engine": ("duration", "seconds", "epochs", "runs_per_sec"),
    "packet_calibration": ("duration", "seconds",
                           "flow_sim_seconds_per_sec"),
    "batch_100": _BATCH_FIELDS,
    "batch_1000": _BATCH_FIELDS,
    "batch_10000": _BATCH_FIELDS,
}

#: The fig05 fill/drain scenario: one backoff, an add ladder and a drop,
#: so both backends exercise every decision path.
_FIG05 = dict(
    config=QAConfig(layer_rate=2500, max_layers=5, k_max=1,
                    packet_size=200, startup_delay=0.5),
    initial_rate=3750.0, slope=900.0, backoffs=(28.0,), max_rate=15625.0,
    duration=40.0,
)


def _scripted() -> ScriptedAimd:
    return ScriptedAimd(_FIG05["initial_rate"], _FIG05["slope"],
                        backoff_times=_FIG05["backoffs"],
                        max_rate=_FIG05["max_rate"])


def bench_fluid_engine(repeats: int) -> dict:
    """Solve the fig05 flow analytically, ``repeats`` timed runs."""
    duration = _FIG05["duration"]
    best = None
    epochs = 0
    for _ in range(repeats):
        engine = FluidEngine(_FIG05["config"], _scripted(),
                             duration=duration, sample_period=None)
        start = time.perf_counter()
        result = engine.run()
        seconds = time.perf_counter() - start
        epochs = result.epochs
        if best is None or seconds < best:
            best = seconds
    return {
        "duration": duration,
        "seconds": best,
        "epochs": epochs,
        "runs_per_sec": 1.0 / best if best > 0 else 0.0,
    }


def bench_packet_calibration(duration: float) -> dict:
    """Per-quantum replay of the same flow: the packet-side unit cost."""
    run = FluidRun(_FIG05["config"], _scripted(), duration=duration)
    start = time.perf_counter()
    run.run()
    seconds = time.perf_counter() - start
    return {
        "duration": duration,
        "seconds": seconds,
        "flow_sim_seconds_per_sec": duration / seconds,
    }


def bench_batch(n_flows: int, duration: float,
                packet_rate: float) -> dict:
    """One homogeneous population, priced against the packet unit cost."""
    batch = FlowClassBatch.jittered(
        batch_config(), n_flows, slope=1000.0, duration=duration,
        seed=1, fair_share=FAIR_SHARE)
    start = time.perf_counter()
    result = batch.run()
    seconds = time.perf_counter() - start
    events_equiv = float(result.sent_bytes.sum()) / batch.config.packet_size
    flow_sim_seconds = n_flows * duration
    fluid_rate = flow_sim_seconds / seconds
    return {
        "n_flows": n_flows,
        "duration": duration,
        "seconds": seconds,
        "flows_per_sec": n_flows / seconds,
        "events_equiv": events_equiv,
        "events_equiv_per_sec": events_equiv / seconds,
        "speedup_vs_packet": fluid_rate / packet_rate,
    }


def run_report(quick: bool) -> dict:
    repeats = 1 if quick else 5
    calib_duration = 10.0 if quick else 40.0
    batch_duration = 10.0 if quick else 40.0
    calibration = bench_packet_calibration(calib_duration)
    packet_rate = calibration["flow_sim_seconds_per_sec"]
    report = {
        "schema": SCHEMA,
        "quick": quick,
        "fluid_engine": bench_fluid_engine(max(repeats, 3)),
        "packet_calibration": calibration,
    }
    for n_flows in (100, 1000, 10000):
        best = None
        for _ in range(repeats):
            sample = bench_batch(n_flows, batch_duration, packet_rate)
            if best is None or sample["seconds"] < best["seconds"]:
                best = sample
        report[f"batch_{n_flows}"] = best
    return report


def check_schema(report: dict) -> list[str]:
    """Names of missing sections/fields (empty when the shape is right)."""
    missing = []
    for section, fields in REQUIRED_KEYS.items():
        if section not in report:
            missing.append(section)
            continue
        for field in fields or ():
            if field not in report[section]:
                missing.append(f"{section}.{field}")
    return missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fluid fast-path benchmark (BENCH_fluid.json).")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, single repeat (CI smoke)")
    parser.add_argument("--out", default="BENCH_fluid.json",
                        help="output path (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_report(quick=args.quick)
    missing = check_schema(report)
    if missing:
        print(f"schema drift, missing: {', '.join(missing)}")
        return 1

    target = pathlib.Path(args.out)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    engine = report["fluid_engine"]
    print(f"fluid engine : {engine['runs_per_sec']:>10,.0f} runs/s "
          f"({engine['epochs']} epochs per {engine['duration']:.0f} s flow)")
    calib = report["packet_calibration"]
    print(f"packet replay: {calib['flow_sim_seconds_per_sec']:>10,.1f} "
          f"flow-sim-s/s")
    for n_flows in (100, 1000, 10000):
        row = report[f"batch_{n_flows}"]
        print(f"batch {n_flows:>6,}: "
              f"{row['events_equiv_per_sec']:>12,.0f} events-equiv/s, "
              f"{row['speedup_vs_packet']:,.0f}x packet")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
