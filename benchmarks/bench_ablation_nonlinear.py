"""Benchmark: non-linear layer spacing analysis (section 7)."""

from conftest import emit

from repro.experiments import ablation_nonlinear


def test_ablation_nonlinear(once):
    result = once(ablation_nonlinear.run)
    emit(result.render())
    rows = result.rows()
    totals = {(r[0], r[1]): r[2] for r in rows}
    assert totals[("linear", 1)] == totals[("geometric", 1)]
