#!/usr/bin/env python3
"""Asyncio service load benchmark: emits ``BENCH_service.json``.

Runs the real UDP streaming service on loopback — an in-process
:class:`~repro.service.server.StreamingService` plus a
:class:`~repro.service.client.LoadFleet` — and reports the numbers the
service work is judged by:

- ``sessions_per_sec``: completed sessions per wall second of fleet
  runtime (handshake, streaming, graceful FIN teardown included);
- ``feedback_p50`` / ``feedback_p99``: ACK echo-to-receipt latency
  percentiles, the service-side congestion feedback delay;
- ``adapter_decisions_per_sec``: FlightRecorder-counted quality-adapter
  decision records per second across all sessions — the rate the
  paper's mechanism actually runs at under real-socket load;
- ``stalls`` and ``failed``: must both stay 0 on an unimpaired link.

Unlike the simulator benchmarks these numbers ride on wall-clock I/O,
so thresholds gate only on *correctness* shape (schema, zero stalls),
not on absolute throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI

The JSON schema is checked by the ``service-soak`` CI job; bump
``SCHEMA`` and update that job when the layout changes.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import time

from repro.core.config import QAConfig
from repro.service.client import LoadFleet
from repro.service.results import fleet_result
from repro.telemetry.digest import percentile
from repro.service.server import ServiceConfig, StreamingService

SCHEMA = 1

#: Keys every report must carry, nested section by section. The CI soak
#: job fails when a produced report stops matching this shape.
REQUIRED_KEYS = {
    "schema": None,
    "quick": None,
    "load": ("sessions", "duration", "spread", "wall_seconds",
             "sessions_per_sec", "completed", "failed", "stalls",
             "fairness", "bytes_received", "mean_rate"),
    "feedback": ("acks", "p50", "p99", "mean"),
    "adapter": ("decisions", "decisions_per_sec", "mean_layers"),
    "shutdown": ("leaked_tasks", "queue_drops"),
}

#: A compact profile so --quick stays inside a CI minute: 4 layers at
#: 4 KB/s keeps per-session throughput modest while still exercising
#: the add ladder and flow control.
_QA = QAConfig(layer_rate=4000.0, max_layers=4, packet_size=400,
               startup_delay=0.5, max_buffer_seconds=4.0)


async def _run_load(sessions: int, duration: float,
                    spread: float) -> dict:
    config = ServiceConfig(qa=_QA, max_sessions=sessions,
                           record_decisions=True)
    service = await StreamingService.start(config)
    start = time.perf_counter()
    try:
        fleet = LoadFleet("127.0.0.1", service.port,
                          sessions=sessions, duration=duration,
                          spread=spread)
        results = await fleet.run()
    finally:
        await service.close()
    wall = time.perf_counter() - start
    leaked = [t for t in asyncio.all_tasks()
              if t is not asyncio.current_task()]

    ok = [r for r in results if r.ok]
    scenario = fleet_result(results, duration)
    layer_means = [f.mean_layers() for f in scenario.flows]
    latencies = service.feedback_latencies
    decisions = service.decisions_recorded
    return {
        "schema": SCHEMA,
        "load": {
            "sessions": sessions,
            "duration": duration,
            "spread": spread,
            "wall_seconds": wall,
            "sessions_per_sec": len(ok) / wall if wall > 0 else 0.0,
            "completed": len(ok),
            "failed": len(results) - len(ok),
            "stalls": sum(r.playout.stall_count for r in ok),
            "fairness": scenario.fairness,
            "bytes_received": sum(r.bytes_received for r in ok),
            "mean_rate": (sum(r.mean_rate for r in ok) / len(ok)
                          if ok else 0.0),
        },
        "feedback": {
            "acks": len(latencies),
            "p50": percentile(latencies, 50.0),
            "p99": percentile(latencies, 99.0),
            "mean": (sum(latencies) / len(latencies)
                     if latencies else 0.0),
        },
        "adapter": {
            "decisions": decisions,
            "decisions_per_sec": decisions / wall if wall > 0 else 0.0,
            "mean_layers": (sum(layer_means) / len(layer_means)
                            if layer_means else 0.0),
        },
        "shutdown": {
            "leaked_tasks": len(leaked),
            "queue_drops": service.counters["queue_drops"],
        },
    }


def run_report(quick: bool) -> dict:
    sessions = 25 if quick else 200
    duration = 5.0 if quick else 30.0
    spread = 1.0 if quick else 5.0
    report = asyncio.run(_run_load(sessions, duration, spread))
    report["quick"] = quick
    return report


def check_schema(report: dict) -> list[str]:
    """Names of missing sections/fields (empty when the shape is right)."""
    missing = []
    for section, fields in REQUIRED_KEYS.items():
        if section not in report:
            missing.append(section)
            continue
        for field in fields or ():
            if field not in report[section]:
                missing.append(f"{section}.{field}")
    return missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Asyncio service benchmark (BENCH_service.json).")
    parser.add_argument("--quick", action="store_true",
                        help="25 sessions x 5 s instead of 200 x 30 s")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output path (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_report(quick=args.quick)
    missing = check_schema(report)
    if missing:
        print(f"schema drift, missing: {', '.join(missing)}")
        return 1

    target = pathlib.Path(args.out)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    load = report["load"]
    print(f"load     : {load['completed']}/{load['sessions']} sessions "
          f"in {load['wall_seconds']:.1f} s "
          f"({load['sessions_per_sec']:.1f} sessions/s), "
          f"{load['stalls']} stalls, fairness {load['fairness']:.3f}")
    fb = report["feedback"]
    print(f"feedback : p50 {fb['p50'] * 1e3:.2f} ms, "
          f"p99 {fb['p99'] * 1e3:.2f} ms over {fb['acks']:,} ACKs")
    ad = report["adapter"]
    print(f"adapter  : {ad['decisions']:,} decisions "
          f"({ad['decisions_per_sec']:,.0f}/s), "
          f"mean layers {ad['mean_layers']:.2f}")
    sd = report["shutdown"]
    print(f"shutdown : {sd['leaked_tasks']} leaked tasks, "
          f"{sd['queue_drops']} queue drops")
    if load["failed"] or load["stalls"] or sd["leaked_tasks"]:
        print("FAIL: unimpaired loopback must complete every session "
              "with zero stalls and a clean shutdown")
        return 1
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
