#!/usr/bin/env python3
"""Event-core throughput benchmark: emits ``BENCH_engine.json``.

Unlike the pytest-benchmark modules alongside it (which time whole paper
artifacts), this is a standalone script measuring the two numbers the
engine hot-path work is judged by:

- ``event_core.events_per_sec``: a micro-benchmark of the scheduler
  itself — no-op callbacks bulk-scheduled with ``schedule_many`` and
  drained through ``run()``;
- ``dumbbell_2flow``: a packet-level macro-benchmark — two
  quality-adaptive sessions on a shared dumbbell, telemetry disabled,
  reporting both events/sec and packets/sec.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # CI smoke

The JSON schema is checked by the ``benchmark-smoke`` CI job; bump
``SCHEMA`` and update that job when the layout changes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.scenario import QAFlowSpec, Scenario, ScenarioConfig
from repro.sim.engine import Simulator
from repro.sim.topology import DumbbellConfig

SCHEMA = 1

#: Keys every report must carry, nested section by section. The CI smoke
#: job fails when a produced report stops matching this shape.
REQUIRED_KEYS = {
    "schema": None,
    "quick": None,
    "event_core": ("n_events", "seconds", "events_per_sec"),
    "dumbbell_2flow": ("duration", "events", "packets", "seconds",
                       "events_per_sec", "packets_per_sec"),
}


def bench_event_core(n_events: int, chunk: int = 50_000) -> dict:
    """Schedule and drain ``n_events`` no-op callbacks, timed end to end."""
    sim = Simulator()

    def tick() -> None:
        pass

    scheduled = 0
    start = time.perf_counter()
    while scheduled < n_events:
        batch = min(chunk, n_events - scheduled)
        sim.schedule_many((i * 1e-7, tick) for i in range(batch))
        sim.run()
        scheduled += batch
    seconds = time.perf_counter() - start
    return {
        "n_events": sim.events_processed,
        "seconds": seconds,
        "events_per_sec": sim.events_processed / seconds,
    }


def build_dumbbell_2flow(duration: float) -> Scenario:
    """Two headless QA sessions on a 100 KB/s dumbbell."""
    return Scenario(ScenarioConfig(
        flows=(QAFlowSpec(label="qa0"), QAFlowSpec(label="qa1")),
        topology=DumbbellConfig(
            bottleneck_bandwidth=100_000.0,
            queue_capacity_packets=50,
        ),
        duration=duration,
        telemetry=False,
    ))


def bench_dumbbell_2flow(duration: float) -> dict:
    scenario = build_dumbbell_2flow(duration)
    start = time.perf_counter()
    scenario.sim.run(until=duration)
    seconds = time.perf_counter() - start
    events = scenario.sim.events_processed
    packets = sum(f.source.stats.packets_sent for f in scenario.flows)
    return {
        "duration": duration,
        "events": events,
        "packets": packets,
        "seconds": seconds,
        "events_per_sec": events / seconds,
        "packets_per_sec": packets / seconds,
    }


def best_of(repeats: int, fn, *args) -> dict:
    """Run ``fn`` ``repeats`` times, keep the fastest (least noisy) run."""
    best = None
    for _ in range(repeats):
        sample = fn(*args)
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    return best


def run_report(quick: bool) -> dict:
    repeats = 1 if quick else 3
    n_events = 50_000 if quick else 500_000
    duration = 5.0 if quick else 30.0
    return {
        "schema": SCHEMA,
        "quick": quick,
        "event_core": best_of(repeats, bench_event_core, n_events),
        "dumbbell_2flow": best_of(repeats, bench_dumbbell_2flow, duration),
    }


def check_schema(report: dict) -> list[str]:
    """Names of missing sections/fields (empty when the shape is right)."""
    missing = []
    for section, fields in REQUIRED_KEYS.items():
        if section not in report:
            missing.append(section)
            continue
        for field in fields or ():
            if field not in report[section]:
                missing.append(f"{section}.{field}")
    return missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Engine hot-path benchmark (BENCH_engine.json).")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, single repeat (CI smoke)")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_report(quick=args.quick)
    missing = check_schema(report)
    if missing:
        print(f"schema drift, missing: {', '.join(missing)}")
        return 1

    target = pathlib.Path(args.out)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    core = report["event_core"]
    macro = report["dumbbell_2flow"]
    print(f"event core     : {core['events_per_sec']:>12,.0f} events/s "
          f"({core['n_events']:,} events)")
    print(f"2-flow dumbbell: {macro['events_per_sec']:>12,.0f} events/s, "
          f"{macro['packets_per_sec']:,.0f} packets/s "
          f"({macro['events']:,} events, {macro['packets']:,} packets)")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
