"""Benchmark: add-rule ablation (the 2.9-layer-link argument)."""

from conftest import emit

from repro.experiments import ablation_add_rules


def test_ablation_add_rules(once):
    result = once(ablation_add_rules.run)
    emit(result.render())
    by_rule = {r.rule: r for r in result.rows}
    assert (by_rule["buffer_only"].time_at_3_plus
            >= by_rule["average_bandwidth"].time_at_3_plus)
