"""The fluid scenario backend: same specs, no packets.

:class:`FluidScenario` accepts the same :class:`ScenarioConfig` as the
packet :class:`~repro.scenario.builder.Scenario` — restricted to
``scripted_qa`` flows, whose trajectories are fully determined — and
produces the same :class:`~repro.scenario.result.ScenarioResult` shape,
so experiment and test code can swap backends with one config field.
Each flow is solved independently by a
:class:`~repro.sim.fluid.FluidEngine` (scripted flows never contend for
a bottleneck, in either backend), which makes the backend trivially
parallel and thousands of times cheaper than per-quantum replay.

:func:`run_scenario` is the dispatcher: it reads ``config.backend`` and
builds the right runner. Link utilization is reported as the aggregate
mean sending rate over the configured bottleneck bandwidth — the fluid
analogue of bytes-forwarded accounting (scripted flows bypass the
queue in the packet backend, so there the same field reads zero).
"""

from __future__ import annotations

from repro.core.fluid import ScriptedAimd
from repro.media.playout import PlayoutStats
from repro.scenario.result import FlowResult, ScenarioResult
from repro.scenario.specs import ScenarioConfig, ScriptedQAFlowSpec
from repro.server.session import SessionResult
from repro.sim.flowmon import jain_index
from repro.sim.fluid import FluidEngine, FluidFlowResult
from repro.sim.parking_lot import ParkingLotConfig


class FluidScenario:
    """Run every scripted flow of a config through the analytic engine."""

    def __init__(self, config: ScenarioConfig) -> None:
        if config.backend != "fluid":
            raise ValueError("FluidScenario requires backend='fluid'")
        self.config = config
        self.engines: list[FluidEngine] = []
        for spec in config.flows:
            assert isinstance(spec, ScriptedQAFlowSpec)  # enforced by config
            bandwidth = ScriptedAimd(
                spec.initial_rate, spec.slope,
                backoff_times=spec.backoff_times,
                max_rate=spec.max_rate)
            sample = spec.sample_period if config.telemetry else None
            self.engines.append(FluidEngine(
                spec.config, bandwidth, duration=config.duration,
                sample_period=sample))

    def run(self) -> ScenarioResult:
        """Solve all flows and assemble the cross-flow result."""
        outcomes = [engine.run() for engine in self.engines]
        return self._result(outcomes)

    # ------------------------------------------------------------ internals

    def _result(self, outcomes: list[FluidFlowResult]) -> ScenarioResult:
        config = self.config
        duration = config.duration
        total = sum(out.sent_bytes for out in outcomes)
        flow_results: list[FlowResult] = []
        for index, (spec, out) in enumerate(zip(config.flows, outcomes)):
            label = spec.label if spec.label else f"{spec.kind}{index}"
            session = SessionResult(
                tracer=out.tracer, metrics=out.metrics,
                playout=PlayoutStats(
                    stall_count=out.metrics.stall_count,
                    stall_time=out.metrics.stall_time),
                duration=duration)
            flow_results.append(FlowResult(
                index=index,
                kind=spec.kind,
                label=label,
                # Scripted flows have no transport; ids are synthetic
                # and negative so they can never shadow a packet flow.
                flow_id=-(index + 1),
                start=0.0,
                bytes_delivered=int(out.sent_bytes),
                mean_rate=out.sent_bytes / duration,
                share=out.sent_bytes / total if total > 0 else 0.0,
                session=session,
            ))
        fairness = jain_index([f.mean_rate for f in flow_results])
        return ScenarioResult(
            flows=flow_results,
            duration=duration,
            fairness=fairness,
            link_utilization=self._utilization(outcomes),
        )

    def _utilization(self, outcomes: list[FluidFlowResult]) -> list[float]:
        aggregate = sum(out.sent_bytes for out in outcomes)
        topo = self.config.topology
        if isinstance(topo, ParkingLotConfig):
            capacity = topo.hop_bandwidth
            hops = topo.n_hops
        else:
            capacity = topo.bottleneck_bandwidth
            hops = 1
        if capacity <= 0:
            return [0.0] * hops
        return [aggregate / (capacity * self.config.duration)] * hops


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build and run the backend ``config.backend`` selects."""
    if config.backend == "fluid":
        return FluidScenario(config).run()
    from repro.scenario.builder import Scenario

    return Scenario(config).run()
