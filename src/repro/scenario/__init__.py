"""Declarative multi-flow scenarios.

The paper's central claims — RAP+QA is TCP-friendly, and layered quality
adapts per flow — only show up when *many* flows share a bottleneck. A
:class:`Scenario` composes N quality-adaptive sessions plus cross
traffic (plain RAP, Sack-TCP, CBR) on a shared topology (dumbbell or
parking lot) from a declarative :class:`ScenarioConfig`:

- flow specs (:class:`QAFlowSpec`, :class:`RapFlowSpec`,
  :class:`TcpFlowSpec`, :class:`CbrFlowSpec`) with per-flow start/stop
  times; unset stochastic parameters (start jitter, initial SRTT) are
  drawn from a per-flow seed derived via :meth:`repro.sim.rng.SeededRNG.
  spawn`, so adding a flow never perturbs another flow's randomness;
- one shared :class:`~repro.telemetry.TelemetryBus` switch: headless
  scenarios (``telemetry=False``) schedule no samplers at all;
- a :class:`~repro.sim.flowmon.FlowMonitor` on every backbone link,
  feeding the cross-flow metrics (per-flow throughput shares, Jain
  fairness, link utilization) in :class:`ScenarioResult`.

Flows are built strictly in list order — construction order is the
event-sequence tie-breaker, so a scenario is bit-for-bit reproducible
run to run and across the parallel experiment runner.

Two backends run the same config: the packet :class:`Scenario` above,
and the analytic :class:`FluidScenario`
(``ScenarioConfig(backend="fluid")``, :class:`ScriptedQAFlowSpec` flows
only). :func:`run_scenario` dispatches on the config.
"""

from repro.scenario.builder import Scenario
from repro.scenario.fluid import FluidScenario, run_scenario
from repro.scenario.result import FlowResult, ScenarioResult
from repro.scenario.specs import (
    CbrFlowSpec,
    QAFlowSpec,
    RapFlowSpec,
    ScenarioConfig,
    ScriptedQAFlowSpec,
    TcpFlowSpec,
)

__all__ = [
    "Scenario",
    "FluidScenario",
    "run_scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "FlowResult",
    "QAFlowSpec",
    "ScriptedQAFlowSpec",
    "RapFlowSpec",
    "TcpFlowSpec",
    "CbrFlowSpec",
]
