"""Results of a scenario run: per-flow outcomes + cross-flow metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.server.session import SessionResult
from repro.sim.flowmon import jain_index


@dataclass
class FlowResult:
    """One flow's outcome.

    ``session`` is populated for QA flows only; transport-level counters
    (``bytes_delivered``, ``mean_rate``) come from the bottleneck flow
    monitor and exist for every flow kind.
    """

    index: int
    kind: str
    label: str
    flow_id: int
    start: float
    bytes_delivered: int
    mean_rate: float
    #: This flow's fraction of all delivered bytes (0..1).
    share: float
    session: Optional[SessionResult] = None

    def mean_layers(self) -> Optional[float]:
        """Time-averaged active layers (QA flows with telemetry only)."""
        if self.session is None or not self.session.telemetry_enabled:
            return None
        return self.session.tracer.get("layers").time_average()


@dataclass
class ScenarioResult:
    """Everything a multi-flow experiment needs after the run."""

    flows: list[FlowResult]
    duration: float
    #: Jain fairness index over all flows' mean delivered rates.
    fairness: float
    #: Bottleneck utilization per backbone link (fraction of capacity).
    link_utilization: list[float]

    @property
    def utilization(self) -> float:
        """Mean utilization across backbone links."""
        if not self.link_utilization:
            return 0.0
        return sum(self.link_utilization) / len(self.link_utilization)

    def qa_flows(self) -> list[FlowResult]:
        return [f for f in self.flows if f.kind == "qa"]

    def flows_of(self, kind: str) -> list[FlowResult]:
        return [f for f in self.flows if f.kind == kind]

    def fairness_of(self, *kinds: str) -> float:
        """Jain index restricted to the given flow kinds."""
        rates = [f.mean_rate for f in self.flows
                 if not kinds or f.kind in kinds]
        return jain_index(rates)

    def summary(self) -> dict[str, float]:
        """Cross-flow numbers, insertion-ordered for stable rendering."""
        out: dict[str, float] = {
            "n_flows": len(self.flows),
            "fairness": self.fairness,
            "utilization": self.utilization,
        }
        for flow in self.flows:
            out[f"rate_{flow.label}"] = flow.mean_rate
        return out
