"""Flow and scenario specifications.

Specs are frozen: a :class:`ScenarioConfig` fully describes a run before
anything touches the simulator, which is what makes scenarios cacheable,
comparable and safe to ship across process boundaries.

Stochastic per-flow parameters follow one convention: an explicit value
is used verbatim; ``None`` means "draw from this flow's own spawned RNG
stream" (see :meth:`repro.scenario.builder.Scenario._flow_rng`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.config import QAConfig
from repro.sim.parking_lot import ParkingLotConfig
from repro.sim.topology import DumbbellConfig


@dataclass(frozen=True)
class QAFlowSpec:
    """One quality-adaptive streaming session (server + client)."""

    config: QAConfig = field(default_factory=QAConfig)
    start: float = 0.0
    stop: Optional[float] = None
    sample_period: float = 0.1
    label: Optional[str] = None
    #: Overrides for ablations (None -> the production classes).
    adapter_cls: Optional[type[object]] = None
    transport_cls: Optional[type[object]] = None

    kind = "qa"


@dataclass(frozen=True)
class ScriptedQAFlowSpec:
    """A QA session driven by a scripted AIMD sawtooth, not a transport.

    This is the spec both backends agree on exactly: the rate trajectory
    is fully determined (climb at ``slope``, halve at ``backoff_times``),
    so the packet backend replays it through the real adapter
    (:class:`repro.core.fluid.FluidRun`) while the fluid backend solves
    it analytically (:class:`repro.sim.fluid.FluidEngine`). The
    differential harness compares the two. Trajectories are anchored at
    t=0 and run for the whole scenario; under the packet backend the
    flow occupies a host slot but its quanta never traverse the
    topology (it is a replay, not a contender).
    """

    config: QAConfig = field(default_factory=QAConfig)
    initial_rate: float = 10_000.0
    slope: float = 1_000.0
    backoff_times: tuple[float, ...] = ()
    max_rate: Optional[float] = None
    sample_period: float = 0.02
    label: Optional[str] = None

    kind = "scripted_qa"

    def __post_init__(self) -> None:
        if self.initial_rate <= 0 or self.slope <= 0:
            raise ValueError("initial_rate and slope must be positive")


@dataclass(frozen=True)
class RapFlowSpec:
    """A plain RAP flow (congestion-controlled background traffic)."""

    packet_size: int = 1000
    #: None -> jittered around 0.2 s from the flow's RNG.
    srtt_init: Optional[float] = None
    #: None -> uniform in [0, 0.3) s from the flow's RNG.
    start: Optional[float] = None
    stop: Optional[float] = None
    label: Optional[str] = None

    kind = "rap"


@dataclass(frozen=True)
class TcpFlowSpec:
    """A Sack-style TCP flow."""

    packet_size: int = 1000
    #: None -> uniform in [0, 0.5) s from the flow's RNG.
    start: Optional[float] = None
    stop: Optional[float] = None
    label: Optional[str] = None

    kind = "tcp"


@dataclass(frozen=True)
class CbrFlowSpec:
    """A constant-bit-rate source (unresponsive traffic)."""

    rate: float = 50_000.0
    packet_size: int = 1000
    start: float = 0.0
    stop: Optional[float] = None
    label: Optional[str] = None

    kind = "cbr"


FlowSpec = Union[QAFlowSpec, ScriptedQAFlowSpec, RapFlowSpec, TcpFlowSpec,
                 CbrFlowSpec]

TopologyConfig = Union[DumbbellConfig, ParkingLotConfig]


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete multi-flow run.

    Args:
        flows: flow specs, one simulated flow each, built in list order.
            On a dumbbell, flow i occupies source/sink slot i (``n_pairs``
            in the topology config is overridden by ``len(flows)``). On a
            parking lot, flow 0 is the end-to-end pair and flow i >= 1 is
            the hop-(i-1) cross pair (so ``len(flows) == n_hops + 1``).
        topology: a :class:`DumbbellConfig` or :class:`ParkingLotConfig`.
        duration: simulated seconds.
        seed: master seed; per-flow streams are spawned from it.
        telemetry: False disables all per-session sampling and event
            logging (near-zero tracing cost).
        telemetry_decimate: sample every Nth period (N >= 1).
        monitor_period: FlowMonitor throughput sampling period (seconds).
        record_decisions: True attaches a shared flight recorder so QA
            adapters and transports log causal decision records
            (independent of ``telemetry``: the causal log works even
            with time-series sampling off).
        recorder_capacity: flight-recorder ring size (records).
        collect_metrics: True attaches a shared metrics registry to the
            backbone links and flows (counters/gauges/histograms).
        trace_spans: True attaches a shared
            :class:`~repro.telemetry.tracing.SpanRecorder` and gives
            every QA flow a deterministic trace context derived from
            ``seed`` and the flow index: adapter ticks and §2.2
            decision events land as spans, exportable through the
            Chrome-trace path alongside service-side traces.
        span_capacity: span-recorder ring size (spans).
        backend: ``"packet"`` builds the discrete-event simulation
            (:class:`repro.scenario.builder.Scenario`); ``"fluid"``
            solves the same spec analytically
            (:class:`repro.scenario.fluid.FluidScenario`). The fluid
            backend accepts only :class:`ScriptedQAFlowSpec` flows —
            transport-coupled kinds need real packets. Dispatch via
            :func:`repro.scenario.run_scenario`.
    """

    flows: tuple[FlowSpec, ...] = ()
    topology: TopologyConfig = field(default_factory=DumbbellConfig)
    duration: float = 40.0
    seed: int = 1
    telemetry: bool = True
    telemetry_decimate: int = 1
    monitor_period: float = 1.0
    record_decisions: bool = False
    recorder_capacity: int = 65536
    collect_metrics: bool = False
    trace_spans: bool = False
    span_capacity: int = 65536
    backend: str = "packet"

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("a scenario needs at least one flow")
        if self.backend not in ("packet", "fluid"):
            raise ValueError(
                f"backend must be 'packet' or 'fluid', got "
                f"{self.backend!r}")
        if self.backend == "fluid":
            bad = [s.kind for s in self.flows if s.kind != "scripted_qa"]
            if bad:
                raise ValueError(
                    "the fluid backend only runs scripted_qa flows; "
                    f"got kinds {sorted(set(bad))}")
        if self.recorder_capacity < 1:
            raise ValueError("recorder_capacity must be >= 1")
        if self.span_capacity < 1:
            raise ValueError("span_capacity must be >= 1")
        if isinstance(self.topology, ParkingLotConfig):
            want = self.topology.n_hops + 1
            if len(self.flows) != want:
                raise ValueError(
                    f"parking-lot scenario needs exactly {want} flows "
                    f"(1 end-to-end + {self.topology.n_hops} cross), "
                    f"got {len(self.flows)}"
                )
        if self.duration <= 0:
            raise ValueError("duration must be positive")
