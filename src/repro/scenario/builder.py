"""The Scenario builder: specs in, wired simulation out.

Construction discipline (this is what makes scenarios deterministic):

1. the topology is built first;
2. flows are built strictly in ``config.flows`` order — flow ids and
   event sequence numbers follow list position;
3. flow monitors attach last (read-only taps; they never change a
   packet's fate).

Per-flow randomness comes from ``rng.spawn(label)`` child streams, so a
flow's draws depend only on its own position/label, never on what other
flows consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Union

from repro.scenario.result import FlowResult, ScenarioResult
from repro.core.fluid import FluidRun, ScriptedAimd
from repro.media.playout import PlayoutStats
from repro.scenario.specs import (
    CbrFlowSpec,
    FlowSpec,
    QAFlowSpec,
    RapFlowSpec,
    ScenarioConfig,
    ScriptedQAFlowSpec,
    TcpFlowSpec,
)
from repro.server.session import SessionResult, StreamingSession
from repro.sim.engine import Simulator
from repro.sim.flowmon import FlowMonitor, jain_index
from repro.sim.link import Link
from repro.sim.node import Host
from repro.sim.parking_lot import ParkingLot, ParkingLotConfig
from repro.sim.rng import SeededRNG, make_rng
from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    SpanRecorder,
    TelemetryBus,
    TraceContext,
)
from repro.transport import (
    CbrSink,
    CbrSource,
    RapSink,
    RapSource,
    TcpSink,
    TcpSource,
)


@dataclass
class BuiltFlow:
    """A constructed flow: its spec plus the live simulation objects."""

    index: int
    spec: FlowSpec
    label: str
    flow_id: int
    start: float
    source: object
    sink: object = None
    session: Optional[StreamingSession] = None
    #: Populated for scripted_qa flows: the replay driving the adapter.
    fluid_run: Optional[FluidRun] = None

    @property
    def kind(self) -> str:
        return self.spec.kind


class Scenario:
    """Builds and runs one multi-flow scenario from a

    :class:`~repro.scenario.specs.ScenarioConfig`. All simulation state
    (network, flows, monitors) is constructed in ``__init__``; ``run()``
    just advances the clock and collects results.
    """

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.rng: SeededRNG = make_rng(config.seed)
        self.sim = Simulator()
        # Shared observability sinks: one causal decision log and one
        # metrics registry per scenario, fed by every flow and backbone
        # link. Both are disabled (and cost nothing) unless asked for.
        self.recorder = FlightRecorder(
            capacity=config.recorder_capacity,
            enabled=config.record_decisions)
        self.metrics = MetricsRegistry(enabled=config.collect_metrics)
        # Span tracing: one recorder per scenario, one deterministic
        # trace per QA flow (ids derive from the seed and flow index,
        # so two same-seed runs produce identical trace ids).
        self.spans = SpanRecorder(
            capacity=config.span_capacity,
            enabled=config.trace_spans)
        self.network: Union[Dumbbell, ParkingLot]
        if isinstance(config.topology, ParkingLotConfig):
            self.network = ParkingLot(self.sim, config.topology)
        else:
            self.network = Dumbbell(self.sim, replace(
                config.topology, n_pairs=len(config.flows)))
        if config.collect_metrics:
            for link in self.backbone_links:
                link.attach_metrics(self.metrics)
            self.metrics.register_collector(self._collect_engine)

        self.flows: list[BuiltFlow] = []
        for index, spec in enumerate(config.flows):
            # Spawn a child stream for EVERY flow, in list order, so the
            # spawn counter equals the flow index for all of them — a
            # flow's seed depends only on its own position and kind,
            # never on which other kinds precede it.
            rng = self.rng.spawn(f"flow{index}:{spec.kind}")
            self.flows.append(self._build_flow(index, spec, rng))

        self.monitors: list[FlowMonitor] = [
            FlowMonitor(self.sim, link,
                        sample_period=config.monitor_period)
            for link in self.backbone_links
        ]
        self.monitor = self.monitors[0]

    # ----------------------------------------------------------- topology

    @property
    def backbone_links(self) -> list[Link]:
        """The congested link(s): dumbbell bottleneck or parking-lot hops."""
        if isinstance(self.network, ParkingLot):
            return list(self.network.hops)
        return [self.network.bottleneck]

    def hosts_for(self, index: int) -> tuple[Host, Host]:
        """(source, sink) hosts for flow slot ``index``."""
        if isinstance(self.network, ParkingLot):
            if index == 0:
                return self.network.e2e_source, self.network.e2e_sink
            return (self.network.cross_sources[index - 1],
                    self.network.cross_sinks[index - 1])
        return self.network.pair(index)

    # -------------------------------------------------------------- flows

    def _label(self, index: int, spec: FlowSpec) -> str:
        return spec.label if spec.label else f"{spec.kind}{index}"

    def _build_flow(self, index: int, spec: FlowSpec,
                    rng: SeededRNG) -> BuiltFlow:
        src, dst = self.hosts_for(index)
        label = self._label(index, spec)
        if isinstance(spec, QAFlowSpec):
            return self._build_qa(index, spec, label, src, dst)
        if isinstance(spec, ScriptedQAFlowSpec):
            return self._build_scripted(index, spec, label)
        if isinstance(spec, RapFlowSpec):
            return self._build_rap(index, spec, label, src, dst, rng)
        if isinstance(spec, TcpFlowSpec):
            return self._build_tcp(index, spec, label, src, dst, rng)
        if isinstance(spec, CbrFlowSpec):
            return self._build_cbr(index, spec, label, src, dst)
        raise TypeError(f"unknown flow spec: {spec!r}")

    def _collect_engine(self, registry: MetricsRegistry) -> None:
        registry.gauge(
            "engine_events_total", "Events executed by the simulator"
        ).set(float(self.sim.events_processed))
        registry.gauge(
            "engine_sim_time_seconds", "Current simulation clock"
        ).set(self.sim.now)

    def _build_qa(self, index: int, spec: QAFlowSpec, label: str,
                  src: Host, dst: Host) -> BuiltFlow:
        bus = TelemetryBus(self.sim,
                           enabled=self.config.telemetry,
                           decimate=self.config.telemetry_decimate,
                           recorder=self.recorder,
                           source=label)
        context = TraceContext.derive(self.config.seed, "trace", index)
        session = StreamingSession(
            self.sim, src, dst, spec.config,
            start=spec.start,
            sample_period=spec.sample_period,
            adapter_cls=spec.adapter_cls,
            transport_cls=spec.transport_cls,
            telemetry=bus,
            span_hook=self.spans.span_hook(label, context),
        )
        if spec.stop is not None:
            self.sim.schedule_at(spec.stop, session.stop, priority=0)
        if self.config.collect_metrics:
            self.metrics.register_collector(
                self._flow_collector(label, session))
        return BuiltFlow(index, spec, label, session.server.flow_id,
                         spec.start, session.server.rap,
                         sink=session.client, session=session)

    @staticmethod
    def _flow_collector(
        label: str, session: StreamingSession
    ) -> Callable[[MetricsRegistry], None]:
        """Collector gauging one QA flow's live state at export time."""
        adapter = session.server.adapter
        transport = session.server.rap

        def _collect(registry: MetricsRegistry) -> None:
            registry.gauge(
                "qa_active_layers", "Currently active layers",
                flow=label).set(float(adapter.active_layers))
            registry.gauge(
                "qa_total_buffer_bytes",
                "Estimated receiver buffering across active layers",
                flow=label).set(adapter.buffers.total(adapter.active_layers))
            registry.gauge(
                "qa_retransmitted_bytes",
                "Bytes re-sent for protected low layers",
                flow=label).set(adapter.retransmitted_bytes)
            registry.gauge(
                "transport_rate_bytes_per_sec",
                "Current transmission rate", flow=label).set(transport.rate)
            registry.gauge(
                "transport_backoffs_total", "AIMD halvings so far",
                flow=label).set(float(transport.stats.backoffs))
            registry.gauge(
                "transport_packets_lost_total", "Losses detected so far",
                flow=label).set(float(transport.stats.packets_lost))

        return _collect

    def _build_scripted(self, index: int, spec: ScriptedQAFlowSpec,
                        label: str) -> BuiltFlow:
        """A scripted QA replay sharing the scenario clock.

        The flow drives the real adapter with quantized sends at a
        deterministic trajectory; no packets enter the topology, so it
        coexists with transport flows without perturbing them. Its
        flow id is synthetic and negative — the flow monitor never
        sees it, and ``result()`` reads delivery from the adapter.
        """
        run = FluidRun(
            spec.config,
            ScriptedAimd(spec.initial_rate, spec.slope,
                         backoff_times=spec.backoff_times,
                         max_rate=spec.max_rate),
            duration=self.config.duration,
            sample_period=spec.sample_period,
            sim=self.sim,
        )
        run.start()
        return BuiltFlow(index, spec, label, -(index + 1), 0.0,
                         run.bandwidth, fluid_run=run)

    def _build_rap(self, index: int, spec: RapFlowSpec, label: str,
                   src: Host, dst: Host, rng: SeededRNG) -> BuiltFlow:
        srtt = (spec.srtt_init if spec.srtt_init is not None
                else rng.jittered(0.2, 0.25))
        start = (spec.start if spec.start is not None
                 else rng.uniform(0.0, 0.3))
        rap = RapSource(self.sim, src, dst.name,
                        packet_size=spec.packet_size,
                        srtt_init=srtt, start=start, stop=spec.stop)
        sink = RapSink(self.sim, dst, src.name, rap.flow_id)
        return BuiltFlow(index, spec, label, rap.flow_id, start, rap,
                         sink=sink)

    def _build_tcp(self, index: int, spec: TcpFlowSpec, label: str,
                   src: Host, dst: Host, rng: SeededRNG) -> BuiltFlow:
        start = (spec.start if spec.start is not None
                 else rng.uniform(0.0, 0.5))
        tcp = TcpSource(self.sim, src, dst.name,
                        packet_size=spec.packet_size,
                        start=start, stop=spec.stop)
        sink = TcpSink(self.sim, dst, src.name, tcp.flow_id)
        return BuiltFlow(index, spec, label, tcp.flow_id, start, tcp,
                         sink=sink)

    def _build_cbr(self, index: int, spec: CbrFlowSpec, label: str,
                   src: Host, dst: Host) -> BuiltFlow:
        cbr = CbrSource(self.sim, src, dst.name, rate=spec.rate,
                        packet_size=spec.packet_size,
                        start=spec.start, stop=spec.stop)
        sink = CbrSink(self.sim, dst, src.name, cbr.flow_id)
        return BuiltFlow(index, spec, label, cbr.flow_id, spec.start, cbr,
                         sink=sink)

    # ---------------------------------------------------------------- run

    def run(self) -> ScenarioResult:
        """Advance the clock to ``duration`` and collect all results."""
        self.sim.run(until=self.config.duration)
        return self.result()

    def result(self) -> ScenarioResult:
        duration = self.config.duration
        monitor = self.monitor
        # Scripted replays bypass the topology, so their delivery comes
        # from the adapter's own send accounting, not the flow monitor.
        delivered_by_index = {
            built.index: (
                int(sum(built.fluid_run.adapter.sent_bytes_per_layer))
                if built.fluid_run is not None
                else monitor.bytes_by_flow.get(built.flow_id, 0))
            for built in self.flows
        }
        total = sum(delivered_by_index.values())
        flow_results: list[FlowResult] = []
        for built in self.flows:
            delivered = delivered_by_index[built.index]
            session_result: Optional[SessionResult] = None
            if built.session is not None:
                session_result = built.session.result()
            elif built.fluid_run is not None:
                session_result = SessionResult(
                    tracer=built.fluid_run.tracer,
                    metrics=built.fluid_run.adapter.metrics,
                    playout=PlayoutStats(),
                    duration=duration,
                    # FluidRun always samples its own tracer.
                    telemetry_enabled=True)
            flow_results.append(FlowResult(
                index=built.index,
                kind=built.kind,
                label=built.label,
                flow_id=built.flow_id,
                start=built.start,
                bytes_delivered=delivered,
                mean_rate=delivered / duration if duration > 0 else 0.0,
                share=delivered / total if total > 0 else 0.0,
                session=session_result,
            ))
        fairness = jain_index([f.mean_rate for f in flow_results])
        utilization = [
            link.bytes_forwarded / (link.bandwidth * duration)
            for link in self.backbone_links
        ]
        return ScenarioResult(
            flows=flow_results,
            duration=duration,
            fairness=fairness,
            link_utilization=utilization,
        )

    def observability(self) -> dict[str, object]:
        """Manifest-ready summary of the run's observability sinks.

        Empty when both the recorder and the metrics registry are off —
        a disabled run must not grow new manifest keys.
        """
        out: dict[str, object] = {}
        if self.recorder.enabled:
            out["recorder"] = self.recorder.summary()
        if self.metrics.enabled:
            out["metrics"] = self.metrics.snapshot()
        if self.spans.enabled:
            out["spans"] = self.spans.summary()
        return out
