"""ASCII time-series rendering for terminal experiment output."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.trace import TimeSeries

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line unicode sparkline, resampled to ``width`` characters."""
    if not values:
        return ""
    resampled = _resample(list(values), width)
    lo, hi = min(resampled), max(resampled)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(resampled)
    chars = []
    for v in resampled:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def _resample(values: list[float], width: int) -> list[float]:
    if len(values) <= width:
        return values
    out = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max(lo + 1, (i + 1) * len(values) // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def ascii_chart(
    series: TimeSeries,
    width: int = 72,
    height: int = 12,
    title: Optional[str] = None,
    y_label: str = "",
    overlay: Optional[TimeSeries] = None,
) -> str:
    """A multi-line ASCII chart of a time series.

    ``overlay`` (rendered with ``o``) shares the axes with the main
    series (rendered with ``*``) -- used for rate-vs-consumption plots.
    """
    if len(series) == 0:
        return f"{title or series.name}: (no data)\n"
    t0, t1 = series.times[0], series.times[-1]
    span_t = max(t1 - t0, 1e-12)

    def cells(ts: TimeSeries) -> list[float]:
        return [
            ts.value_at(t0 + span_t * i / (width - 1))
            for i in range(width)
        ]

    main = cells(series)
    over = cells(overlay) if overlay is not None and len(overlay) else None
    everything = main + (over or [])
    lo = min(0.0, min(everything))
    hi = max(everything)
    span_v = max(hi - lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]

    def plot(values: list[float], mark: str) -> None:
        for x, v in enumerate(values):
            y = int((v - lo) / span_v * (height - 1))
            grid[height - 1 - y][x] = mark

    if over is not None:
        plot(over, "o")
    plot(main, "*")

    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:,.0f}"
    bottom_label = f"{lo:,.0f}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{pad}} |{''.join(row)}")
    lines.append(f"{'':>{pad}} +{'-' * width}")
    lines.append(f"{'':>{pad}}  t={t0:.1f}s{'':>{max(0, width - 18)}}"
                 f"t={t1:.1f}s")
    return "\n".join(lines) + "\n"
