"""Plain-text table/record formatting for experiment output."""

from __future__ import annotations

from typing import Any, Optional, Sequence


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned, pipe-separated table."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(parts: Sequence[str]) -> str:
        return " | ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    for row in cells:
        out.append(line(row))
    return "\n".join(out) + "\n"


def format_kv(record: dict, title: Optional[str] = None) -> str:
    """Render a flat dict as aligned key/value lines."""
    out = []
    if title:
        out.append(title)
    if record:
        width = max(len(str(k)) for k in record)
        for key, value in record.items():
            out.append(f"  {str(key):<{width}} : {_cell(value)}")
    return "\n".join(out) + "\n"
