"""Trace analysis and terminal rendering.

The paper's figures are gnuplot time series; our experiment harnesses
print the same data as ASCII charts (:mod:`repro.analysis.ascii_plot`)
and aligned tables (:mod:`repro.analysis.report`), and can dump any
tracer as CSV for external plotting.
"""

from repro.analysis.ascii_plot import ascii_chart, sparkline
from repro.analysis.report import format_table, format_kv
from repro.analysis.export import (
    export_csv,
    export_events_csv,
    export_gnuplot,
    export_lint_report,
    export_manifest,
    export_series_files,
)

__all__ = [
    "ascii_chart",
    "sparkline",
    "format_table",
    "format_kv",
    "export_csv",
    "export_events_csv",
    "export_gnuplot",
    "export_lint_report",
    "export_manifest",
    "export_series_files",
]
