"""``repro-report``: one instrumented run rendered as a console report.

Runs a workload with the full observability stack attached — flight
recorder, metrics registry, engine self-profiling — and renders what the
paper's debugging sessions need: the §2.2 decision timeline (every layer
drop with the exact inequality inputs), ASCII rate/buffer charts, and a
metrics summary. With ``--out`` the raw artifacts land next to the
report::

    repro-report multiflow --n-qa 2 --out results/report
    repro-report t1 --seed 7
    repro-report t2 --duration 90 --out /tmp/t2-report

Artifacts written under ``--out``:

- ``report.txt``    — the rendered report (also printed to stdout)
- ``flight.jsonl``  — the decision log (deterministic JSONL)
- ``metrics.prom``  — Prometheus text exposition
- ``trace.json``    — Chrome trace-event JSON (about://tracing, Perfetto)
- ``manifest.json`` — runner-style manifest with the observability block

This module lives in ``analysis`` (not an RL001 determinism zone) on
purpose: it is the place that injects ``time.perf_counter`` into the
engine instrumentation, which the zoned modules must not import.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import Optional, Sequence

from repro.analysis.ascii_plot import ascii_chart, sparkline
from repro.analysis.export import export_manifest
from repro.analysis.report import format_kv, format_table
from repro.experiments.common import PaperWorkload, WorkloadConfig
from repro.experiments.multiflow_fairness import build_scenario
from repro.experiments.runner import RunRecord, build_manifest
from repro.scenario import Scenario
from repro.sim.trace import Tracer
from repro.telemetry import (
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    export_chrome_trace,
    export_prometheus,
    instrument_engine,
    merge_spans,
)

#: Decision kinds shown line-by-line in the timeline (the rest are
#: summarized as counts; drop_rule fires every draining tick).
_TIMELINE_KINDS = ("add", "drop", "backoff", "transport_timeout",
                   "playout_start")
_TIMELINE_LIMIT = 60
_METRIC_ROW_LIMIT = 40


# ------------------------------------------------------------------ running


def _run_multiflow(args: argparse.Namespace) -> tuple[Scenario, str, Tracer]:
    scenario = build_scenario(
        args.n_qa, args.n_tcp, duration=args.duration, seed=args.seed,
        record_decisions=True, collect_metrics=True,
        trace_spans=args.trace)
    title = (f"multiflow_fairness: {args.n_qa} QA + {args.n_tcp} TCP, "
             f"seed={args.seed}, {args.duration:.0f}s")
    return scenario, title, scenario.flows[0].session.tracer


def _run_paper(args: argparse.Namespace) -> tuple[Scenario, str, Tracer]:
    config = WorkloadConfig(seed=args.seed, duration=args.duration,
                            record_decisions=True, collect_metrics=True,
                            trace_spans=args.trace)
    if args.workload == "t2":
        config = WorkloadConfig.t2(seed=args.seed, duration=args.duration,
                                   record_decisions=True,
                                   collect_metrics=True,
                                   trace_spans=args.trace)
    workload = PaperWorkload(config)
    title = (f"{args.workload.upper()} workload, seed={args.seed}, "
             f"{config.duration:.0f}s")
    return workload.scenario, title, workload.session.tracer


def run_scenario(scenario: Scenario) -> float:
    """Run with engine self-profiling attached; returns wall seconds."""
    instrumentation = instrument_engine(
        scenario.sim, scenario.metrics, time.perf_counter)
    start = time.perf_counter()
    scenario.run()
    seconds = time.perf_counter() - start
    if instrumentation is not None:
        instrumentation.detach()
    return seconds


# ---------------------------------------------------------------- rendering


def _render_timeline(recorder: FlightRecorder) -> str:
    counts: dict[str, int] = {}
    for record in recorder:
        counts[record.kind] = counts.get(record.kind, 0) + 1
    lines = [format_kv(
        {k: counts[k] for k in sorted(counts)},
        title=(f"Decision records: {recorder.total_recorded} recorded, "
               f"{recorder.evicted} evicted (capacity "
               f"{recorder.capacity})"))]
    shown = [r for r in recorder if r.kind in _TIMELINE_KINDS]
    truncated = len(shown) - _TIMELINE_LIMIT
    if truncated > 0:
        lines.append(f"  ... {truncated} earlier timeline entries "
                     f"omitted ...")
        shown = shown[-_TIMELINE_LIMIT:]
    for r in shown:
        fields = " ".join(
            f"{k}={_fmt_field(v)}" for k, v in sorted(r.fields.items()))
        lines.append(f"  t={r.time:8.3f}  {r.source:<8} {r.kind:<18} "
                     f"{fields}")
    return "\n".join(lines) + "\n"


def _fmt_field(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, list):
        return "[" + ",".join(_fmt_field(v) for v in value) + "]"
    return str(value)


def _render_drops(recorder: FlightRecorder) -> str:
    """Every layer drop with the §2.2 inequality it was judged by."""
    drops = recorder.records_of("drop")
    if not drops:
        return "Layer drops: none\n"
    rows = []
    for r in drops:
        f = r.fields
        deficit = None
        if isinstance(f.get("consumption"), (int, float)) and isinstance(
                f.get("rate"), (int, float)):
            deficit = float(f["consumption"]) - float(f["rate"])  # na*C - R
        rows.append((
            round(r.time, 2), r.source, f.get("layer"), f.get("cause"),
            None if deficit is None else round(deficit, 1),
            _maybe_round(f.get("threshold")),
            _maybe_round(f.get("drainable")),
            _maybe_round(f.get("slope")),
        ))
    return format_table(
        ("t", "flow", "layer", "cause", "na*C - R", "sqrt(2*S*buf)",
         "drainable B", "S"),
        rows,
        title="Layer drops vs the section 2.2 rule "
              "(drop when na*C - R >= sqrt(2*S*buf))")


def _maybe_round(value: object, digits: int = 1) -> Optional[float]:
    if isinstance(value, (int, float)):
        return round(float(value), digits)
    return None


def _render_metrics(metrics: MetricsRegistry) -> str:
    metrics.collect()
    scalar_rows = []
    histo_rows = []
    for instrument in metrics.instruments():
        labels = ",".join(f"{k}={v}" for k, v in instrument.labels)
        label = f"{instrument.name}{{{labels}}}" if labels \
            else instrument.name
        if isinstance(instrument, Histogram):
            # Native units (seconds for timings, items for heap depth):
            # %.3g strings, since the table renderer's .2f would flatten
            # sub-millisecond means to zero.
            histo_rows.append((
                label, instrument.count,
                f"{instrument.mean():.3g}",
                f"{instrument.total:.3g}"))
        else:
            scalar_rows.append((label, round(instrument.value, 2)))
    out = []
    truncated = len(scalar_rows) - _METRIC_ROW_LIMIT
    if truncated > 0:
        scalar_rows = scalar_rows[:_METRIC_ROW_LIMIT]
    out.append(format_table(("metric", "value"), scalar_rows,
                            title="Metrics (counters and gauges)"))
    if truncated > 0:
        out.append(f"  ... {truncated} more metrics in metrics.prom ...\n")
    if histo_rows:
        out.append(format_table(
            ("histogram", "count", "mean", "sum"), histo_rows,
            title="Histograms (per-handler timing in s, heap depth in "
                  "events)"))
    return "\n".join(out)


def _render_charts(tracer: Tracer) -> str:
    out = []
    try:
        rate = tracer.get("rate")
        consumption = tracer.get("consumption")
        out.append(ascii_chart(
            rate, title="rate (*) vs consumption na*C (o), bytes/s",
            overlay=consumption))
        total = tracer.get("total_buffer")
        out.append(ascii_chart(total, title="total receiver buffer, bytes"))
        layers = tracer.get("layers")
        out.append("active layers: "
                   + sparkline(layers.values) + "\n")
    except KeyError:
        out.append("(no time series: telemetry bus disabled)\n")
    return "\n".join(out)


def render_report(title: str, scenario: Scenario, tracer: Tracer,
                  seconds: float) -> str:
    sim = scenario.sim
    header = format_kv(
        {
            "events processed": sim.events_processed,
            "wall seconds": round(seconds, 3),
            "events/s": (round(sim.events_processed / seconds)
                         if seconds > 0 else None),
            "flows": len(scenario.flows),
            "recorder digest": scenario.recorder.digest()[:16],
        },
        title=f"repro-report · {title}")
    sections = [
        header,
        _render_drops(scenario.recorder),
        _render_timeline(scenario.recorder),
        _render_charts(tracer),
        _render_metrics(scenario.metrics),
    ]
    return "\n".join(sections)


# --------------------------------------------------------------- artifacts


def write_artifacts(out_dir: pathlib.Path, report: str, title: str,
                    scenario: Scenario, tracer: Tracer,
                    seconds: float, seed: int) -> list[pathlib.Path]:
    out_dir.mkdir(parents=True, exist_ok=True)
    written = [out_dir / "report.txt"]
    written[0].write_text(report)
    recorder_path = scenario.recorder.write_jsonl(out_dir / "flight.jsonl")
    if recorder_path is not None:
        written.append(recorder_path)
    written.append(export_prometheus(out_dir / "metrics.prom",
                                     scenario.metrics))
    written.append(export_chrome_trace(out_dir / "trace.json",
                                       recorder=scenario.recorder,
                                       tracer=tracer,
                                       spans=merge_spans(scenario.spans)))
    record = RunRecord(name=f"report:{title}", text=report,
                       seconds=seconds, cache_hit=False, seed=seed,
                       cache_key=None)
    manifest = build_manifest([record], jobs=1, cache=None,
                              observability=scenario.observability())
    written.append(export_manifest(manifest, out_dir / "manifest.json"))
    return written


# --------------------------------------------------------------------- CLI


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Run one instrumented workload and render a per-run "
                    "report (decision timeline, metrics, ASCII plots).")
    parser.add_argument(
        "workload", choices=("multiflow", "t1", "t2"),
        help="which workload to run instrumented")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds (default: workload's own)")
    parser.add_argument("--n-qa", type=int, default=2,
                        help="QA flows (multiflow only)")
    parser.add_argument("--n-tcp", type=int, default=4,
                        help="TCP cross flows (multiflow only)")
    parser.add_argument("--trace", action="store_true",
                        help="also record per-flow span trees; they land "
                             "in trace.json as nested spans per trace id")
    parser.add_argument("--out", default=None,
                        help="directory for report.txt, flight.jsonl, "
                             "metrics.prom, trace.json, manifest.json")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress stdout (artifacts only)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.duration is None:
        args.duration = {"multiflow": 30.0, "t1": 40.0, "t2": 90.0}[
            args.workload]
    if args.workload == "multiflow":
        scenario, title, tracer = _run_multiflow(args)
    else:
        scenario, title, tracer = _run_paper(args)
    seconds = run_scenario(scenario)
    report = render_report(title, scenario, tracer, seconds)
    if not args.quiet:
        print(report, end="")
    if args.out is not None:
        written = write_artifacts(pathlib.Path(args.out), report, title,
                                  scenario, tracer, seconds, args.seed)
        if not args.quiet:
            for path in written:
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
