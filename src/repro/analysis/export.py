"""Exporting traces and experiment artifacts to files.

The ASCII charts are for terminals; real plotting wants data files. This
module writes a :class:`~repro.sim.trace.Tracer` out as CSV (one merged
file or one file per series), an event log as CSV, and a gnuplot-flavored
``.dat`` (space-separated, ``#`` header) for the nostalgic -- the paper's
figures were gnuplot.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Optional, Sequence

from repro.sim.trace import Tracer


def export_csv(tracer: Tracer, path, *,
               names: Optional[Sequence[str]] = None) -> pathlib.Path:
    """Write the merged (step-interpolated) series CSV to ``path``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(tracer.to_csv(names))
    return target


def export_series_files(tracer: Tracer, directory, *,
                        names: Optional[Sequence[str]] = None,
                        suffix: str = ".csv") -> list[pathlib.Path]:
    """One raw (non-interpolated) file per series in ``directory``."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in (names if names is not None else sorted(tracer.series)):
        series = tracer.series[name]
        target = out_dir / f"{name}{suffix}"
        with target.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", name])
            for t, v in series:
                writer.writerow([f"{t:.6f}", f"{v:.6f}"])
        written.append(target)
    return written


def export_events_csv(tracer: Tracer, path) -> pathlib.Path:
    """Write the event log (time, kind, key=value fields) as CSV."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "kind", "fields"])
        for time, kind, fields in tracer.events:
            flat = ";".join(f"{k}={v}" for k, v in sorted(fields.items()))
            writer.writerow([f"{time:.6f}", kind, flat])
    return target


def export_manifest(manifest: dict, path) -> pathlib.Path:
    """Write a run manifest (see the experiment runner) as stable JSON.

    Keys are sorted and the encoding is deterministic, so two manifests
    describing identical runs are byte-identical files — diffable in the
    same spirit as the rendered artifacts themselves.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                      + "\n")
    return target


def export_lint_report(report: dict, path) -> pathlib.Path:
    """Write a ``repro-lint --format json`` report as stable JSON.

    Same conventions as :func:`export_manifest` (sorted keys, trailing
    newline): reports for identical trees are byte-identical, so CI can
    archive them and dashboards can diff violation counts across PRs.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target


def export_gnuplot(tracer: Tracer, path, *,
                   names: Optional[Sequence[str]] = None) -> pathlib.Path:
    """Write a gnuplot ``.dat``: '# time col1 col2 ...' then rows."""
    if names is None:
        names = sorted(tracer.series)
    all_times = sorted({t for n in names
                        for t in tracer.series[n].times})
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        handle.write("# time " + " ".join(names) + "\n")
        for t in all_times:
            row = [f"{t:.6f}"] + [
                f"{tracer.series[n].value_at(t):.6f}" for n in names]
            handle.write(" ".join(row) + "\n")
    return target
