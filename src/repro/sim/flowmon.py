"""Flow monitoring: per-flow throughput and fairness statistics.

The paper's motivation is inter-protocol fairness ("end systems are
expected to be cooperative"); this module provides the measurement side:
attach a :class:`FlowMonitor` to a link and get per-flow byte counts,
windowed throughput series and Jain's fairness index -- used by the
experiment harnesses' sanity checks and by tests that verify RAP and TCP
actually share the bottleneck.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.trace import PeriodicSampler, TimeSeries


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog."""
    values = [r for r in rates if r >= 0]
    if not values:
        return 1.0
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(r * r for r in values)
    return total * total / (len(values) * squares)


class FlowMonitor:
    """Counts per-flow bytes crossing a link and samples throughputs.

    Wraps the link's receiver hook, so it sees exactly the packets that
    made it across (post-drop).
    """

    def __init__(self, sim: Simulator, link: Link,
                 sample_period: float = 1.0) -> None:
        self.sim = sim
        self.link = link
        self.bytes_by_flow: dict[int, int] = defaultdict(int)
        self.packets_by_flow: dict[int, int] = defaultdict(int)
        self.throughput: dict[int, TimeSeries] = {}
        self._window_bytes: dict[int, int] = defaultdict(int)
        self.sample_period = sample_period
        self._start_time = sim.now

        inner = link.receiver
        if inner is None:
            raise ValueError("link must be connected before monitoring")

        def tap(packet: Packet) -> None:
            if packet.is_data():
                self.bytes_by_flow[packet.flow_id] += packet.size
                self.packets_by_flow[packet.flow_id] += 1
                self._window_bytes[packet.flow_id] += packet.size
            inner(packet)

        link.connect(tap)
        self._sampler = PeriodicSampler(sim, sample_period, self._sample)

    def _sample(self, now: float) -> None:
        for flow_id, nbytes in self._window_bytes.items():
            series = self.throughput.setdefault(
                flow_id, TimeSeries(f"flow{flow_id}"))
            series.record(now, nbytes / self.sample_period)
        self._window_bytes = defaultdict(int)

    # ------------------------------------------------------------ queries

    def flows(self) -> list[int]:
        return sorted(self.bytes_by_flow)

    def mean_rate(self, flow_id: int,
                  until: Optional[float] = None) -> float:
        """Average delivered rate of a flow since monitoring began."""
        elapsed = (until if until is not None else self.sim.now) \
            - self._start_time
        if elapsed <= 0:
            return 0.0
        return self.bytes_by_flow.get(flow_id, 0) / elapsed

    def fairness(self, flow_ids: Optional[Iterable[int]] = None) -> float:
        """Jain index over the mean rates of the given (or all) flows."""
        ids = list(flow_ids) if flow_ids is not None else self.flows()
        return jain_index([self.mean_rate(f) for f in ids])

    def stop(self) -> None:
        self._sampler.stop()
