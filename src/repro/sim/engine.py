"""Discrete-event simulation engine.

A minimal, deterministic event loop. Events are ``(time, priority, seq)``
ordered; ``seq`` is a monotonically increasing tie-breaker so that events
scheduled earlier run earlier at equal timestamps, which keeps runs fully
reproducible.

This module is the hot path of every packet-level experiment, so the
event record is a ``__slots__`` class with a hand-written ``__lt__``
(early exit on the common unequal-time case), callbacks may carry a
pre-bound argument tuple instead of forcing callers to allocate a closure
per packet, and :meth:`Simulator.schedule_many` amortizes heap pushes for
bulk scheduling.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``. ``cancelled`` events stay in
    the heap but are skipped when popped (lazy deletion). ``args`` (when
    non-empty) are passed to ``callback`` at fire time, which lets hot
    paths schedule bound methods with a payload instead of building a
    fresh closure for every packet.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.priority, self.seq) == (
            other.time,
            other.priority,
            other.seq,
        )

    def cancel(self) -> None:
        """Mark this event so it will be skipped when its time comes."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, prio={self.priority}, seq={self.seq}{flag})"


class Simulator:
    """The discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run(until=10.0)

    Components receive the simulator instance and call :meth:`schedule` /
    :meth:`schedule_at` to arrange future work. ``sim.now`` is the current
    simulation time in seconds.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._obs_timer: Optional[Callable[[], float]] = None
        self._obs_record: Optional[
            Callable[[Callable[..., None], float, int], None]
        ] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        priority: int = 0,
        args: tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``args`` (when given) are stored on the event and passed to the
        callback at fire time — the closure-free way to bind a payload.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority, args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        priority: int = 0,
        args: tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_many(
        self,
        items: Iterable[tuple[float, Callable[..., None]]],
        priority: int = 0,
    ) -> list[Event]:
        """Bulk-schedule ``(delay, callback)`` pairs in one call.

        Events receive consecutive sequence numbers in iteration order, so
        ties resolve exactly as if :meth:`schedule` had been called once
        per item. For large batches the heap is rebuilt with a single
        ``heapify`` instead of N pushes.
        """
        now = self._now
        batch: list[Event] = []
        for delay, callback in items:
            if delay < 0:
                raise ValueError(
                    f"cannot schedule in the past (delay={delay})"
                )
            batch.append(
                Event(now + delay, priority, next(self._seq), callback)
            )
        if not batch:
            return batch
        heap = self._heap
        # N pushes cost O(N log H); extend+heapify costs O(H + N). Prefer
        # the rebuild once the batch is a sizeable fraction of the heap.
        if len(batch) * 4 >= len(heap):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for event in batch:
                push(heap, event)
        return batch

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the single next event. Returns False when nothing is pending."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap yielded an event in the past")
            self._now = event.time
            self._events_processed += 1
            if event.args:
                event.callback(*event.args)
            else:
                event.callback()
            return True
        return False

    def instrument(
        self,
        timer: Callable[[], float],
        record: Callable[[Callable[..., None], float, int], None],
    ) -> None:
        """Attach a dispatch observer (see ``repro.telemetry.engine``).

        ``record(callback, seconds, heap_depth)`` is called after every
        dispatched event with the handler, its ``timer``-measured run
        time, and the pending-event count. While an observer is attached
        :meth:`run` uses a separate loop; the uninstrumented fast path
        is untouched. The timer is injected because this module must not
        read wall clocks itself (determinism rule RL001).
        """
        self._obs_timer = timer
        self._obs_record = record

    def uninstrument(self) -> None:
        """Detach the dispatch observer and restore the fast path."""
        self._obs_timer = None
        self._obs_record = None

    def run(self, until: Optional[float] = None, max_events: int = 0) -> None:
        """Run events until the heap drains or ``until`` seconds elapse.

        ``until`` is inclusive: events scheduled exactly at ``until`` run and
        the clock finishes at ``until`` even if the heap drained earlier.
        ``max_events`` (when nonzero) bounds total events as a runaway guard.
        """
        if self._obs_record is not None:
            self._run_observed(until, max_events)
            return
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        try:
            while self._running and heap:
                event = heap[0]
                if event.cancelled:
                    pop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                pop(heap)
                if event.time < self._now:
                    raise SimulationError(
                        "event heap yielded an event in the past"
                    )
                self._now = event.time
                self._events_processed += 1
                if event.args:
                    event.callback(*event.args)
                else:
                    event.callback()
                processed += 1
                if max_events and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway sim?)"
                    )
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def _run_observed(
        self, until: Optional[float] = None, max_events: int = 0
    ) -> None:
        """:meth:`run` with the dispatch observer in the loop.

        A duplicate of the fast-path loop rather than a conditional
        inside it: the per-event branch would tax every uninstrumented
        run, and this loop only exists while someone is profiling.
        """
        timer = self._obs_timer
        record = self._obs_record
        assert timer is not None and record is not None
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        try:
            while self._running and heap:
                event = heap[0]
                if event.cancelled:
                    pop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                pop(heap)
                if event.time < self._now:
                    raise SimulationError(
                        "event heap yielded an event in the past"
                    )
                self._now = event.time
                self._events_processed += 1
                started = timer()
                if event.args:
                    event.callback(*event.args)
                else:
                    event.callback()
                record(event.callback, timer() - started, len(heap))
                processed += 1
                if max_events and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway sim?)"
                    )
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event."""
        self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
