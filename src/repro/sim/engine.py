"""Discrete-event simulation engine.

A minimal, deterministic event loop. Events are ``(time, priority, seq)``
ordered; ``seq`` is a monotonically increasing tie-breaker so that events
scheduled earlier run earlier at equal timestamps, which keeps runs fully
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``. ``cancelled`` events stay in
    the heap but are skipped when popped (lazy deletion).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so it will be skipped when its time comes."""
        self.cancelled = True


class Simulator:
    """The discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run(until=10.0)

    Components receive the simulator instance and call :meth:`schedule` /
    :meth:`schedule_at` to arrange future work. ``sim.now`` is the current
    simulation time in seconds.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, priority, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the single next event. Returns False when nothing is pending."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap yielded an event in the past")
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 0) -> None:
        """Run events until the heap drains or ``until`` seconds elapse.

        ``until`` is inclusive: events scheduled exactly at ``until`` run and
        the clock finishes at ``until`` even if the heap drained earlier.
        ``max_events`` (when nonzero) bounds total events as a runaway guard.
        """
        self._running = True
        processed = 0
        try:
            while self._running:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
                if max_events and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway sim?)"
                    )
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event."""
        self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
