"""Output queues for links.

The paper's ns-2 experiments use FIFO drop-tail queues at the bottleneck,
which is what produces the near-random loss pattern the QA mechanism must
survive. A RED variant is included for sensitivity experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.sim.packet import Packet
from repro.sim.rng import SeededRNG

DropCallback = Callable[[Packet], None]


class DropTailQueue:
    """Bounded FIFO queue, dropping arrivals when full.

    The limit can be expressed in packets (``capacity_packets``) or bytes
    (``capacity_bytes``); if both are given, either limit can cause a drop.
    """

    def __init__(
        self,
        capacity_packets: int = 0,
        capacity_bytes: int = 0,
        on_drop: Optional[DropCallback] = None,
    ) -> None:
        if capacity_packets <= 0 and capacity_bytes <= 0:
            raise ValueError("queue needs a packet or byte capacity")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self.on_drop = on_drop
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.drops = 0
        self.enqueues = 0
        self.dequeues = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_length(self) -> int:
        """Bytes currently queued."""
        return self._bytes

    def _would_overflow(self, packet: Packet) -> bool:
        if self.capacity_packets and len(self._queue) + 1 > self.capacity_packets:
            return True
        if self.capacity_bytes and self._bytes + packet.size > self.capacity_bytes:
            return True
        return False

    def enqueue(self, packet: Packet) -> bool:
        """Add ``packet``; returns False (and records a drop) on overflow."""
        if self._would_overflow(packet):
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet)
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueues += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.dequeues += 1
        return packet

    def clear(self) -> None:
        self._queue.clear()
        self._bytes = 0


class REDQueue(DropTailQueue):
    """Random Early Detection queue (gentle variant).

    Provided for sensitivity runs; the paper's headline results use
    drop-tail. Average queue size is an EWMA over the *byte* occupancy
    expressed in mean packets.
    """

    def __init__(
        self,
        capacity_packets: int,
        min_thresh: float,
        max_thresh: float,
        rng: SeededRNG,
        max_prob: float = 0.1,
        weight: float = 0.002,
        on_drop: Optional[DropCallback] = None,
    ) -> None:
        super().__init__(capacity_packets=capacity_packets, on_drop=on_drop)
        if not 0 < min_thresh < max_thresh:
            raise ValueError("need 0 < min_thresh < max_thresh")
        if not 0 < max_prob <= 1:
            raise ValueError("max_prob must be in (0, 1]")
        self.min_thresh = min_thresh
        self.max_thresh = max_thresh
        self.max_prob = max_prob
        self.weight = weight
        self._avg = 0.0
        self._count_since_drop = 0
        # No fallback: an implicit random.Random(0) here once gave every
        # RED queue in a multi-queue topology the *same* drop sequence,
        # invisible to the golden traces. Callers pass a stream derived
        # from the experiment seed (see repro.sim.rng.SeededRNG.spawn).
        self._rng = rng

    @property
    def average_queue(self) -> float:
        return self._avg

    def _drop_probability(self) -> float:
        if self._avg < self.min_thresh:
            return 0.0
        if self._avg >= self.max_thresh:
            return 1.0
        frac = (self._avg - self.min_thresh) / (self.max_thresh - self.min_thresh)
        base = frac * self.max_prob
        # Floyd's count correction spreads drops out.
        denom = 1.0 - self._count_since_drop * base
        if denom <= 0:
            return 1.0
        return min(1.0, base / denom)

    def enqueue(self, packet: Packet) -> bool:
        self._avg = (1 - self.weight) * self._avg + self.weight * len(self._queue)
        prob = self._drop_probability()
        if prob > 0 and self._rng.random() < prob:
            self.drops += 1
            self._count_since_drop = 0
            if self.on_drop is not None:
                self.on_drop(packet)
            return False
        self._count_since_drop += 1
        return super().enqueue(packet)
