"""Nodes: hosts (traffic endpoints) and routers (forwarders).

Routing is static-table based: each node knows, per destination name, which
outgoing link to use. The dumbbell builder fills these tables in. Hosts
demultiplex arriving packets to attached transport agents by ``flow_id``.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet


class PacketHandler(Protocol):
    """Anything able to accept a packet (transport agents implement this)."""

    def receive(self, packet: Packet) -> None: ...


class Node:
    """Base node with a static routing table."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.routes: dict[str, Link] = {}
        self.default_route: Optional[Link] = None
        self.packets_received = 0

    def add_route(self, dst: str, link: Link) -> None:
        """Route packets destined to node ``dst`` out of ``link``."""
        self.routes[dst] = link

    def set_default_route(self, link: Link) -> None:
        self.default_route = link

    def _route_for(self, packet: Packet) -> Optional[Link]:
        link = self.routes.get(packet.dst)
        if link is None:
            link = self.default_route
        return link

    def forward(self, packet: Packet) -> bool:
        """Send ``packet`` toward its destination; False if unroutable/dropped."""
        link = self._route_for(packet)
        if link is None:
            raise RuntimeError(f"{self.name}: no route for dst={packet.dst!r}")
        return link.send(packet)

    def receive(self, packet: Packet) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Router(Node):
    """A pure forwarder."""

    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        self.forward(packet)


class Host(Node):
    """An endpoint. Transport agents attach by flow id.

    A packet arriving at a host whose ``flow_id`` has a registered handler is
    delivered to that handler; otherwise it is counted as stray (tests assert
    this stays zero).
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._handlers: dict[int, PacketHandler] = {}
        self.stray_packets = 0

    def attach(self, flow_id: int, handler: PacketHandler) -> None:
        """Register ``handler`` for packets of ``flow_id`` arriving here."""
        if flow_id in self._handlers:
            raise ValueError(f"{self.name}: flow {flow_id} already attached")
        self._handlers[flow_id] = handler

    def detach(self, flow_id: int) -> None:
        self._handlers.pop(flow_id, None)

    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        if packet.dst and packet.dst != self.name:
            # Transit traffic through a host is a wiring bug in a dumbbell.
            self.forward(packet)
            return
        handler = self._handlers.get(packet.flow_id)
        if handler is None:
            self.stray_packets += 1
            return
        handler.receive(packet)

    def send(self, packet: Packet) -> bool:
        """Inject a locally generated packet into the network."""
        packet.src = packet.src or self.name
        return self.forward(packet)
