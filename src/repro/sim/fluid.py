"""FluidEngine: analytic epoch-to-epoch QA dynamics, no packets.

The packet engine replays the mechanism one transmission opportunity at
a time; :class:`~repro.core.fluid.FluidRun` already smooths that into
small quanta. This module removes the event loop entirely: between
*epochs* — scripted backoffs, layer adds/drops, playout start, stall
boundaries — the §2.2 state advances in closed form using
:mod:`repro.core.fluid_solver`, and decision instants are located by
root-bracketing the add/drop residuals. A 40 s scenario costs a few
dozen epochs instead of hundreds of thousands of events.

What the fluid model keeps exact (oracle feedback, scripted sawtooth):

- the AIMD rate trajectory (identical closed form to ScriptedAimd);
- total buffering as the integral of ``r(t) - na*C`` per phase;
- the §3.1 buffer-only add condition and the §2.2 drop rule, evaluated
  continuously (the packet adapter evaluates them once per
  ``drain_period`` tick, so packet decisions lag fluid ones by up to
  one tick plus packet-quantization).

What it approximates (documented in docs/MECHANISM.md):

- per-layer buffer *levels* come from a bottom-up split of the total
  (:func:`repro.core.fluid_solver.split_total`), not a replay of the
  §4.1 per-packet walk;
- the underflow/shortfall critical situations collapse into the drop
  rule: with fluid buffers the rule's threshold reaches zero exactly
  when drainable data runs out, so the rule fires first; the packet
  engine's UNDERFLOW/SHORTFALL drops are packetization artifacts of the
  same boundary.

The packet-vs-fluid differential harness (``tests/differential/``)
pins these claims on the paper-figure scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import fluid_solver, formulas
from repro.core.config import QAConfig
from repro.core.fluid import ScriptedAimd
from repro.core.metrics import DropCause, DropEvent, QualityMetrics
from repro.core.tolerances import TIME_SLACK as _TOL
from repro.core.units import Bytes, BytesPerSec, BytesPerSec2, Seconds
from repro.sim.trace import Tracer

EventHook = Callable[[float, str, dict[str, object]], None]

#: Phases of the fluid state machine (Figure 3's filling/draining plus
#: the stalled-base corner the paper calls playback starvation).
_FILL = "fill"
_DRAIN = "drain"
_STALL = "stall"

#: Hard ceiling on epochs per run: real dynamics take a handful of
#: epochs per backoff; hitting this means a residual is oscillating at
#: float precision and the run must fail loudly, not spin.
MAX_EPOCHS = 100_000


@dataclass
class FluidFlowResult:
    """Outcome of one analytic fluid flow.

    ``tracer``/``metrics`` mirror what a packet session exposes so the
    same summaries work on both; the byte accumulators feed the
    conservation property tests.
    """

    tracer: Tracer
    metrics: QualityMetrics
    duration: float
    sent_bytes: float
    consumed_bytes: float
    discarded_bytes: float
    stall_shortfall_bytes: float
    final_buffer: float
    final_layers: int
    epochs: int

    @property
    def conservation_error(self) -> float:
        """Sent minus (consumed + discarded + still buffered); ~0."""
        return fluid_solver.conservation_error(
            self.sent_bytes, self.consumed_bytes, self.discarded_bytes,
            0.0, self.final_buffer)

    def summary(self) -> dict:
        out = self.metrics.summary()
        try:
            out["mean_layers"] = self.tracer.get("layers").time_average()
            out["mean_rate"] = self.tracer.get("rate").time_average()
        except KeyError:
            pass
        out["sent_bytes"] = self.sent_bytes
        out["epochs"] = self.epochs
        return out


class FluidEngine:
    """Advance one QA flow analytically under a scripted AIMD sawtooth.

    Args:
        config: the mechanism's tunables. Interpreted under oracle
            feedback (nothing in flight, losses impossible) — the same
            conditions :class:`~repro.core.fluid.FluidRun` forces.
        bandwidth: the scripted sawtooth. Mutated during the run (its
            pending backoffs are consumed); pass ``bandwidth.clone()``
            to keep the original reusable.
        duration: simulated seconds.
        start: flow start time (epochs begin here; playout starts
            ``config.startup_delay`` later).
        sample_period: trace sampling grid; ``None`` disables the
            tracer entirely (decision events and metrics still record).
        on_event: optional ``(t, kind, fields)`` hook, fired for
            add/drop/backoff/playout/stall transitions. ``None`` (a
            disabled telemetry sink) costs nothing.
    """

    def __init__(
        self,
        config: QAConfig,
        bandwidth: ScriptedAimd,
        duration: float,
        start: float = 0.0,
        sample_period: Optional[float] = 0.02,
        on_event: Optional[EventHook] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.config = config
        self.bandwidth = bandwidth
        self.duration = duration
        self.start = start
        self.sample_period = sample_period
        self.on_event = on_event

        self.tracer = Tracer()
        self.metrics = QualityMetrics()
        self.t: Seconds = start
        self.active_layers = 1  # the base layer is always sent
        self.buffer: Bytes = 0.0
        self.playout_started = False
        self.playout_time: Seconds = start + config.startup_delay

        self.sent_bytes: Bytes = 0.0
        self.consumed_bytes: Bytes = 0.0
        self.discarded_bytes: Bytes = 0.0
        self.stall_shortfall_bytes: Bytes = 0.0
        self.epochs = 0

        self._stall_since: Optional[Seconds] = None
        self._next_sample: Optional[Seconds] = (
            start if sample_period is not None else None)

    # ------------------------------------------------------------- helpers

    @property
    def slope(self) -> BytesPerSec2:
        """Decision slope: the override if set, else the scripted S.

        The packet adapter EWMAs its transport's estimate; under a
        scripted sawtooth that estimate is the constant ``S``, so the
        two agree exactly.
        """
        if self.config.slope_override is not None:
            return self.config.slope_override
        return self.bandwidth.slope

    @property
    def consumption(self) -> BytesPerSec:
        return self.config.consumption(self.active_layers)

    def _emit(self, kind: str, **fields: object) -> None:
        if self.on_event is not None:
            self.on_event(self.t, kind, fields)

    def _drainable(self, total: Bytes) -> Bytes:
        """Buffering usable for recovery: total minus the base margin.

        Oracle feedback keeps nothing in flight, so the protected slice
        is exactly the base layer's stall floor (capped by what exists).
        """
        return max(0.0, total - min(total, self.config.base_floor_bytes))

    def _delta(self, t0: Seconds, t1: Seconds,
               cons: BytesPerSec) -> Bytes:
        """Closed-form buffer change over ``[t0, t1]`` (no epoch inside).

        The sawtooth has no pending backoff in the window, so the rate
        is the capped ramp anchored at ``(t0, r(t0))``.
        """
        return fluid_solver.net_buffer_delta(
            self.bandwidth.rate(t0), self.bandwidth.slope, t0, cons,
            t0, t1, self.bandwidth.max_rate)

    def _sent(self, t0: Seconds, t1: Seconds) -> Bytes:
        return fluid_solver.ramp_integral(
            self.bandwidth.rate(t0), self.bandwidth.slope, t0, t0, t1,
            self.bandwidth.max_rate)

    # -------------------------------------------------------------- phases

    def _phase(self) -> str:
        if not self.playout_started:
            return _FILL
        rate = self.bandwidth.rate(self.t)
        if rate + formulas.EPSILON >= self.consumption:
            return _FILL
        if self.buffer > formulas.EPSILON:
            return _DRAIN
        return _STALL

    def _fill_resume_time(self) -> Optional[Seconds]:
        """When the climbing rate reaches ``na*C`` again (drain ends)."""
        target = self.consumption
        if (self.bandwidth.max_rate is not None
                and self.bandwidth.max_rate < target - formulas.EPSILON):
            return None  # capped below consumption: drains forever
        rate = self.bandwidth.rate(self.t)
        if rate >= target:
            return self.t
        return self.t + (target - rate) / self.bandwidth.slope

    # --------------------------------------------------------------- moves

    def _do_add(self) -> None:
        self.active_layers += 1
        self.metrics.record_add(self.t, self.active_layers - 1)
        self._emit("add", layer=self.active_layers - 1,
                   active=self.active_layers)

    def _drop_top(self, cause: DropCause, rate: BytesPerSec) -> None:
        """Drop the top layer, discarding its (split) buffer share."""
        layer = self.active_layers - 1
        levels = fluid_solver.split_total(
            self.buffer, rate, self.config, self.active_layers, self.slope)
        share: Bytes = levels[-1] if levels else 0.0
        buf_total = self.buffer
        required = formulas.draining_recovery_requirement(
            rate, self.consumption, self.slope)
        drainable = self._drainable(buf_total)
        self.metrics.record_drop(DropEvent(
            time=self.t, layer=layer, buf_drop=share, buf_total=buf_total,
            required=required, cause=cause, drainable=drainable))
        self.buffer -= share
        self.discarded_bytes += share
        self.active_layers -= 1
        self._emit("drop", layer=layer, cause=cause.value,
                   active=self.active_layers, buf_drop=share,
                   buf_total=buf_total, required=required, rate=rate,
                   slope=self.slope, drainable=drainable)

    def _apply_drop_rule(self, rate: BytesPerSec) -> None:
        """§2.2, iteratively: each drop discards buffer, then re-check."""
        while self.active_layers > 1:
            margin = fluid_solver.drop_margin(
                rate, self.consumption, self.slope,
                self._drainable(self.buffer))
            if margin < -formulas.EPSILON:
                return
            self._drop_top(DropCause.RULE, rate)

    def _apply_backoff(self, at: Seconds) -> None:
        new_rate = self.bandwidth.apply_backoff(at)
        self._emit("backoff", rate=new_rate)
        self._apply_drop_rule(new_rate)

    def _start_playout(self) -> None:
        self.playout_started = True
        self.metrics.startup_latency = self.config.startup_delay
        self._emit("playout_start")

    def _enter_stall(self) -> None:
        if self._stall_since is None:
            self._stall_since = self.t
            self._emit("stall_start")

    def _exit_stall(self) -> None:
        if self._stall_since is not None:
            self.metrics.record_stall(self.t - self._stall_since)
            self._emit("stall_end", duration=self.t - self._stall_since)
            self._stall_since = None

    # ------------------------------------------------------------ sampling

    def _record_sample(self, t: Seconds, rate: BytesPerSec,
                       total: Bytes) -> None:
        tr = self.tracer
        tr.record("rate", t, rate)
        tr.record("consumption", t, self.consumption)
        tr.record("layers", t, self.active_layers)
        levels = fluid_solver.split_total(
            total, rate, self.config, self.active_layers, self.slope)
        for i in range(self.config.max_layers):
            tr.record(f"buffer_L{i}", t,
                      levels[i] if i < len(levels) else 0.0)
        tr.record("total_buffer", t, total)

    def _sample_segment(self, t0: Seconds, t1: Seconds,
                        cons: BytesPerSec, frozen: bool) -> None:
        """Emit grid samples in ``[t0, t1]`` from the closed forms.

        ``frozen`` marks stall segments where the buffer holds level
        instead of integrating the net rate.
        """
        if self._next_sample is None or self.sample_period is None:
            return
        while self._next_sample <= t1 + _TOL:
            g = self._next_sample
            if g > self.duration + _TOL:
                return
            g = min(g, t1)
            total = (self.buffer if frozen
                     else self.buffer + self._delta(t0, g, cons))
            self._record_sample(g, self.bandwidth.rate(g), max(0.0, total))
            self._next_sample += self.sample_period

    # ------------------------------------------------------------ run loop

    def run(self) -> FluidFlowResult:
        while self.t < self.duration - _TOL:
            self.epochs += 1
            if self.epochs > MAX_EPOCHS:
                raise RuntimeError(
                    f"fluid epoch solver did not converge by t={self.t}")
            self._advance_one_epoch()
        self._exit_stall()
        return FluidFlowResult(
            tracer=self.tracer, metrics=self.metrics,
            duration=self.duration, sent_bytes=self.sent_bytes,
            consumed_bytes=self.consumed_bytes,
            discarded_bytes=self.discarded_bytes,
            stall_shortfall_bytes=self.stall_shortfall_bytes,
            final_buffer=self.buffer, final_layers=self.active_layers,
            epochs=self.epochs)

    def _advance_one_epoch(self) -> None:
        t0 = self.t
        # Backoffs due now fire before anything else (mirrors FluidRun's
        # step ordering: backoff, then sends).
        next_backoff = self.bandwidth.next_backoff()
        if next_backoff is not None and next_backoff <= t0 + _TOL:
            for at in self.bandwidth.backoffs_until(t0 + _TOL):
                self._apply_backoff(at)
            return
        horizon: Seconds = self.duration
        if next_backoff is not None:
            horizon = min(horizon, next_backoff)
        phase = self._phase()
        if phase == _FILL:
            self._advance_fill(t0, horizon)
        elif phase == _DRAIN:
            self._advance_drain(t0, horizon)
        else:
            self._advance_stall(t0, horizon)
        # Boundary events reached at the epoch's end.
        if not self.playout_started and self.t >= self.playout_time - _TOL:
            self._start_playout()
        if next_backoff is not None and self.t >= next_backoff - _TOL:
            for at in self.bandwidth.backoffs_until(self.t + _TOL):
                self._apply_backoff(at)

    # Per-phase epoch advances. Each finds the earliest decision crossing
    # inside its window, moves the closed-form state there, and lets the
    # main loop reclassify.

    def _advance_fill(self, t0: Seconds, horizon: Seconds) -> None:
        if not self.playout_started:
            horizon = min(horizon, self.playout_time)
        cons: BytesPerSec = self.consumption if self.playout_started else 0.0
        t_add = self._find_add_crossing(t0, horizon, cons)
        t1 = t_add if t_add is not None else horizon
        self._move(t0, t1, cons, frozen=False)
        if t_add is not None:
            self._do_add()

    def _find_add_crossing(self, t0: Seconds, hi: Seconds,
                           cons: BytesPerSec) -> Optional[Seconds]:
        if self.active_layers >= self.config.max_layers:
            return None
        b0 = self.buffer
        reserve = self.config.base_floor_bytes

        def residual(t: Seconds) -> float:
            total = b0 + self._delta(t0, t, cons)
            return fluid_solver.add_margin(
                self.bandwidth.rate(t), total, self.config,
                self.active_layers, self.slope, reserve)

        return fluid_solver.first_crossing(residual, t0, hi)

    def _advance_drain(self, t0: Seconds, horizon: Seconds) -> None:
        cons = self.consumption
        rate0 = self.bandwidth.rate(t0)
        t_fill = self._fill_resume_time()
        if t_fill is not None:
            horizon = min(horizon, t_fill)
        b0 = self.buffer

        # Rule crossing: the deficit shrinks linearly while the drop
        # threshold sinks with the draining buffer; first sign change
        # wins. Checked continuously — the packet adapter re-evaluates
        # once per drain_period tick, hence the documented decision lag.
        def rule_residual(t: Seconds) -> float:
            total = b0 + self._delta(t0, t, cons)
            return fluid_solver.drop_margin(
                self.bandwidth.rate(t), cons, self.slope,
                self._drainable(total))

        def empty_residual(t: Seconds) -> float:
            return -(b0 + self._delta(t0, t, cons))

        t_rule = (fluid_solver.first_crossing(rule_residual, t0, horizon)
                  if self.active_layers > 1 else None)
        t_empty = fluid_solver.first_crossing(empty_residual, t0, horizon)
        t1 = min(x for x in (t_rule, t_empty, horizon) if x is not None)
        self._move(t0, t1, cons, frozen=False)
        if t_rule is not None and t1 >= t_rule - _TOL:
            self._apply_drop_rule(self.bandwidth.rate(self.t))
        elif t_empty is not None and t1 >= t_empty - _TOL:
            self.buffer = 0.0
            if self.active_layers == 1:
                self._enter_stall()
            else:
                # Drainable ran out with layers still active: the rule's
                # threshold is zero against a positive deficit, so this
                # is a rule drop at the exhaustion instant.
                self._apply_drop_rule(self.bandwidth.rate(self.t))
        _ = rate0  # anchor documented; closed forms re-derive per call

    def _advance_stall(self, t0: Seconds, horizon: Seconds) -> None:
        """Base-layer starvation: arrivals play out instantly, no refill.

        Ends when the rate climbs back to the (base-only) consumption.
        """
        self._enter_stall()
        t_fill = self._fill_resume_time()
        if t_fill is not None:
            horizon = min(horizon, t_fill)
        t1 = horizon
        arrived = self._sent(t0, t1)
        wanted = self.consumption * (t1 - t0)
        self._sample_segment(t0, t1, 0.0, frozen=True)
        self.sent_bytes += arrived
        self.consumed_bytes += min(arrived, wanted)
        shortfall = max(0.0, wanted - arrived)
        self.stall_shortfall_bytes += shortfall
        self.metrics.base_underflow_bytes += shortfall
        self.buffer += max(0.0, arrived - wanted)
        self.t = t1
        if (t_fill is not None and t1 >= t_fill - _TOL) or shortfall <= 0:
            self._exit_stall()

    def _move(self, t0: Seconds, t1: Seconds, cons: BytesPerSec,
              frozen: bool) -> None:
        """Advance accumulators and clock across a smooth segment."""
        if t1 <= t0:
            self.t = max(self.t, t1)
            return
        self._sample_segment(t0, t1, cons, frozen)
        sent = self._sent(t0, t1)
        self.sent_bytes += sent
        self.consumed_bytes += cons * (t1 - t0)
        self.buffer = max(0.0, self.buffer + sent - cons * (t1 - t0))
        self.t = t1
