"""Tracing utilities: time series, periodic samplers, event logs.

Every figure in the paper is a time series (rates, per-layer buffering,
drain rates). :class:`TimeSeries` is a simple (t, value) recorder with a few
analysis helpers; :class:`PeriodicSampler` drives callables at a fixed
sampling period; :class:`Tracer` groups named series for an experiment.
"""

from __future__ import annotations

import bisect
import csv
import io
from typing import Callable, Optional, Sequence

from repro.sim.engine import Simulator


class TimeSeries:
    """An append-only (time, value) series with analysis helpers."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def record(self, time: float, value: float) -> None:
        """Append a sample. Times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"{self.name}: time went backwards ({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def value_at(self, time: float, default: float = 0.0) -> float:
        """Step-interpolated value at ``time`` (last sample <= time)."""
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return default
        return self.values[idx]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t <= end`` as a new series."""
        out = TimeSeries(self.name)
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def final(self) -> float:
        return self.values[-1] if self.values else 0.0

    def time_average(self) -> float:
        """Integral of the step function divided by the covered span."""
        if len(self.times) < 2:
            return self.mean()
        area = 0.0
        for i in range(len(self.times) - 1):
            area += self.values[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        return area / span if span > 0 else self.mean()

    def change_count(self, tolerance: float = 0.0) -> int:
        """Number of times the value changes by more than ``tolerance``."""
        changes = 0
        for i in range(1, len(self.values)):
            if abs(self.values[i] - self.values[i - 1]) > tolerance:
                changes += 1
        return changes

    def derivative(self) -> "TimeSeries":
        """Finite-difference derivative series (len-1 samples)."""
        out = TimeSeries(f"d({self.name})/dt")
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt <= 0:
                continue
            out.record(self.times[i],
                       (self.values[i] - self.values[i - 1]) / dt)
        return out


class PeriodicSampler:
    """Calls ``callback(now)`` every ``period`` seconds until stopped."""

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[float], None],
        start: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.period = period
        self.callback = callback
        self._stopped = False
        sim.schedule(max(0.0, start - sim.now), self._tick, priority=0)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.callback(self.sim.now)
        self.sim.schedule(self.period, self._tick, priority=0)


class Tracer:
    """A named collection of time series plus a free-form event log."""

    def __init__(self) -> None:
        self.series: dict[str, TimeSeries] = {}
        self.events: list[tuple[float, str, dict]] = []

    def get(self, name: str) -> TimeSeries:
        """The recorded series ``name``.

        Raises a KeyError that names the missing series *and* lists what
        was actually traced — the lookup usually happens deep inside a
        summary/render call, far from whoever mistyped the channel.
        """
        ts = self.series.get(name)
        if ts is None:
            available = ", ".join(sorted(self.series)) or "<none>"
            raise KeyError(
                f"no traced series named {name!r}; available: {available}"
            )
        return ts

    def record(self, name: str, time: float, value: float) -> None:
        """Append a sample, creating the series on first use."""
        ts = self.series.get(name)
        if ts is None:
            ts = TimeSeries(name)
            self.series[name] = ts
        ts.record(time, value)

    def log_event(self, time: float, kind: str, **fields) -> None:
        """Record a discrete event (layer add/drop, underflow, ...)."""
        self.events.append((time, kind, fields))

    def events_of(self, kind: str) -> list[tuple[float, dict]]:
        return [(t, f) for (t, k, f) in self.events if k == kind]

    def to_csv(self, names: Optional[Sequence[str]] = None) -> str:
        """Merge the named series (or all) into a sampled-row CSV string.

        Rows are emitted at the union of sample times using step
        interpolation, which is exactly how the paper's gnuplot traces look.
        """
        if names is None:
            names = sorted(self.series)
        columns = {n: self.get(n) for n in names}
        all_times = sorted({t for ts in columns.values() for t in ts.times})
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["time", *names])
        for t in all_times:
            writer.writerow(
                [f"{t:.6f}"]
                + [f"{columns[n].value_at(t):.6f}" for n in names]
            )
        return buf.getvalue()
