"""Discrete-event network simulation substrate.

This subpackage is the stand-in for the ns-2 simulator used by the paper.
It provides:

- :mod:`repro.sim.engine` -- the event loop (:class:`Simulator`).
- :mod:`repro.sim.packet` -- packets and packet types.
- :mod:`repro.sim.link` -- point-to-point links with rate and delay.
- :mod:`repro.sim.queues` -- drop-tail (and RED) queues.
- :mod:`repro.sim.node` -- hosts and routers that forward packets.
- :mod:`repro.sim.topology` -- canonical dumbbell topology builder.
- :mod:`repro.sim.parking_lot` -- multi-bottleneck chain topology.
- :mod:`repro.sim.flowmon` -- per-flow throughput and Jain fairness.
- :mod:`repro.sim.trace` -- time-series recording of simulation state.
- :mod:`repro.sim.rng` -- deterministic random-number utilities.
- :mod:`repro.sim.fluid` -- analytic fluid fast path (:class:`FluidEngine`).
- :mod:`repro.sim.fluid_batch` -- vectorized homogeneous flow classes.

The simulator is deliberately small but faithful where it matters for the
paper: packet-level transmission and queueing at a shared bottleneck so that
AIMD flows (RAP, TCP) interact through real queue occupancy and drops.
"""

from repro.sim.engine import Simulator, Event
from repro.sim.packet import Packet, PacketType
from repro.sim.link import Link
from repro.sim.queues import DropTailQueue, REDQueue
from repro.sim.node import Node, Host, Router
from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.sim.parking_lot import ParkingLot, ParkingLotConfig
from repro.sim.flowmon import FlowMonitor, jain_index
from repro.sim.trace import TimeSeries, Tracer, PeriodicSampler
# Fluid modules import repro.core.* which imports repro.sim.engine; keep
# these imports last so the partially-initialized package already holds
# every name the core layer needs.
from repro.sim.fluid import FluidEngine, FluidFlowResult
from repro.sim.fluid_batch import BatchResult, FlowClassBatch

__all__ = [
    "Simulator",
    "Event",
    "Packet",
    "PacketType",
    "Link",
    "DropTailQueue",
    "REDQueue",
    "Node",
    "Host",
    "Router",
    "Dumbbell",
    "DumbbellConfig",
    "ParkingLot",
    "ParkingLotConfig",
    "FlowMonitor",
    "jain_index",
    "TimeSeries",
    "Tracer",
    "PeriodicSampler",
    "FluidEngine",
    "FluidFlowResult",
    "BatchResult",
    "FlowClassBatch",
]
