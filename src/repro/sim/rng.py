"""Deterministic random-number utilities.

Every stochastic component takes an explicit RNG so whole experiments are
reproducible from a single seed. ``spawn`` derives independent child streams
(one per flow, per queue, ...) so adding a component never perturbs the
stream seen by another — the trick ns-2 users know as per-object RNG
substreams.

This module is the one sanctioned wrapper around stdlib ``random``: it
subclasses ``random.Random`` to build the seeded streams RL001 requires
everywhere else, hence the file-level suppression.
"""

# repro-lint: disable-file=RL001

from __future__ import annotations

import hashlib
import random
from typing import Optional


def derive_seed(seed: int, *parts: object) -> int:
    """Mix ``seed`` with any hashable labels into a new 31-bit seed.

    Unlike the builtin ``hash``, the mix is computed with SHA-256 over the
    reprs, so it is identical in every process regardless of
    ``PYTHONHASHSEED`` — the property that makes experiment results
    bit-for-bit reproducible whether they run in-process or inside a
    worker of the parallel experiment runner.
    """
    material = repr((int(seed),) + parts).encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


class SeededRNG(random.Random):
    """A ``random.Random`` that remembers its seed and can spawn children."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.seed_value = seed
        self._spawn_count = 0

    def spawn(self, label: str = "") -> "SeededRNG":
        """Derive an independent child stream.

        The child seed mixes the parent seed, a spawn counter and the
        label (via :func:`derive_seed`), so streams are stable across runs
        *and processes* and insensitive to spawn order of *other* labels.
        """
        self._spawn_count += 1
        return SeededRNG(derive_seed(self.seed_value, self._spawn_count,
                                     label))

    def jittered(self, value: float, fraction: float) -> float:
        """``value`` +/- up to ``fraction`` of itself, uniformly."""
        if fraction <= 0:
            return value
        return value * (1.0 + self.uniform(-fraction, fraction))


def make_rng(seed: Optional[int]) -> SeededRNG:
    """Canonical constructor: ``None`` means the fixed default seed 1."""
    return SeededRNG(1 if seed is None else seed)
