"""Deterministic random-number utilities.

Every stochastic component takes an explicit RNG so whole experiments are
reproducible from a single seed. ``spawn`` derives independent child streams
(one per flow, per queue, ...) so adding a component never perturbs the
stream seen by another — the trick ns-2 users know as per-object RNG
substreams.
"""

from __future__ import annotations

import random
from typing import Optional


class SeededRNG(random.Random):
    """A ``random.Random`` that remembers its seed and can spawn children."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.seed_value = seed
        self._spawn_count = 0

    def spawn(self, label: str = "") -> "SeededRNG":
        """Derive an independent child stream.

        The child seed mixes the parent seed, a spawn counter and the label
        hash, so streams are stable across runs and insensitive to spawn
        order of *other* labels.
        """
        self._spawn_count += 1
        mix = hash((self.seed_value, self._spawn_count, label)) & 0x7FFFFFFF
        return SeededRNG(mix)

    def jittered(self, value: float, fraction: float) -> float:
        """``value`` +/- up to ``fraction`` of itself, uniformly."""
        if fraction <= 0:
            return value
        return value * (1.0 + self.uniform(-fraction, fraction))


def make_rng(seed: Optional[int]) -> SeededRNG:
    """Canonical constructor: ``None`` means the fixed default seed 1."""
    return SeededRNG(1 if seed is None else seed)
