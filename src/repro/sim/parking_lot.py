"""Parking-lot topology: multiple bottlenecks in series.

The paper's motivation (§1.2) says congestion will increasingly live "in
the backbone, often at provider interconnects" rather than at the last
hop. A dumbbell has a single shared bottleneck; the parking lot chains
several, with cross traffic entering and leaving at each hop:

::

    e2e_src --[R0]==hop0==[R1]==hop1==[R2]==hop2==[R3]-- e2e_dst
               |            |           |            |
           cross sources enter at Ri, exit at R(i+1)

The end-to-end pair crosses every hop; cross pair ``i`` only crosses hop
``i``. This is the classic setup where an end-to-end flow sees the
*product* of per-hop loss and the sum of queueing delays -- a harsher
environment than anything in the paper's evaluation, used by the
robustness tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Host, Router
from repro.sim.queues import DropTailQueue


@dataclass
class ParkingLotConfig:
    """Parameters of the chain."""

    n_hops: int = 3
    hop_bandwidth: float = 100_000.0  # bytes/s per backbone hop
    hop_delay: float = 0.01  # one-way per hop, seconds
    access_bandwidth: float = 10_000_000.0
    access_delay: float = 0.002
    queue_capacity_packets: int = 50

    def __post_init__(self) -> None:
        if self.n_hops < 1:
            raise ValueError("need at least one hop")


class ParkingLot:
    """A built parking-lot network.

    Attributes:
        e2e_source / e2e_sink: the end-to-end pair crossing every hop.
        cross_sources / cross_sinks: one pair per hop, entering at the
            hop's upstream router and leaving at its downstream router.
        hops: the forward backbone links (where congestion lives).
    """

    def __init__(self, sim: Simulator, config: ParkingLotConfig) -> None:
        self.sim = sim
        self.config = config
        n = config.n_hops
        self.routers = [Router(sim, f"R{i}") for i in range(n + 1)]
        self.hops: list[Link] = []
        self.reverse_hops: list[Link] = []

        for i in range(n):
            forward = Link(sim, config.hop_bandwidth, config.hop_delay,
                           DropTailQueue(config.queue_capacity_packets),
                           name=f"hop{i}")
            forward.connect(self.routers[i + 1].receive)
            self.hops.append(forward)
            backward = Link(sim, config.hop_bandwidth, config.hop_delay,
                            DropTailQueue(1000), name=f"hop{i}-rev")
            backward.connect(self.routers[i].receive)
            self.reverse_hops.append(backward)

        self.e2e_source = self._attach_host("e2e_src", 0)
        self.e2e_sink = self._attach_host("e2e_dst", n)
        self.cross_sources: list[Host] = []
        self.cross_sinks: list[Host] = []
        for i in range(n):
            self.cross_sources.append(
                self._attach_host(f"xsrc{i}", i))
            self.cross_sinks.append(
                self._attach_host(f"xdst{i}", i + 1))
        self._build_routes()

    def _attach_host(self, name: str, router_index: int) -> Host:
        cfg = self.config
        host = Host(self.sim, name)
        router = self.routers[router_index]
        up = Link(self.sim, cfg.access_bandwidth, cfg.access_delay,
                  DropTailQueue(10_000), name=f"{name}->R{router_index}")
        up.connect(router.receive)
        host.set_default_route(up)
        down = Link(self.sim, cfg.access_bandwidth, cfg.access_delay,
                    DropTailQueue(10_000), name=f"R{router_index}->{name}")
        down.connect(host.receive)
        router.add_route(name, down)
        self._host_router = getattr(self, "_host_router", {})
        self._host_router[name] = router_index
        return host

    def _build_routes(self) -> None:
        """Static shortest-path routes along the chain."""
        n = self.config.n_hops
        for i, router in enumerate(self.routers):
            for name, at in self._host_router.items():
                if at == i:
                    continue  # local delivery route already installed
                if at > i:
                    router.add_route(name, self.hops[i])
                else:
                    router.add_route(name, self.reverse_hops[i - 1])

    @property
    def base_rtt(self) -> float:
        """Propagation-only end-to-end RTT."""
        cfg = self.config
        return 2 * (2 * cfg.access_delay
                    + cfg.n_hops * cfg.hop_delay)
