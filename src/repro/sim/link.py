"""Point-to-point links.

A :class:`Link` serializes packets at a fixed bandwidth (bytes/s), holds
them for a propagation delay, and hands them to a receiver callable. Each
link owns an output queue (drop-tail by default); arrivals while the
transmitter is busy wait in the queue, arrivals to a full queue are dropped.
This is the standard store-and-forward model ns-2 uses, and is the sole
source of packet loss in the paper's simulations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - layering: sim never imports
    from repro.telemetry.metrics import MetricsRegistry  # telemetry at runtime

Receiver = Callable[[Packet], None]


class Link:
    """Unidirectional link with bandwidth, propagation delay and a queue.

    Args:
        sim: the event engine.
        bandwidth: serialization rate in **bytes per second**.
        delay: one-way propagation delay in seconds.
        queue: output queue; a generous default is created if omitted.
        name: label used in traces.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        delay: float,
        queue: Optional[DropTailQueue] = None,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.sim = sim
        self.bandwidth = bandwidth
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(10_000)
        self.name = name
        self.receiver: Optional[Receiver] = None
        self._busy = False
        self.bytes_forwarded = 0
        self.packets_forwarded = 0
        # Metrics hooks (None unless attach_metrics ran): the hot path
        # pays one attribute load + None check when metrics are off.
        self._forward_hook: Optional[Callable[[float], None]] = None
        self._qdrop_hook: Optional[Callable[[float], None]] = None

    def connect(self, receiver: Receiver) -> None:
        """Attach the downstream receiver (a node's ``receive`` method)."""
        self.receiver = receiver

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Wire this link into a metrics registry.

        Per-packet counters (forwarded bytes/packets, queue drops) bind
        as hooks that are ``None`` when the registry is disabled (RL007
        discipline); the queue-depth gauge is collector-fed, read only
        at export time.
        """
        self._forward_hook = registry.counter_hook(
            "link_tx_bytes_total", "Bytes serialized onto the wire",
            link=self.name)
        self._qdrop_hook = registry.counter_hook(
            "link_queue_drops_total", "Packets dropped at the full queue",
            link=self.name)
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self, registry: "MetricsRegistry") -> None:
        registry.gauge(
            "link_queue_depth", "Packets waiting in the output queue",
            link=self.name).set(float(len(self.queue)))
        registry.gauge(
            "link_packets_forwarded", "Packets forwarded end to end",
            link=self.name).set(float(self.packets_forwarded))

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized onto the wire."""
        return self._busy

    def utilization_bytes(self) -> int:
        """Total bytes forwarded so far (for utilization accounting)."""
        return self.bytes_forwarded

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Returns False if the queue dropped it. Transmission begins
        immediately when the transmitter is idle.
        """
        if self.receiver is None:
            raise RuntimeError(f"{self.name}: receiver not connected")
        if not self.queue.enqueue(packet):
            hook = self._qdrop_hook
            if hook is not None:
                hook(1.0)
            return False
        if not self._busy:
            self._start_transmission()
        return True

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = packet.size / self.bandwidth
        self.sim.schedule(
            tx_time, self._transmission_done, priority=0, args=(packet,)
        )

    def _transmission_done(self, packet: Packet) -> None:
        self.bytes_forwarded += packet.size
        self.packets_forwarded += 1
        hook = self._forward_hook
        if hook is not None:
            hook(float(packet.size))
        # Propagation: deliver after `delay`; the transmitter frees up now.
        self.sim.schedule(
            self.delay, self._deliver, priority=0, args=(packet,)
        )
        if len(self.queue) > 0:
            self._start_transmission()
        else:
            self._busy = False

    def _deliver(self, packet: Packet) -> None:
        assert self.receiver is not None
        self.receiver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name}, {self.bandwidth:.0f} B/s, {self.delay * 1e3:.1f} ms, "
            f"qlen={len(self.queue)})"
        )
