"""Dumbbell topology builder.

All of the paper's simulations run over a single shared bottleneck: several
sources on one side, their sinks on the other, a drop-tail queue at the
bottleneck entrance. The dumbbell is symmetric so ACKs travel the reverse
path (uncongested by default, as in the paper where the reverse path is not
the bottleneck).

::

    src_0 --\\                       /-- dst_0
    src_1 ---[R0]==bottleneck==[R1]---- dst_1
    src_n --/                       \\-- dst_n

Access links are fast (default 100x the bottleneck) and contribute a fixed
per-hop delay; the end-to-end RTT is ``2 * (2*access_delay +
bottleneck_delay)`` plus queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Host, Router
from repro.sim.queues import DropTailQueue


@dataclass
class DumbbellConfig:
    """Parameters of the dumbbell.

    Defaults follow the paper's section 5 setup: 800 Kb/s bottleneck
    (100,000 bytes/s), 40 ms round-trip propagation, 1000-byte packets, and
    a bottleneck buffer of about one bandwidth-delay product's worth of
    packets (ns-2's default-style small FIFO).
    """

    n_pairs: int = 1
    bottleneck_bandwidth: float = 100_000.0  # bytes/s == 800 Kb/s
    bottleneck_delay: float = 0.010  # one-way, seconds
    access_bandwidth: float = 10_000_000.0  # bytes/s, effectively uncongested
    access_delay: float = 0.005  # one-way, seconds
    queue_capacity_packets: int = 20
    reverse_queue_capacity_packets: int = 1000  # ACK path: effectively lossless

    @property
    def round_trip_propagation(self) -> float:
        """RTT with empty queues (both directions, all hops)."""
        return 2 * (2 * self.access_delay + self.bottleneck_delay)


class Dumbbell:
    """A built dumbbell network.

    Attributes:
        sources: list of source hosts (index i talks to ``sinks[i]``).
        sinks: list of destination hosts.
        left, right: the two routers.
        bottleneck: the forward (congested) bottleneck link.
        reverse_bottleneck: the reverse link carrying ACKs.
    """

    def __init__(self, sim: Simulator, config: DumbbellConfig) -> None:
        if config.n_pairs < 1:
            raise ValueError("need at least one source/sink pair")
        self.sim = sim
        self.config = config
        self.left = Router(sim, "R0")
        self.right = Router(sim, "R1")
        self.sources: list[Host] = []
        self.sinks: list[Host] = []

        self.bottleneck = Link(
            sim,
            config.bottleneck_bandwidth,
            config.bottleneck_delay,
            DropTailQueue(config.queue_capacity_packets),
            name="bottleneck",
        )
        self.bottleneck.connect(self.right.receive)
        self.reverse_bottleneck = Link(
            sim,
            config.bottleneck_bandwidth,
            config.bottleneck_delay,
            DropTailQueue(config.reverse_queue_capacity_packets),
            name="bottleneck-rev",
        )
        self.reverse_bottleneck.connect(self.left.receive)
        self.left.set_default_route(self.bottleneck)
        self.right.set_default_route(self.reverse_bottleneck)

        for i in range(config.n_pairs):
            self._add_pair(i)

    def _add_pair(self, index: int) -> None:
        cfg = self.config
        src = Host(self.sim, f"src{index}")
        dst = Host(self.sim, f"dst{index}")

        up = Link(self.sim, cfg.access_bandwidth, cfg.access_delay,
                  DropTailQueue(10_000), name=f"src{index}->R0")
        up.connect(self.left.receive)
        src.set_default_route(up)

        down = Link(self.sim, cfg.access_bandwidth, cfg.access_delay,
                    DropTailQueue(10_000), name=f"R1->dst{index}")
        down.connect(dst.receive)
        self.right.add_route(dst.name, down)

        back_up = Link(self.sim, cfg.access_bandwidth, cfg.access_delay,
                       DropTailQueue(10_000), name=f"dst{index}->R1")
        back_up.connect(self.right.receive)
        dst.set_default_route(back_up)

        back_down = Link(self.sim, cfg.access_bandwidth, cfg.access_delay,
                         DropTailQueue(10_000), name=f"R0->src{index}")
        back_down.connect(src.receive)
        self.left.add_route(src.name, back_down)

        self.sources.append(src)
        self.sinks.append(dst)

    def pair(self, index: int) -> tuple[Host, Host]:
        """Return the (source, sink) hosts of flow slot ``index``."""
        return self.sources[index], self.sinks[index]

    @property
    def base_rtt(self) -> float:
        """Propagation-only RTT between any source/sink pair."""
        return self.config.round_trip_propagation
