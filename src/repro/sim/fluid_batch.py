"""FlowClassBatch: one numpy program simulating thousands of QA flows.

The per-flow :class:`~repro.sim.fluid.FluidEngine` is exact between
epochs but advances one flow at a time. For population questions —
Chen-style admission control, fairness at scale — the bottleneck is flow
*count*, and the flows of interest form homogeneous classes: same
mechanism config, same AIMD slope, per-flow differences confined to the
sawtooth script (initial rate, backoff phase). This module vectorizes
that class: all per-flow state lives in float64 arrays and one
fixed-step loop advances every flow at once, so 10k flows cost a few
hundred numpy passes instead of 10k event-driven runs.

Fidelity tier (documented in docs/MECHANISM.md): the batch evaluates
add/drop decisions at window boundaries (``step`` seconds — the same
cadence the packet adapter's ``drain_period`` tick uses) and replaces
two per-flow exact forms with vectorized bounds:

- the add requirement uses the dominant ``K_max`` state's *total*
  (closed form via the ``k1`` halving count) instead of the per-layer
  running-max split;
- a dropped layer discards at most its maintenance floor (top layers
  drain first; the per-flow engine computes the exact split share).

Everything else — capped-ramp integrals, the §2.2 drop inequality,
stall bookkeeping — is the same closed forms as the scalar engine,
applied elementwise. Flows never interact, so results are independent
of batch partitioning: running a class in two halves and concatenating
is bit-identical to one batch (the seed-split differential test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import formulas
from repro.core.config import QAConfig
from repro.sim.flowmon import jain_index
from repro.sim.rng import SeededRNG, derive_seed

#: Decision cadence when the caller does not pick one: the packet
#: adapter's default drain_period, so batch decision lag matches tick lag.
DEFAULT_STEP = 0.1


def scripted_backoffs(seed: int, flow_index: int, duration: float,
                      mean_interval: float, min_gap: float,
                      jitter: float = 0.3) -> list[float]:
    """A deterministic per-flow backoff script.

    Seeding goes through :func:`repro.sim.rng.derive_seed` keyed by the
    flow's *index*, never by batch position — the property that makes a
    sub-batch's flow ``i`` identical to the full batch's flow ``i``.
    ``min_gap`` must be at least twice the batch step so no window holds
    two backoffs.
    """
    rng = SeededRNG(derive_seed(seed, "fluid-batch-flow", flow_index))
    times: list[float] = []
    t = mean_interval * (0.2 + 0.8 * rng.random())
    while t < duration:
        times.append(t)
        gap = mean_interval * (1.0 + jitter * (2.0 * rng.random() - 1.0))
        t += max(min_gap, gap)
    return times


@dataclass
class BatchResult:
    """Per-flow outcome arrays plus class-level aggregates."""

    n_flows: int
    duration: float
    #: final active layers per flow (int64).
    layers: np.ndarray
    #: time-averaged active layers per flow.
    mean_layers: np.ndarray
    #: mean transmission rate per flow (bytes/s).
    mean_rate: np.ndarray
    #: final buffered bytes per flow.
    buffer: np.ndarray
    sent_bytes: np.ndarray
    consumed_bytes: np.ndarray
    discarded_bytes: np.ndarray
    stall_bytes: np.ndarray
    adds: np.ndarray
    drops: np.ndarray

    def conservation_error(self) -> np.ndarray:
        """Per-flow ``sent - consumed - discarded - buffered`` (~0)."""
        return (self.sent_bytes - self.consumed_bytes
                - self.discarded_bytes - self.buffer)

    def summary(self) -> dict[str, float]:
        return {
            "n_flows": float(self.n_flows),
            "mean_layers": float(np.mean(self.mean_layers)),
            "mean_rate": float(np.mean(self.mean_rate)),
            "fairness": jain_index([float(r) for r in self.mean_rate]),
            "adds_per_flow": float(np.mean(self.adds)),
            "drops_per_flow": float(np.mean(self.drops)),
            "stall_fraction": float(np.mean(self.stall_bytes > 0.0)),
            "mean_buffer": float(np.mean(self.buffer)),
        }


class FlowClassBatch:
    """A homogeneous class of fluid QA flows advanced in lockstep.

    Args:
        config: shared mechanism config (one class, one codec).
        n_flows: population size.
        slope: shared AIMD slope S (bytes/s^2).
        initial_rate: per-flow start rates, shape ``(n_flows,)`` (or a
            scalar broadcast to all).
        backoff_times: per-flow scripts as a padded 2D array — row i
            holds flow i's backoff instants, padded with ``np.inf``.
            Consecutive entries in a row must be at least ``2 * step``
            apart (one backoff per window).
        duration: simulated seconds.
        step: decision/update cadence (defaults to the packet tick).
        max_rate: shared rate cap (None: uncapped).
        min_rate: floor a halving never goes below.
    """

    def __init__(
        self,
        config: QAConfig,
        n_flows: int,
        slope: float,
        initial_rate: "np.ndarray | float",
        backoff_times: np.ndarray,
        duration: float,
        step: float = DEFAULT_STEP,
        max_rate: Optional[float] = None,
        min_rate: float = 100.0,
    ) -> None:
        if n_flows < 1:
            raise ValueError("n_flows must be positive")
        if duration <= 0 or step <= 0:
            raise ValueError("duration and step must be positive")
        self.config = config
        self.n = n_flows
        self.slope = float(slope)
        self.duration = float(duration)
        self.step = float(step)
        self.max_rate = max_rate
        self.min_rate = float(min_rate)
        self.rate = np.broadcast_to(
            np.asarray(initial_rate, dtype=np.float64), (n_flows,)).copy()
        if backoff_times.ndim != 2 or backoff_times.shape[0] != n_flows:
            raise ValueError("backoff_times must be (n_flows, k)")
        self.backoffs = np.asarray(backoff_times, dtype=np.float64)
        with np.errstate(invalid="ignore"):  # inf-padded rows: inf - inf
            gaps = np.diff(self.backoffs, axis=1)
        finite = np.isfinite(gaps)
        if finite.any() and float(gaps[finite].min()) < 2.0 * self.step:
            raise ValueError(
                "backoff scripts need >= 2*step spacing per flow")
        self._cursor = np.zeros(n_flows, dtype=np.int64)

    @classmethod
    def jittered(
        cls,
        config: QAConfig,
        n_flows: int,
        slope: float,
        duration: float,
        seed: int = 1,
        fair_share: float = 20_000.0,
        mean_backoff_interval: float = 6.0,
        step: float = DEFAULT_STEP,
    ) -> "FlowClassBatch":
        """A class of flows oscillating around a fair share.

        Per-flow backoff phases come from index-keyed derived seeds, so
        the class is identical however it is partitioned into batches.
        """
        scripts = [
            scripted_backoffs(seed, i, duration, mean_backoff_interval,
                              min_gap=2.0 * step)
            for i in range(n_flows)
        ]
        width = max(1, max(len(s) for s in scripts))
        padded = np.full((n_flows, width), np.inf, dtype=np.float64)
        for i, script in enumerate(scripts):
            padded[i, :len(script)] = script
        return cls(
            config, n_flows, slope,
            initial_rate=fair_share,
            backoff_times=padded,
            duration=duration,
            step=step,
            max_rate=2.5 * fair_share,
        )

    # ---------------------------------------------------------- closed forms

    def _ramp_area(self, r0: np.ndarray, dt: np.ndarray) -> np.ndarray:
        """Exact ``∫ r dt`` of the capped ramp, elementwise."""
        if self.max_rate is None:
            return r0 * dt + 0.5 * self.slope * dt * dt
        t_cap = np.clip((self.max_rate - r0) / self.slope, 0.0, dt)
        ramp = r0 * t_cap + 0.5 * self.slope * t_cap * t_cap
        return ramp + self.max_rate * (dt - t_cap)

    def _rate_after(self, r0: np.ndarray, dt: np.ndarray) -> np.ndarray:
        out = r0 + self.slope * dt
        if self.max_rate is not None:
            out = np.minimum(out, self.max_rate)
        return out

    def _add_requirement(self, rate: np.ndarray,
                         na: np.ndarray) -> np.ndarray:
        """Vectorized total-buffer form of the buffer-only add rule.

        The dominant ``K_max`` state total (scenario 1 vs scenario 2 at
        ``k = K_max``, via the closed-form ``k1`` halving count) stands
        in for the per-layer running-max split — a lower bound, so the
        batch adds at most one tick-quantized step early.
        """
        cfg = self.config
        cons = na * cfg.layer_rate
        k_max = cfg.k_max
        # k1: halvings needed to push the rate below consumption (>= 1).
        ratio = np.maximum(rate / np.maximum(cons, 1e-12), 1e-12)
        k1 = np.maximum(1, np.floor(np.log2(ratio)).astype(np.int64) + 1)
        k1 = np.minimum(k1, k_max)
        d1 = np.maximum(cons - rate / (2.0 ** k_max), 0.0)
        s1_total = d1 * d1 / (2.0 * self.slope)
        d_first = np.maximum(cons - rate / (2.0 ** k1), 0.0)
        seq = (cons / 2.0) ** 2 / (2.0 * self.slope)
        s2_total = (d_first * d_first / (2.0 * self.slope)
                    + (k_max - k1) * seq)
        state_total = np.maximum(s1_total, s2_total)
        d_c2 = np.maximum((na + 1) * cfg.layer_rate - rate / 2.0, 0.0)
        condition2 = d_c2 * d_c2 / (2.0 * self.slope)
        return np.maximum(state_total, condition2)

    # ---------------------------------------------------------------- run

    def run(self) -> BatchResult:
        cfg = self.config
        n = self.n
        dt_full = self.step
        base_floor = cfg.base_floor_bytes
        floor = cfg.floor_bytes
        na = np.ones(n, dtype=np.int64)
        buf = np.zeros(n, dtype=np.float64)
        sent = np.zeros(n, dtype=np.float64)
        consumed = np.zeros(n, dtype=np.float64)
        discarded = np.zeros(n, dtype=np.float64)
        stalled = np.zeros(n, dtype=np.float64)
        adds = np.zeros(n, dtype=np.int64)
        drops = np.zeros(n, dtype=np.int64)
        layer_time = np.zeros(n, dtype=np.float64)
        playout_at = cfg.startup_delay
        n_steps = int(round(self.duration / dt_full))
        pad = self.backoffs.shape[1]

        for k in range(n_steps):
            t0 = k * dt_full
            t1 = min(self.duration, t0 + dt_full)
            dt = t1 - t0
            # Scripted backoffs due inside this window: split the ramp
            # at the instant, halve, continue. Scripts guarantee at most
            # one per window per flow.
            cursor = np.minimum(self._cursor, pad - 1)
            tb = self.backoffs[np.arange(n, dtype=np.int64), cursor]
            due = (self._cursor < pad) & (tb < t1)
            pre_dt = np.where(due, np.clip(tb - t0, 0.0, dt), dt)
            area = self._ramp_area(self.rate, pre_dt)
            rate_mid = self._rate_after(self.rate, pre_dt)
            halved = np.maximum(rate_mid / 2.0, self.min_rate)
            rate_mid = np.where(due, halved, rate_mid)
            post_dt = np.where(due, dt - pre_dt, 0.0)
            area = area + self._ramp_area(rate_mid, post_dt)
            self.rate = self._rate_after(rate_mid, post_dt)
            self._cursor = self._cursor + due.astype(np.int64)

            sent += area
            # Consumption covers the playout-overlapping part of the
            # window; the shortfall clamp is the stall/underflow path.
            cons_dt = np.clip(t1 - max(t0, playout_at), 0.0, dt)
            want = na * cfg.layer_rate * cons_dt
            buf = buf + area - want
            shortfall = np.maximum(-buf, 0.0)
            buf = np.maximum(buf, 0.0)
            consumed += want - shortfall
            stalled += shortfall

            # §2.2 drop rule at the tick, iteratively (bounded by the
            # layer ceiling). A dropped layer discards at most its
            # maintenance floor (top layers drain first).
            for _ in range(cfg.max_layers):
                deficit = na * cfg.layer_rate - self.rate
                drainable = np.maximum(buf - base_floor, 0.0)
                threshold = np.sqrt(2.0 * self.slope * drainable)
                fire = (na > 1) & (deficit >= threshold - formulas.EPSILON)
                if not fire.any():
                    break
                loss = np.where(fire, np.minimum(drainable, floor), 0.0)
                buf -= loss
                discarded += loss
                drops += fire.astype(np.int64)
                na = na - fire.astype(np.int64)

            # Buffer-only add, one layer per tick (the adapter's cadence).
            filling = (t1 <= playout_at) | (
                self.rate + formulas.EPSILON >= na * cfg.layer_rate)
            can = filling & (na < cfg.max_layers)
            if can.any():
                required = self._add_requirement(self.rate, na)
                grant = can & (buf - base_floor >= required)
                adds += grant.astype(np.int64)
                na = na + grant.astype(np.int64)

            layer_time += na * dt

        return BatchResult(
            n_flows=n,
            duration=self.duration,
            layers=na,
            mean_layers=layer_time / self.duration,
            mean_rate=sent / self.duration,
            buffer=buf,
            sent_bytes=sent,
            consumed_bytes=consumed,
            discarded_bytes=discarded,
            stall_bytes=stalled,
            adds=adds,
            drops=drops,
        )
