"""Packet model.

Packets are small mutable records. Sizes are in bytes; the paper (and RAP)
use 1000-byte data packets and small ACKs. The ``meta`` dictionary carries
transport- or application-specific annotations (e.g. the video layer id a
packet belongs to) without the core simulator caring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class PacketType(Enum):
    """Coarse packet classification used by nodes and traces."""

    DATA = "data"
    ACK = "ack"


_packet_uid = itertools.count()


@dataclass(slots=True)
class Packet:
    """A simulated packet.

    Attributes:
        flow_id: identifier of the owning flow; sinks demultiplex on this.
        seq: per-flow sequence number.
        size: bytes on the wire (headers included; we do not model headers
            separately, matching the paper's byte accounting).
        ptype: DATA or ACK.
        src / dst: node names (informational; routing in the dumbbell is
            positional).
        created_at: simulation time the source emitted the packet.
        meta: free-form annotations (e.g. ``{"layer": 2}`` for video data,
            or ACK feedback fields).
        uid: globally unique id (monotone), used for deterministic tracing.
    """

    flow_id: int
    seq: int
    size: int
    ptype: PacketType = PacketType.DATA
    src: str = ""
    dst: str = ""
    created_at: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_uid))

    def is_data(self) -> bool:
        return self.ptype is PacketType.DATA

    def is_ack(self) -> bool:
        return self.ptype is PacketType.ACK

    @property
    def layer(self) -> Optional[int]:
        """Video layer this packet carries, if any."""
        return self.meta.get("layer")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" L{self.layer}" if self.layer is not None else ""
        return (
            f"Packet(flow={self.flow_id}, seq={self.seq}, "
            f"{self.ptype.value}{tag}, {self.size}B)"
        )
