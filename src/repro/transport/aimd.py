"""A window-based AIMD transport (the paper's section 7 future work).

The paper: "We plan to extend the idea of quality adaptation to other
congestion control schemes that employ AIMD algorithms." This module
provides exactly that test vehicle: a TCP-style *window* AIMD transport
with the same application hooks as RAP, so the unchanged
:class:`~repro.core.adapter.QualityAdapter` can drive either.

Differences from RAP that matter to quality adaptation:

- transmission is ACK-clocked (bursty at RTT timescales) instead of
  IPG-paced, so the instantaneous rate seen by the adapter is the
  window estimate ``cwnd * P / srtt``;
- additive increase is one packet per window per RTT, giving the same
  slope form S = P / srtt**2 the buffer formulas assume;
- like RAP (and unlike TCP), lost media packets are *not* retransmitted:
  loss detection only frees the window and signals congestion.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.packet import Packet
from repro.transport.base import TransportAgent, next_flow_id
from repro.transport.rap import (
    AckHandler,
    BackoffHandler,
    EventHook,
    LossHandler,
    PayloadPicker,
    RapSink,
)


class WindowAimdSource(TransportAgent):
    """Window-based AIMD media transport with RAP-compatible hooks."""

    REORDER_THRESHOLD = 3
    SRTT_GAIN = 0.125
    RTTVAR_GAIN = 0.25
    INITIAL_CWND = 2.0
    MIN_CWND = 1.0

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        peer_name: str,
        flow_id: Optional[int] = None,
        packet_size: int = 1000,
        srtt_init: float = 0.2,
        start: float = 0.0,
        stop: Optional[float] = None,
        payload_picker: Optional[PayloadPicker] = None,
        on_ack: Optional[AckHandler] = None,
        on_loss: Optional[LossHandler] = None,
        on_backoff: Optional[BackoffHandler] = None,
        on_event: Optional[EventHook] = None,
    ) -> None:
        super().__init__(sim, host, peer_name,
                         flow_id if flow_id is not None else next_flow_id())
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        self.packet_size = packet_size
        self.srtt = srtt_init
        self.rttvar = srtt_init / 2
        self.cwnd = self.INITIAL_CWND
        self.payload_picker = payload_picker
        self.on_ack = on_ack
        self.on_loss = on_loss
        self.on_backoff = on_backoff
        self.on_event = on_event

        self.next_seq = 0
        self.recovery_seq = 0
        self.highest_acked = -1
        self._outstanding: dict[int, tuple[float, dict, int]] = {}
        self._last_ack_time = start
        self._stopped = False
        self.stop_time = stop
        sim.schedule(max(0.0, start - sim.now), self._start, priority=0)

    # ------------------------------------------------------------------ API

    @property
    def rate(self) -> float:
        """Window-based rate estimate in bytes/s."""
        return self.cwnd * self.packet_size / self.srtt

    @property
    def slope(self) -> float:
        """One packet per window per RTT: S = P / srtt**2."""
        return self.packet_size / (self.srtt * self.srtt)

    @property
    def rto(self) -> float:
        return min(5.0, max(0.2, self.srtt + 4 * self.rttvar))

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------ internals

    def _active(self) -> bool:
        if self._stopped:
            return False
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return False
        return True

    def _start(self) -> None:
        if not self._active():
            return
        self._fill_window()
        self._timeout_tick()

    def _fill_window(self) -> None:
        while (self._active()
               and len(self._outstanding) < int(self.cwnd)):
            if not self._send_one():
                break

    def _send_one(self) -> bool:
        meta: Optional[dict] = {}
        if self.payload_picker is not None:
            meta = self.payload_picker(self.next_seq)
            if meta is None:
                # Application idle: retry shortly so the window refills.
                self.sim.schedule(
                    self.srtt / 4, self._fill_window, priority=0
                )
                return False
        packet = self._make_packet(self.next_seq, self.packet_size,
                                   **meta)
        self._outstanding[self.next_seq] = (self.sim.now, packet.meta,
                                            self.packet_size)
        self.next_seq += 1
        self._transmit(packet)
        return True

    def _timeout_tick(self) -> None:
        if not self._active():
            return
        idle = self.sim.now - self._last_ack_time
        if self._outstanding and idle > self.rto:
            self.stats.timeouts += 1
            if self.on_event is not None:
                self.on_event(self.sim.now, "transport_timeout", {
                    "outstanding": len(self._outstanding),
                    "idle": idle, "rto": self.rto,
                })
            for seq in sorted(self._outstanding):
                self._declare_lost(seq)
            self._backoff(self.next_seq)
            self._last_ack_time = self.sim.now
            self._fill_window()
        elif not self._outstanding and idle > self.rto:
            self._fill_window()  # restart a stalled window
        self.sim.schedule(self.rto / 2, self._timeout_tick, priority=0)

    def _backoff(self, triggering_seq: int) -> None:
        if triggering_seq < self.recovery_seq:
            return
        self.cwnd = max(self.MIN_CWND, self.cwnd / 2)
        self.recovery_seq = self.next_seq
        self.stats.backoffs += 1
        if self.on_event is not None:
            self.on_event(self.sim.now, "transport_backoff", {
                "rate": self.rate, "srtt": self.srtt,
                "cwnd": self.cwnd, "trigger_seq": triggering_seq,
            })
        if self.on_backoff is not None:
            self.on_backoff(self.rate)

    def _declare_lost(self, seq: int) -> None:
        _, meta, size = self._outstanding.pop(seq)
        self.stats.packets_lost += 1
        if self.on_event is not None:
            self.on_event(self.sim.now, "transport_loss", {
                "seq": seq, "size": size,
                "layer": meta.get("layer"),
            })
        if self.on_loss is not None:
            self.on_loss(seq, meta, size)

    def _update_rtt(self, sample: float) -> None:
        self.rttvar = ((1 - self.RTTVAR_GAIN) * self.rttvar
                       + self.RTTVAR_GAIN * abs(self.srtt - sample))
        self.srtt = (1 - self.SRTT_GAIN) * self.srtt + self.SRTT_GAIN \
            * sample

    def receive(self, packet: Packet) -> None:
        if not packet.is_ack():
            return
        self.stats.acks_received += 1
        self._last_ack_time = self.sim.now
        seq = packet.meta["acked_seq"]
        echo = packet.meta.get("echo_ts")
        if echo is not None:
            self._update_rtt(self.sim.now - echo)

        entry = self._outstanding.pop(seq, None)
        if entry is not None:
            _, meta, size = entry
            if self.on_ack is not None:
                self.on_ack(seq, meta, size)
            # Additive increase: one packet per window per RTT.
            self.cwnd += 1.0 / self.cwnd
        self.highest_acked = max(self.highest_acked, seq)

        horizon = self.highest_acked - self.REORDER_THRESHOLD
        lost = [s for s in self._outstanding if s <= horizon]
        if lost:
            newest = max(lost)
            for s in sorted(lost):
                self._declare_lost(s)
            self._backoff(newest)
        self._fill_window()


#: The window transport reuses RAP's per-packet-ACK sink unchanged.
WindowAimdSink = RapSink
