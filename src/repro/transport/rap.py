"""RAP: the Rate Adaptation Protocol (Rejaie, Handley, Estrin '99).

RAP is a rate-based, TCP-friendly congestion controller using AIMD:

- packets are emitted every IPG (inter-packet gap) seconds, so the send
  rate is ``packet_size / ipg``;
- once per smoothed RTT the rate is *additively* increased by one packet
  per RTT (``rate += packet_size / srtt``);
- losses are detected from ACK sequence holes (three-later-packets rule,
  analogous to TCP's three dup-ACKs) or a conservative timeout, and cause a
  *multiplicative* halving of the rate;
- all losses belonging to one congestion event trigger a single backoff
  (losses of packets sent before the last backoff are ignored).

This is the variant **without** fine-grain (inter-RTT) adaptation, which is
the one the paper's quality adaptation analysis assumes, because its
sawtooth is the clean ``R -> R/2 -> linear climb`` shape the buffer
formulas integrate over.

The application hooks are what quality adaptation plugs into:

- ``payload_picker(seq)``: called at every transmission opportunity;
  returns the ``meta`` dict for the outgoing packet (e.g. which video layer
  it carries). ``None`` means plain bulk data.
- ``on_ack(seq, meta, size)``: a data packet was acknowledged.
- ``on_loss(seq, meta, size)``: a data packet was declared lost.
- ``on_backoff(new_rate)``: the AIMD halving just happened.

RAP does not retransmit: reliability is the application's business (stored
video prefers fresh data over old).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.packet import Packet, PacketType
from repro.transport.base import TransportAgent, next_flow_id

ACK_SIZE = 40

PayloadPicker = Callable[[int], Optional[dict]]
AckHandler = Callable[[int, dict, int], None]
LossHandler = Callable[[int, dict, int], None]
BackoffHandler = Callable[[float], None]
#: ``(time, kind, fields)`` decision-record sink (same shape as the
#: adapter's hook); ``None`` when nobody is recording (RL007).
EventHook = Callable[[float, str, dict[str, object]], None]


class RapSource(TransportAgent):
    """The sending half of a RAP flow."""

    #: Loss is declared when a packet this many seqs newer is ACKed.
    REORDER_THRESHOLD = 3
    #: EWMA gains for SRTT/RTTVAR, RFC 6298 style.
    SRTT_GAIN = 0.125
    RTTVAR_GAIN = 0.25

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        peer_name: str,
        flow_id: Optional[int] = None,
        packet_size: int = 1000,
        initial_rate: Optional[float] = None,
        min_rate: Optional[float] = None,
        srtt_init: float = 0.2,
        start: float = 0.0,
        stop: Optional[float] = None,
        payload_picker: Optional[PayloadPicker] = None,
        on_ack: Optional[AckHandler] = None,
        on_loss: Optional[LossHandler] = None,
        on_backoff: Optional[BackoffHandler] = None,
        on_event: Optional[EventHook] = None,
    ) -> None:
        super().__init__(sim, host, peer_name,
                         flow_id if flow_id is not None else next_flow_id())
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        self.packet_size = packet_size
        self.srtt = srtt_init
        self.rttvar = srtt_init / 2
        self.min_rate = (min_rate if min_rate is not None
                         else packet_size / 2.0)  # one packet per 2 s
        self._rate = (initial_rate if initial_rate is not None
                      else packet_size / srtt_init)
        self._rate = max(self._rate, self.min_rate)
        self.payload_picker = payload_picker
        self.on_ack = on_ack
        self.on_loss = on_loss
        self.on_backoff = on_backoff
        self.on_event = on_event

        self.next_seq = 0
        self.recovery_seq = 0  # seqs below this don't trigger another backoff
        self.highest_acked = -1
        self._outstanding: dict[int, tuple[float, dict, int]] = {}
        self._last_ack_time = start
        self._stopped = False
        self.stop_time = stop

        sim.schedule(max(0.0, start - sim.now), self._start, priority=0)

    # ------------------------------------------------------------------ API

    @property
    def rate(self) -> float:
        """Current transmission rate in bytes/s."""
        return self._rate

    @property
    def ipg(self) -> float:
        """Current inter-packet gap in seconds."""
        return self.packet_size / self._rate

    @property
    def slope(self) -> float:
        """Estimated rate of linear increase S in bytes/s per second.

        RAP adds one packet per SRTT every SRTT, so S = P / srtt**2. This
        is exactly the ``S`` the paper's buffer formulas need.
        """
        return self.packet_size / (self.srtt * self.srtt)

    @property
    def rto(self) -> float:
        """Retransmission-style timeout used as the loss backstop."""
        return min(5.0, max(0.2, self.srtt + 4 * self.rttvar))

    def stop(self) -> None:
        """Silence the source permanently."""
        self._stopped = True

    # ------------------------------------------------------------ internals

    def _start(self) -> None:
        if self._stopped:
            return
        self._send_tick()
        self._step_tick()
        self._timeout_tick()

    def _active(self) -> bool:
        if self._stopped:
            return False
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return False
        return True

    def _send_tick(self) -> None:
        if not self._active():
            return
        self._send_one()
        self.sim.schedule(self.ipg, self._send_tick, priority=0)

    def _send_one(self) -> None:
        meta: Optional[dict] = {}
        if self.payload_picker is not None:
            meta = self.payload_picker(self.next_seq)
            if meta is None:
                return  # application has nothing to send this slot
        packet = self._make_packet(self.next_seq, self.packet_size, **meta)
        self._outstanding[self.next_seq] = (self.sim.now, packet.meta,
                                            self.packet_size)
        self.next_seq += 1
        self._transmit(packet)

    def _step_tick(self) -> None:
        """Once per SRTT: additive increase (the AI of AIMD)."""
        if not self._active():
            return
        self._rate += self.packet_size / self.srtt
        self.sim.schedule(self.srtt, self._step_tick, priority=0)

    def _timeout_tick(self) -> None:
        if not self._active():
            return
        idle = self.sim.now - self._last_ack_time
        if self._outstanding and idle > self.rto:
            self.stats.timeouts += 1
            if self.on_event is not None:
                self.on_event(self.sim.now, "transport_timeout", {
                    "outstanding": len(self._outstanding),
                    "idle": idle, "rto": self.rto,
                })
            for seq in sorted(self._outstanding):
                self._declare_lost(seq)
            self._backoff(self.next_seq)
            self._last_ack_time = self.sim.now
        self.sim.schedule(self.rto / 2, self._timeout_tick, priority=0)

    def _backoff(self, triggering_seq: int) -> None:
        """Multiplicative decrease, once per congestion event."""
        if triggering_seq < self.recovery_seq:
            return  # this loss belongs to an already-handled event
        self._rate = max(self.min_rate, self._rate / 2)
        self.recovery_seq = self.next_seq
        self.stats.backoffs += 1
        if self.on_event is not None:
            self.on_event(self.sim.now, "transport_backoff", {
                "rate": self._rate, "srtt": self.srtt,
                "trigger_seq": triggering_seq,
            })
        if self.on_backoff is not None:
            self.on_backoff(self._rate)

    def _declare_lost(self, seq: int) -> None:
        sent_at, meta, size = self._outstanding.pop(seq)
        self.stats.packets_lost += 1
        if self.on_event is not None:
            self.on_event(self.sim.now, "transport_loss", {
                "seq": seq, "size": size,
                "layer": meta.get("layer"),
            })
        if self.on_loss is not None:
            self.on_loss(seq, meta, size)

    def _update_rtt(self, sample: float) -> None:
        self.rttvar = ((1 - self.RTTVAR_GAIN) * self.rttvar
                       + self.RTTVAR_GAIN * abs(self.srtt - sample))
        self.srtt = (1 - self.SRTT_GAIN) * self.srtt + self.SRTT_GAIN * sample

    def receive(self, packet: Packet) -> None:
        """Handle an incoming ACK."""
        if not packet.is_ack():
            return
        self.stats.acks_received += 1
        self._last_ack_time = self.sim.now
        seq = packet.meta["acked_seq"]
        echo = packet.meta.get("echo_ts")
        if echo is not None:
            self._update_rtt(self.sim.now - echo)

        entry = self._outstanding.pop(seq, None)
        if entry is not None and self.on_ack is not None:
            _, meta, size = entry
            self.on_ack(seq, meta, size)
        self.highest_acked = max(self.highest_acked, seq)

        # Hole-based loss detection: anything REORDER_THRESHOLD older than
        # the newest ACK is gone.
        horizon = self.highest_acked - self.REORDER_THRESHOLD
        lost = [s for s in self._outstanding if s <= horizon]
        if lost:
            newest_lost = max(lost)
            for s in sorted(lost):
                self._declare_lost(s)
            self._backoff(newest_lost)


class RapSink(TransportAgent):
    """The receiving half: ACKs every data packet, echoing its metadata."""

    def __init__(self, sim: Simulator, host: Host, peer_name: str,
                 flow_id: int,
                 on_data: Optional[Callable[[Packet], None]] = None) -> None:
        super().__init__(sim, host, peer_name, flow_id)
        self.on_data = on_data

    def receive(self, packet: Packet) -> None:
        if not packet.is_data():
            return
        self.stats.packets_received += 1
        self.stats.bytes_received += packet.size
        if self.on_data is not None:
            self.on_data(packet)
        ack = self._make_packet(
            packet.seq,
            ACK_SIZE,
            ptype=PacketType.ACK,
            acked_seq=packet.seq,
            echo_ts=packet.created_at,
            data_size=packet.size,
            **({"layer": packet.layer} if packet.layer is not None else {}),
        )
        self.host.send(ack)
