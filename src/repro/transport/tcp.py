"""A Sack-era TCP source for background traffic.

The paper's T1/T2 tests run the quality-adaptive RAP flow against ten
Sack-TCP flows; their only role here is to congest the bottleneck the way
TCP does (slow start, congestion avoidance, fast retransmit/recovery,
retransmission timeouts with exponential backoff). This implementation is a
compact Reno/Sack hybrid: cumulative ACKs plus a three-dup-ACK fast
retransmit with window deflation on recovery, which reproduces TCP's
characteristic sawtooth and burstiness at packet level.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.packet import Packet, PacketType
from repro.transport.base import TransportAgent, next_flow_id

ACK_SIZE = 40


class TcpSource(TransportAgent):
    """Bulk-transfer TCP sender (always has data)."""

    DUPACK_THRESHOLD = 3
    INITIAL_CWND = 2.0
    SRTT_GAIN = 0.125
    RTTVAR_GAIN = 0.25

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        peer_name: str,
        flow_id: Optional[int] = None,
        packet_size: int = 1000,
        start: float = 0.0,
        stop: Optional[float] = None,
        max_cwnd: float = 1000.0,
    ) -> None:
        super().__init__(sim, host, peer_name,
                         flow_id if flow_id is not None else next_flow_id())
        self.packet_size = packet_size
        self.cwnd = self.INITIAL_CWND
        self.ssthresh = 64.0
        self.max_cwnd = max_cwnd
        self.snd_una = 0  # oldest unacknowledged seq
        self.snd_nxt = 0  # next seq to send
        self.dupacks = 0
        self.in_recovery = False
        self.recovery_point = 0
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._rto_event = None
        self._rto_backoff = 1.0
        self._stopped = False
        self.stop_time = stop
        sim.schedule(max(0.0, start - sim.now), self._start, priority=0)

    # ------------------------------------------------------------------ API

    @property
    def rto(self) -> float:
        if self.srtt is None:
            return 1.0 * self._rto_backoff
        return self._rto_backoff * min(
            60.0, max(0.2, self.srtt + 4 * self.rttvar))

    @property
    def rate_estimate(self) -> float:
        """cwnd/srtt in bytes/s (rough, for traces)."""
        rtt = self.srtt if self.srtt else 0.2
        return self.cwnd * self.packet_size / rtt

    def stop(self) -> None:
        self._stopped = True
        self._cancel_rto()

    # ------------------------------------------------------------ internals

    def _active(self) -> bool:
        if self._stopped:
            return False
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return False
        return True

    def _start(self) -> None:
        if not self._active():
            return
        self._try_send()

    def _window(self) -> float:
        return min(self.cwnd, self.max_cwnd)

    def _try_send(self) -> None:
        """Send as much as the window allows."""
        if not self._active():
            return
        while self.snd_nxt < self.snd_una + int(self._window()):
            self._send_seq(self.snd_nxt)
            self.snd_nxt += 1
        self._arm_rto()

    def _send_seq(self, seq: int, retransmit: bool = False) -> None:
        packet = self._make_packet(seq, self.packet_size)
        if retransmit:
            self.stats.retransmissions += 1
            self._retransmitted.add(seq)
        self._send_times[seq] = self.sim.now
        self._transmit(packet)

    # RTO management -----------------------------------------------------

    def _arm_rto(self) -> None:
        if self.snd_una >= self.snd_nxt:
            self._cancel_rto()
            return
        if self._rto_event is None or self._rto_event.cancelled:
            self._rto_event = self.sim.schedule(
                self.rto, self._on_rto, priority=0
            )

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _restart_rto(self) -> None:
        self._cancel_rto()
        self._arm_rto()

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._active() or self.snd_una >= self.snd_nxt:
            return
        self.stats.timeouts += 1
        self.ssthresh = max(2.0, self._window() / 2)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self._rto_backoff = min(64.0, self._rto_backoff * 2)
        self.snd_nxt = self.snd_una  # go-back-N from the hole
        self._send_seq(self.snd_nxt, retransmit=True)
        self.snd_nxt += 1
        self._arm_rto()

    # ACK processing ------------------------------------------------------

    def _update_rtt(self, seq: int) -> None:
        if seq in self._retransmitted:  # Karn's algorithm
            return
        sent = self._send_times.get(seq)
        if sent is None:
            return
        sample = self.sim.now - sent
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = ((1 - self.RTTVAR_GAIN) * self.rttvar
                           + self.RTTVAR_GAIN * abs(self.srtt - sample))
            self.srtt = ((1 - self.SRTT_GAIN) * self.srtt
                         + self.SRTT_GAIN * sample)
        self._rto_backoff = 1.0

    def receive(self, packet: Packet) -> None:
        if not packet.is_ack() or not self._active():
            return
        self.stats.acks_received += 1
        cum = packet.meta["acked_seq"]  # highest contiguously received seq

        if cum + 1 > self.snd_una:
            self._on_new_ack(cum)
        else:
            self._on_dup_ack()
        self._try_send()

    def _on_new_ack(self, cum: int) -> None:
        newly = cum + 1 - self.snd_una
        self._update_rtt(cum)
        for seq in range(self.snd_una, cum + 1):
            self._send_times.pop(seq, None)
            self._retransmitted.discard(seq)
        self.snd_una = cum + 1
        self.dupacks = 0
        self._restart_rto()

        if self.in_recovery:
            if self.snd_una > self.recovery_point:
                self.in_recovery = False
                self.cwnd = self.ssthresh  # full window deflation
            else:
                # Partial ACK: retransmit the next hole immediately (NewReno).
                self._send_seq(self.snd_una, retransmit=True)
            return

        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.max_cwnd, self.cwnd + newly)  # slow start
        else:
            self.cwnd = min(self.max_cwnd,
                            self.cwnd + newly / self.cwnd)  # cong. avoidance

    def _on_dup_ack(self) -> None:
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += 1  # window inflation per extra dup ACK
            return
        if self.dupacks == self.DUPACK_THRESHOLD:
            self.stats.backoffs += 1
            self.ssthresh = max(2.0, self._window() / 2)
            self.cwnd = self.ssthresh + self.DUPACK_THRESHOLD
            self.in_recovery = True
            self.recovery_point = self.snd_nxt - 1
            self._send_seq(self.snd_una, retransmit=True)
            self._restart_rto()


class TcpSink(TransportAgent):
    """Receiver generating cumulative ACKs (one per data packet)."""

    def __init__(self, sim: Simulator, host: Host, peer_name: str,
                 flow_id: int) -> None:
        super().__init__(sim, host, peer_name, flow_id)
        self._received: set[int] = set()
        self._cumulative = -1  # highest contiguously received seq

    def receive(self, packet: Packet) -> None:
        if not packet.is_data():
            return
        self.stats.packets_received += 1
        self.stats.bytes_received += packet.size
        self._received.add(packet.seq)
        while self._cumulative + 1 in self._received:
            self._received.discard(self._cumulative + 1)
            self._cumulative += 1
        ack = self._make_packet(
            packet.seq, ACK_SIZE, ptype=PacketType.ACK,
            acked_seq=self._cumulative,
        )
        self.host.send(ack)
