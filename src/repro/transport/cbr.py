"""Constant-bit-rate on/off source.

The paper's responsiveness test (Figure 13) switches on a CBR source at
half the bottleneck bandwidth at t=30 s and off at t=60 s. CBR does not
react to congestion — that is the point: it forces a large step change in
the bandwidth available to everybody else.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.packet import Packet
from repro.transport.base import TransportAgent, next_flow_id


class CbrSource(TransportAgent):
    """Sends fixed-size packets at a fixed rate between start and stop."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        peer_name: str,
        rate: float,
        flow_id: Optional[int] = None,
        packet_size: int = 1000,
        start: float = 0.0,
        stop: Optional[float] = None,
    ) -> None:
        super().__init__(sim, host, peer_name,
                         flow_id if flow_id is not None else next_flow_id())
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.packet_size = packet_size
        self.interval = packet_size / rate
        self.stop_time = stop
        self._stopped = False
        self._seq = 0
        sim.schedule(max(0.0, start - sim.now), self._tick, priority=0)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return
        packet = self._make_packet(self._seq, self.packet_size)
        self._seq += 1
        self._transmit(packet)
        self.sim.schedule(self.interval, self._tick, priority=0)

    def receive(self, packet: Packet) -> None:
        """CBR ignores anything sent back to it."""


class CbrSink(TransportAgent):
    """Counts arriving CBR bytes; sends nothing back."""

    def receive(self, packet: Packet) -> None:
        if packet.is_data():
            self.stats.packets_received += 1
            self.stats.bytes_received += packet.size
