"""Transport agents: RAP, TCP (Sack-style) and CBR.

The paper's quality adaptation rides on RAP, a rate-based TCP-friendly AIMD
congestion controller, and is evaluated against background traffic made of
Sack-TCP flows, other RAP flows and an on/off CBR source. All three are
implemented here on top of :mod:`repro.sim`.
"""

from repro.transport.base import FlowStats, TransportAgent
from repro.transport.rap import RapSource, RapSink
from repro.transport.aimd import WindowAimdSource, WindowAimdSink
from repro.transport.tcp import TcpSource, TcpSink
from repro.transport.cbr import CbrSource, CbrSink

__all__ = [
    "FlowStats",
    "TransportAgent",
    "RapSource",
    "RapSink",
    "WindowAimdSource",
    "WindowAimdSink",
    "TcpSource",
    "TcpSink",
    "CbrSource",
    "CbrSink",
]
