"""Common transport-agent plumbing.

A transport agent lives on a :class:`~repro.sim.node.Host` and exchanges
packets with a peer agent on another host. Sources own a ``flow_id``;
sinks attach under the same id on the destination host so the dumbbell's
demultiplexing delivers both directions correctly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.packet import Packet, PacketType

_flow_ids = itertools.count(1)


def next_flow_id() -> int:
    """Allocate a globally unique flow id."""
    return next(_flow_ids)


@dataclass
class FlowStats:
    """Counters every agent keeps; traces and tests read these."""

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_received: int = 0
    bytes_received: int = 0
    packets_lost: int = 0
    acks_received: int = 0
    retransmissions: int = 0
    backoffs: int = 0
    timeouts: int = 0

    def goodput(self, duration: float) -> float:
        """Received bytes per second over ``duration``."""
        return self.bytes_received / duration if duration > 0 else 0.0


class TransportAgent:
    """Base class wiring an agent to a host and keeping stats."""

    def __init__(self, sim: Simulator, host: Host, peer_name: str,
                 flow_id: int) -> None:
        self.sim = sim
        self.host = host
        self.peer_name = peer_name
        self.flow_id = flow_id
        self.stats = FlowStats()
        host.attach(flow_id, self)

    def _make_packet(self, seq: int, size: int,
                     ptype: PacketType = PacketType.DATA,
                     **meta) -> Packet:
        return Packet(
            flow_id=self.flow_id,
            seq=seq,
            size=size,
            ptype=ptype,
            src=self.host.name,
            dst=self.peer_name,
            created_at=self.sim.now,
            meta=dict(meta),
        )

    def _transmit(self, packet: Packet) -> bool:
        ok = self.host.send(packet)
        if ok and packet.is_data():
            self.stats.packets_sent += 1
            self.stats.bytes_sent += packet.size
        return ok

    def receive(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
