"""Unit helpers.

Internally everything is **bytes** and **bytes per second** (the paper's
plots use KB/s). These helpers exist so experiment configs can be written
in the paper's units without sprinkling magic constants.
"""

from __future__ import annotations

KILOBYTE = 1000  # the paper uses decimal KB/s axes


def kbps_to_bytes(kilobits_per_second: float) -> float:
    """Kilobits/s (link speeds, e.g. '800 Kb/s bottleneck') to bytes/s."""
    return kilobits_per_second * 1000.0 / 8.0


def kBps_to_bytes(kilobytes_per_second: float) -> float:
    """Kilobytes/s (the paper's rate axes) to bytes/s."""
    return kilobytes_per_second * KILOBYTE


def bytes_to_kBps(bytes_per_second: float) -> float:
    """Bytes/s to the paper's KB/s axis units."""
    return bytes_per_second / KILOBYTE


def ms(milliseconds: float) -> float:
    """Milliseconds to seconds."""
    return milliseconds / 1000.0
