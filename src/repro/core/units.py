"""Unit helpers and unit-bearing type aliases.

Internally everything is **bytes** and **bytes per second** (the paper's
plots use KB/s). The conversion helpers exist so experiment configs can be
written in the paper's units without sprinkling magic constants.

The ``Annotated`` aliases below give the core QA math machine-checkable
dimensions. They are erased at runtime (``Bytes`` *is* ``float`` as far as
the interpreter and mypy are concerned), but ``repro-lint``'s RL006
dimensional analysis reads the :class:`Unit` markers straight from this
module's AST and propagates them through the arithmetic of
:mod:`repro.core.formulas` and its callers — so swapping a slope for a
rate fails the build instead of silently corrupting a buffer target.

Mapping to the paper's symbols (see docs/MECHANISM.md):

=================  =====================  ==========================
alias              dimension              paper symbol / use
=================  =====================  ==========================
``Bytes``          B                      buffer levels, shares, areas
``ByteCount``      B (integral)           packet sizes
``Seconds``        s                      periods, horizons, ``T_i``
``BytesPerSec``    B/s                    ``C``, ``R``, ``na*C``
``BytesPerSec2``   B/s^2                  the AIMD slope ``S``
``Scalar``         1                      ratios, gains, counts
=================  =====================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated

KILOBYTE = 1000  # the paper uses decimal KB/s axes


@dataclass(frozen=True)
class Unit:
    """Dimension marker carried by the ``Annotated`` aliases below.

    ``data`` and ``time`` are the exponents of the two base dimensions
    (bytes and seconds): ``Unit(data=1, time=-2)`` reads "bytes per
    second squared". Markers never exist at runtime in checked code —
    they are metadata for ``repro-lint``'s RL006 rule, which parses this
    module rather than importing it, so the table here is the single
    source of truth.
    """

    data: int = 0
    time: int = 0


#: Buffered data, per-layer shares, triangle areas (B).
Bytes = Annotated[float, Unit(data=1)]
#: Byte quantities that are inherently integral (packet sizes).
ByteCount = Annotated[int, Unit(data=1)]
#: Durations, periods, backoff horizons (s).
Seconds = Annotated[float, Unit(time=1)]
#: Rates: per-layer consumption ``C``, transmission ``R`` (B/s).
BytesPerSec = Annotated[float, Unit(data=1, time=-1)]
#: The AIMD linear-increase slope ``S`` (B/s^2).
BytesPerSec2 = Annotated[float, Unit(data=1, time=-2)]
#: Explicitly dimensionless quantities (ratios, gains, EWMA weights).
Scalar = Annotated[float, Unit()]


def kbps_to_bytes(kilobits_per_second: float) -> BytesPerSec:
    """Kilobits/s (link speeds, e.g. '800 Kb/s bottleneck') to bytes/s."""
    return kilobits_per_second * 1000.0 / 8.0


def kBps_to_bytes(kilobytes_per_second: float) -> BytesPerSec:
    """Kilobytes/s (the paper's rate axes) to bytes/s."""
    return kilobytes_per_second * KILOBYTE


def bytes_to_kBps(bytes_per_second: BytesPerSec) -> float:
    """Bytes/s to the paper's KB/s axis units."""
    return bytes_per_second / KILOBYTE


def ms(milliseconds: float) -> Seconds:
    """Milliseconds to seconds."""
    return milliseconds / 1000.0
