"""Coarse-grain layer add/drop rules (sections 2.1, 2.2, 3.1).

Adding is the smoothing knob. The paper examines three rules and settles
on the third:

1. ``buffer_and_rate`` -- section 2.1's minimal criteria: the
   instantaneous rate exceeds the consumption rate of existing plus new
   layers (C1) *and* there is enough buffering to survive one immediate
   backoff with the new layer (C2).
2. ``average_bandwidth`` -- section 3.1's first alternative: add when the
   *average* rate exceeds the consumption of existing plus new layers
   (kept here as a baseline; the paper rejects it because a link fitting
   2.9 layers would then never see the third layer).
3. ``buffer_only`` -- the paper's final rule ("the only condition for
   adding a new layer is availability of optimal buffer allocation for
   recovery from K_max backoffs"): every active layer holds at least its
   target share for the last state of the K_max sequence, in both
   scenarios.

Dropping (section 2.2) is mechanical: after a backoff (and on every
draining-planner tick, which covers further backoffs and slope
mis-estimates -- the paper's "critical situations"), drop top layers while
the deficit triangle exceeds what total buffering can cover.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import formulas
from repro.core.config import QAConfig
from repro.core.states import StateSequence
from repro.core.units import Bytes, BytesPerSec, BytesPerSec2


class AddDropPolicy:
    """Implements the configured add rule plus the universal drop rule."""

    def __init__(self, config: QAConfig) -> None:
        self.config = config

    # ------------------------------------------------------------- adding

    def can_add(
        self,
        rate: BytesPerSec,
        average_rate: BytesPerSec,
        active_layers: int,
        buffers: Sequence[Bytes],
        slope: BytesPerSec2,
        base_reserve: Bytes = 0.0,
    ) -> bool:
        """Should a new layer be added right now?

        Args:
            rate: instantaneous transmission rate (bytes/s).
            average_rate: smoothed rate for the ``average_bandwidth`` rule.
            active_layers: current ``na``.
            buffers: per-layer buffered bytes, base first, length ``na``.
            slope: AIMD slope S.
            base_reserve: bytes of the base buffer that do not count as
                recovery buffering (the stall-protection margin); the base
                must hold its target share on top of this.
        """
        cfg = self.config
        if active_layers >= cfg.max_layers:
            return False
        rule = cfg.add_rule
        if rule == "average_bandwidth":
            new_consumption = cfg.consumption(active_layers + 1)
            if average_rate < new_consumption:
                return False
            # Keep section 2.1's C2 so the baseline is not suicidal: enough
            # buffering to survive one immediate backoff with the new layer.
            required = formulas.one_backoff_requirement(
                rate, new_consumption, slope)
            return sum(buffers) + formulas.EPSILON >= required

        if rule == "buffer_and_rate":
            if rate < cfg.consumption(active_layers + 1):
                return False
        # Section 2.1's minimal criterion (condition 2) always applies:
        # enough usable buffering to survive one immediate backoff while
        # playing the existing layers *plus the new one*. Without it, an
        # add at a marginal rate is followed by an immediate rule drop.
        usable = max(0.0, sum(buffers) - base_reserve)
        condition2 = formulas.one_backoff_requirement(
            rate, cfg.consumption(active_layers + 1), slope)
        if usable + formulas.EPSILON < condition2:
            return False
        # Both buffer_only and buffer_and_rate additionally need the
        # K_max smoothing targets met, computed with the existing layers
        # (section 3.1: "sufficient amount of buffered data to survive
        # K_max backoffs with existing layers"). When the rate hovers
        # just above the new consumption level this deliberately produces
        # add / ride-the-buffers / drop cycles -- the paper's modem
        # example expects the extra layer to be delivered "90% of the
        # time" rather than never.
        targets = list(StateSequence(
            rate, cfg.layer_rate, active_layers, slope, cfg.k_max
        ).final_targets)
        targets[0] += base_reserve
        return all(
            buffers[i] + formulas.EPSILON >= targets[i]
            for i in range(active_layers)
        )

    def kmax_margin(
        self,
        rate: BytesPerSec,
        active_layers: int,
        buffers: Sequence[Bytes],
        slope: BytesPerSec2,
        base_reserve: Bytes = 0.0,
    ) -> Optional[Bytes]:
        """Worst-layer headroom over the ``K_max`` smoothing targets.

        ``min_i(buffers[i] - targets[i])`` against the final state of the
        ``K_max`` sequence (the ``buffer_only`` add condition): positive
        means every layer holds its recovery share and an add is
        buffer-feasible, negative says how many bytes the worst layer is
        short. ``None`` at the codec's layer ceiling, where no add can
        ever happen. This is diagnostic-only (decision records): the add
        path keeps its own exact rule in :meth:`can_add`.
        """
        cfg = self.config
        if active_layers >= cfg.max_layers:
            return None
        targets = list(StateSequence(
            rate, cfg.layer_rate, active_layers, slope, cfg.k_max
        ).final_targets)
        targets[0] += base_reserve
        return min(
            buffers[i] - targets[i] for i in range(active_layers)
        )

    # ----------------------------------------------------------- dropping

    def layers_after_drop_rule(
        self,
        rate: BytesPerSec,
        total_buffer: Bytes,
        active_layers: int,
        slope: BytesPerSec2,
    ) -> int:
        """Apply the section 2.2 rule; returns the surviving layer count."""
        return formulas.layers_to_keep(
            rate, total_buffer, self.config.layer_rate, slope, active_layers)
