"""Non-linear layer spacing (the paper's section 7 future work).

The paper's analysis assumes linearly spaced layers: every layer consumes
the same C. Real hierarchical codecs often use geometric spacing (each
enhancement roughly doubles fidelity for less rate, or the base is fat
and enhancements thin). This module generalizes the Appendix-A geometry
to an arbitrary per-layer rate vector:

- the deficit triangle is sliced into horizontal bands whose heights are
  the layer rates **in layer order from the bottom** (the base layer's
  band sits at the bottom of the deficit because a layer can supply at
  most its own consumption rate from its buffer, and the base must be
  the last one still draining);
- the minimum number of buffering layers is the shortest prefix of
  layers whose cumulative rate covers the peak deficit;
- scenario-1/2 totals are rate-vector independent (they only involve the
  total consumption), so only the share slicing changes.

The same machinery reproduces the linear formulas exactly when all rates
are equal (tested), and powers the ``ablation-nonlinear`` experiment.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core import formulas
from repro.core.formulas import EPSILON, SCENARIO_ONE, SCENARIO_TWO


def validate_rates(layer_rates: Sequence[float]) -> tuple[float, ...]:
    """Check and normalize a per-layer rate vector."""
    rates = tuple(float(r) for r in layer_rates)
    if not rates:
        raise ValueError("need at least one layer rate")
    if any(r <= 0 for r in rates):
        raise ValueError("layer rates must be positive")
    return rates


def total_rate(layer_rates: Sequence[float]) -> float:
    """Total consumption rate of the layer set."""
    return math.fsum(validate_rates(layer_rates))


def min_buffering_layers(deficit: float,
                         layer_rates: Sequence[float]) -> int:
    """Shortest prefix of layers whose rates cover ``deficit``.

    Raises if even all layers together cannot cover it (the deficit can
    never exceed the total consumption rate in a valid scenario).
    """
    rates = validate_rates(layer_rates)
    if deficit <= EPSILON:
        return 0
    cumulative = 0.0
    for i, rate in enumerate(rates):
        cumulative += rate
        if cumulative >= deficit - EPSILON:
            return i + 1
    raise ValueError(
        f"deficit {deficit} exceeds total consumption {cumulative}")


def band_shares(deficit: float, layer_rates: Sequence[float],
                slope: float) -> tuple[float, ...]:
    """Optimal per-layer shares for one deficit triangle, non-linear.

    Layer i's band spans deficit levels
    ``[sum(rates[:i]), sum(rates[:i]) + rates[i])`` -- the base at the
    bottom (longest-lived). Returns a vector as long as ``layer_rates``
    (zero beyond the buffering layers); sums to the triangle area.
    """
    rates = validate_rates(layer_rates)
    if slope <= 0:
        raise ValueError("slope must be positive")
    shares: list[float] = []
    level = 0.0
    for rate in rates:
        if level >= deficit - EPSILON:
            shares.append(0.0)
            continue
        top = min(level + rate, deficit)
        area = (
            (deficit - level) ** 2 - (deficit - top) ** 2
        ) / (2.0 * slope)
        shares.append(area)
        level = top
    return tuple(shares)


def scenario_shares(rate: float, layer_rates: Sequence[float],
                    slope: float, k: int,
                    scenario: int) -> tuple[float, ...]:
    """Per-layer optimal shares for k backoffs, non-linear spacing.

    The scenario *totals* match :func:`repro.core.formulas.
    scenario_total` with ``consumption = sum(layer_rates)``; only the
    distribution over layers differs.
    """
    rates = validate_rates(layer_rates)
    consumption = math.fsum(rates)
    if scenario == SCENARIO_ONE:
        return band_shares(
            formulas.deficit_after_backoffs(rate, consumption, k),
            rates, slope)
    if scenario == SCENARIO_TWO:
        k1 = formulas.k1_backoffs(rate, consumption)
        if k <= k1:
            return band_shares(
                formulas.deficit_after_backoffs(rate, consumption, k),
                rates, slope)
        first = band_shares(
            formulas.deficit_after_backoffs(rate, consumption, k1),
            rates, slope)
        seq = band_shares(consumption / 2.0, rates, slope)
        return tuple(f + (k - k1) * s for f, s in zip(first, seq))
    raise ValueError(f"scenario must be 1 or 2, got {scenario}")


def layers_to_keep(rate: float, total_buffer: float,
                   layer_rates: Sequence[float], slope: float) -> int:
    """The section 2.2 drop rule for a non-linear layer set.

    Iteratively drop the top layer while the remaining deficit triangle
    exceeds the buffering. The base layer always survives.
    """
    rates = list(validate_rates(layer_rates))
    threshold = math.sqrt(max(0.0, 2.0 * slope * total_buffer))
    while len(rates) > 1 and math.fsum(rates) - rate >= threshold - EPSILON:
        rates.pop()
    return len(rates)


def equivalent_linear_rate(layer_rates: Sequence[float]) -> float:
    """Mean per-layer rate: the linear approximation the paper uses."""
    rates = validate_rates(layer_rates)
    return math.fsum(rates) / len(rates)


def geometric_rates(base_rate: float, n_layers: int,
                    ratio: float = 0.5) -> tuple[float, ...]:
    """A geometric layer-rate ladder (fat base, thinner enhancements).

    ``ratio < 1`` makes each enhancement cheaper than the layer below --
    typical of real scalable codecs where most bits live in the base.
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if n_layers < 1:
        raise ValueError("need at least one layer")
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    return tuple(base_rate * ratio ** i for i in range(n_layers))
