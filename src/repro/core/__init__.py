"""The paper's primary contribution: layered quality adaptation.

Module map (paper section in parentheses):

- :mod:`repro.core.units` -- unit helpers (KB/s, Kb/s ...).
- :mod:`repro.core.config` -- :class:`QAConfig`, all tunables in one place.
- :mod:`repro.core.formulas` -- Appendix A: deficit triangles, optimal
  per-layer shares, scenario-1/2 totals and shares (A.1-A.5).
- :mod:`repro.core.states` -- optimal buffer states and the maximally
  efficient monotone filling path (Figures 8-10).
- :mod:`repro.core.buffers` -- receiver-buffer bookkeeping shared by the
  server-side estimator and the actual receiver.
- :mod:`repro.core.add_drop` -- coarse-grain layer add/drop rules
  (sections 2.1, 2.2, 3.1).
- :mod:`repro.core.filling` -- the per-packet fine-grain allocation of
  section 4.1 (the SendPacket pseudocode).
- :mod:`repro.core.draining` -- the reverse traversal of section 4.2.
- :mod:`repro.core.adapter` -- :class:`QualityAdapter`, gluing the above
  into the server-side mechanism driven by a congestion controller.
- :mod:`repro.core.metrics` -- buffering-efficiency and drop-cause metrics
  used by Tables 1 and 2.
- :mod:`repro.core.fluid` -- a fluid (non-packet) model of the mechanism
  used for the paper's illustrative figures (2, 5, 6).
"""

from repro.core.config import QAConfig
from repro.core.adapter import QualityAdapter
from repro.core.metrics import QualityMetrics, DropCause
from repro.core.states import BufferState, StateSequence

__all__ = [
    "QAConfig",
    "QualityAdapter",
    "QualityMetrics",
    "DropCause",
    "BufferState",
    "StateSequence",
]
