"""Fine-grain bandwidth allocation during the draining phase (section 4.2).

While the transmission rate is below the total consumption rate, the
difference must come out of receiver buffers. The paper drains along the
*same* maximally efficient path the filling phase climbed, in reverse:

- periodically (every ``drain_period``) compute how many bytes must come
  from buffers in the next period;
- find the last optimal state on the path that current buffering can
  still satisfy, and regress towards the *previous* state: drain from the
  **highest** layer downward, never taking a layer below its share at the
  state being regressed to, and never faster than the consumption rate C
  (a layer cannot be played faster than it is consumed);
- if the regression target is reached with bytes still to drain, move one
  more state back and repeat.

The plan for a period is expressed as per-layer *send quotas*: layer i
receives ``C * period - drain_i`` bytes from the network, so quotas sum
exactly to ``rate * period``. The adapter spends the quotas packet by
packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core import formulas
from repro.core.config import QAConfig
from repro.core.states import StateSequence
from repro.core.units import Bytes, BytesPerSec, Seconds


@dataclass
class DrainPlan:
    """One period's draining decision.

    Attributes:
        drain: bytes to take from each layer's buffer this period.
        quotas: bytes to send to each layer from the network this period.
        shortfall: bytes of deficit that no buffer could cover (nonzero
            means underflow is imminent -- a critical situation the
            adapter must resolve by dropping layers).
        state_index: index of the path state regressed to (-1 = below the
            whole path).
    """

    drain: list[Bytes]
    quotas: list[Bytes]
    shortfall: Bytes
    state_index: int

    @property
    def total_drain(self) -> Bytes:
        return sum(self.drain)


class DrainingPlanner:
    """Computes per-period drain patterns along a frozen state path."""

    def __init__(self, config: QAConfig) -> None:
        self.config = config

    def plan(
        self,
        rate: BytesPerSec,
        buffers: Sequence[Bytes],
        active_layers: int,
        period: Seconds,
        sequence: StateSequence,
        base_protection: Bytes = 0.0,
    ) -> DrainPlan:
        """Allocate the coming period's deficit across layer buffers.

        Args:
            rate: current transmission rate (bytes/s), below consumption.
            buffers: per-layer buffered bytes, base first.
            active_layers: na (must match ``sequence.active_layers``).
            period: planning horizon in seconds.
            sequence: the state path frozen at the filling->draining
                transition (built from the pre-backoff rate).
            base_protection: extra bytes of the base layer's buffer to
                leave untouched beyond the configured floor (the caller
                passes its in-flight estimate so send-time crediting
                never drains data that has not actually arrived).
        """
        cfg = self.config
        na = active_layers
        if sequence.active_layers != na:
            raise ValueError("state sequence does not match active layers")
        consumption = na * cfg.layer_rate
        need = max(0.0, (consumption - rate) * period)
        levels = [max(0.0, b) for b in buffers[:na]]
        cap = cfg.layer_rate * period  # a layer drains at most C

        drain = [0.0] * na
        # The bottom `floor` bytes of the *base* layer are off limits:
        # they cover data in flight between the server's send-time
        # estimate and the receiver, and draining into that margin is how
        # playback stalls. Enhancement layers may drain to empty -- a
        # brief quality gap at worst -- and are then dropped with (near)
        # nothing left buffered, which is what makes the paper's
        # buffering-efficiency metric approach 100%.
        floor = cfg.base_floor_bytes + max(0.0, base_protection)
        # Position on the path: last state whose total requirement current
        # buffering still covers; regress from there.
        index = sequence.survivable_position(sum(levels))
        remaining = need
        while remaining > formulas.EPSILON:
            if index >= 0:
                targets = sequence[index].effective_shares
            else:
                targets = (0.0,) * na
            for layer in range(na - 1, -1, -1):
                if remaining <= formulas.EPSILON:
                    break
                protected = max(targets[layer],
                                floor if layer == 0 else 0.0)
                allowance = min(
                    levels[layer] - drain[layer] - protected,
                    cap - drain[layer],
                    remaining,
                )
                if allowance > formulas.EPSILON:
                    drain[layer] += allowance
                    remaining -= allowance
            if index < 0:
                break  # nothing left to regress to
            index -= 1

        quotas = [max(0.0, cap - drain[i]) for i in range(na)]
        return DrainPlan(drain=drain, quotas=quotas, shortfall=remaining,
                         state_index=index)
