"""Appendix A: the analytic core of quality adaptation.

All formulas describe the AIMD sawtooth geometry of Figure 3: the
transmission rate climbs linearly at slope ``S`` (bytes/s per second),
halves at each backoff, and while it is below the total consumption rate
``na*C`` the difference must be drawn from receiver buffers. Areas under
the rate/consumption curves are bytes.

Conventions used throughout:

- ``rate``: the transmission rate **before** the (first) backoff, R.
- ``consumption``: total consumption rate ``na * C``.
- ``layer_rate``: per-layer consumption rate C.
- ``slope``: the linear-increase rate S.
- Layer 0 is the base layer; per-layer share vectors are base-first.

The key geometric facts (derived in DESIGN.md section 1):

- A draining phase starting with deficit ``D0 = consumption - R/2`` lasts
  ``D0/S`` seconds and consumes ``D0^2 / (2S)`` bytes of buffer
  (the area of triangle *cde* in Figure 3).
- Slicing that triangle into horizontal bands of height C gives the
  optimal per-layer shares (Figure 4): band i (counting from the bottom,
  assigned to layer i) has area ``(C/S) * (D0 - (i + 1/2) * C)``; the top
  band is the partial triangle ``(D0 - (nb-1)*C)^2 / (2S)``.
- Scenario 1 with k backoffs: the same triangle with ``R -> R/2^k``.
- Scenario 2 with k backoffs (Figure 14): ``k1`` immediate backoffs bring
  the rate just below consumption, then each of the remaining ``k - k1``
  backoffs happens right when the rate has climbed back to consumption,
  producing identical triangles of height ``consumption/2``.
"""

from __future__ import annotations

import math
from typing import Sequence

# Re-exported: the tolerance itself is centralized (RL009 discipline).
from repro.core.tolerances import EPSILON as EPSILON
from repro.core.units import Bytes, BytesPerSec, BytesPerSec2, Seconds

SCENARIO_ONE = 1
SCENARIO_TWO = 2


def triangle_area(deficit: BytesPerSec, slope: BytesPerSec2) -> Bytes:
    """Bytes drained while a deficit ``deficit`` closes at slope ``slope``.

    This is equation (1) of the paper: ``A = L_ce^2 / (2S)``. Non-positive
    deficits need no buffering.
    """
    if slope <= 0:
        raise ValueError("slope must be positive")
    if deficit <= 0:
        return 0.0
    return deficit * deficit / (2.0 * slope)


def deficit_after_backoffs(rate: BytesPerSec, consumption: BytesPerSec,
                           k: int) -> BytesPerSec:
    """Consumption minus the rate left after ``k`` immediate halvings."""
    if k < 0:
        raise ValueError("k cannot be negative")
    return consumption - rate / (2.0 ** k)


def min_buffering_layers(deficit: BytesPerSec,
                         layer_rate: BytesPerSec) -> int:
    """``nb``: minimum number of layers that must hold buffering.

    A single layer can supply at most C of the deficit at any instant, so
    covering a peak deficit ``D0`` needs ``ceil(D0 / C)`` buffering layers
    (section 2.4).
    """
    if layer_rate <= 0:
        raise ValueError("layer_rate must be positive")
    if deficit <= EPSILON:
        return 0
    return math.ceil(deficit / layer_rate - EPSILON)


def band_shares(deficit: BytesPerSec, layer_rate: BytesPerSec,
                slope: BytesPerSec2) -> tuple[Bytes, ...]:
    """Optimal per-layer buffer shares for one deficit triangle (Figure 4).

    Slices the triangle into horizontal bands of height ``layer_rate``.
    The bottom band (largest, longest-lived) goes to the base layer;
    ``shares[i]`` is layer i's share. Bands above the deficit peak are
    absent (those layers need no buffering). The shares sum to
    ``triangle_area(deficit, slope)`` exactly.
    """
    if deficit <= EPSILON:
        return ()
    shares: list[float] = []
    level = 0.0
    while level < deficit - EPSILON:
        top = min(level + layer_rate, deficit)
        area = ((deficit - level) ** 2 - (deficit - top) ** 2) / (2.0 * slope)
        shares.append(area)
        level = top
    return tuple(shares)


def one_backoff_requirement(rate: BytesPerSec, consumption: BytesPerSec,
                            slope: BytesPerSec2) -> Bytes:
    """Buffering needed to survive one backoff from ``rate`` (A.1).

    The adding condition C2 of section 2.1 evaluates this with
    ``consumption = (na + 1) * C``.
    """
    return triangle_area(consumption - rate / 2.0, slope)


def draining_recovery_requirement(rate: BytesPerSec,
                                  consumption: BytesPerSec,
                                  slope: BytesPerSec2) -> Bytes:
    """Buffering needed to finish the current draining phase (A.2).

    During draining the rate is already below consumption; the remaining
    deficit triangle has height ``consumption - rate``.
    """
    return triangle_area(consumption - rate, slope)


def drop_threshold(slope: BytesPerSec2, total_buffer: Bytes) -> BytesPerSec:
    """The section 2.2 comparison level ``sqrt(2 * S * total_buf)``.

    The largest deficit ``na*C - R`` the buffered data can still absorb:
    inverting equation (1), a triangle of height ``sqrt(2*S*A)`` has
    area ``A``. Exposed separately so decision records can log the exact
    right-hand side the drop rule compared against.
    """
    return math.sqrt(max(0.0, 2.0 * slope * total_buffer))


def layers_to_keep(rate: BytesPerSec, total_buffer: Bytes,
                   layer_rate: BytesPerSec, slope: BytesPerSec2,
                   active_layers: int) -> int:
    """The dropping mechanism of section 2.2.

    Iteratively drop the top layer while the buffered data cannot cover
    the remaining deficit triangle::

        WHILE na*C - R >= sqrt(2 * S * total_buf):  na -= 1

    The base layer is never dropped. Returns how many layers survive.
    """
    if active_layers < 1:
        raise ValueError("need at least one active layer")
    threshold = drop_threshold(slope, total_buffer)
    na = active_layers
    while na > 1 and na * layer_rate - rate >= threshold - EPSILON:
        na -= 1
    return na


def k1_backoffs(rate: BytesPerSec, consumption: BytesPerSec) -> int:
    """Minimum backoffs to push ``rate`` below ``consumption`` (A.4).

    At least one backoff always happens in a backoff scenario, so the
    result is >= 1 even when the rate is already below consumption.
    """
    if rate <= 0 or consumption <= 0:
        raise ValueError("rate and consumption must be positive")
    k1 = 1
    while rate / (2.0 ** k1) >= consumption - EPSILON:
        k1 += 1
    return k1


def scenario_total(rate: BytesPerSec, consumption: BytesPerSec,
                   slope: BytesPerSec2, k: int, scenario: int) -> Bytes:
    """``TotalBufRequired`` of the section 4.1 pseudocode (A.4).

    Scenario 1: ``k`` immediate backoffs, one big triangle.
    Scenario 2: ``k1`` immediate backoffs, then ``k - k1`` sequential
    backoff/recovery cycles each costing ``(consumption/2)^2 / (2S)``.
    For ``k <= k1`` the scenarios coincide.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if scenario == SCENARIO_ONE:
        return triangle_area(deficit_after_backoffs(rate, consumption, k),
                             slope)
    if scenario == SCENARIO_TWO:
        k1 = k1_backoffs(rate, consumption)
        if k <= k1:
            return triangle_area(
                deficit_after_backoffs(rate, consumption, k), slope)
        first = triangle_area(deficit_after_backoffs(rate, consumption, k1),
                              slope)
        sequential = triangle_area(consumption / 2.0, slope)
        return first + (k - k1) * sequential
    raise ValueError(f"scenario must be 1 or 2, got {scenario}")


def scenario_shares(rate: BytesPerSec, layer_rate: BytesPerSec,
                    active_layers: int, slope: BytesPerSec2, k: int,
                    scenario: int) -> tuple[Bytes, ...]:
    """``BufRequired`` for every layer at once (A.5), padded to ``na``.

    Returns a base-first vector of length ``active_layers``; entries
    beyond the minimum buffering layers are zero. The vector sums to
    :func:`scenario_total` (within float tolerance).
    """
    if active_layers < 1:
        raise ValueError("need at least one active layer")
    consumption = active_layers * layer_rate
    if scenario == SCENARIO_ONE:
        shares = band_shares(deficit_after_backoffs(rate, consumption, k),
                             layer_rate, slope)
    elif scenario == SCENARIO_TWO:
        k1 = k1_backoffs(rate, consumption)
        if k <= k1:
            shares = band_shares(
                deficit_after_backoffs(rate, consumption, k),
                layer_rate, slope)
        else:
            first = band_shares(
                deficit_after_backoffs(rate, consumption, k1),
                layer_rate, slope)
            seq = band_shares(consumption / 2.0, layer_rate, slope)
            width = max(len(first), len(seq))
            shares = tuple(
                (first[i] if i < len(first) else 0.0)
                + (k - k1) * (seq[i] if i < len(seq) else 0.0)
                for i in range(width)
            )
    else:
        raise ValueError(f"scenario must be 1 or 2, got {scenario}")
    padded = list(shares[:active_layers])
    padded += [0.0] * (active_layers - len(padded))
    # Band slicing can produce at most `active_layers` bands because the
    # deficit never exceeds na*C; the slice above is a safety net.
    return tuple(padded)


def drain_duration(deficit: BytesPerSec, slope: BytesPerSec2) -> Seconds:
    """Seconds until the rate climbs back up across the consumption rate."""
    if slope <= 0:
        raise ValueError("slope must be positive")
    return max(0.0, deficit / slope)


def share_sum(shares: Sequence[Bytes]) -> Bytes:
    """Float-stable sum for share vectors (tests compare against totals)."""
    return math.fsum(shares)
