"""Closed-form building blocks of the fluid fast path.

The paper's §2.2 analysis is stated over an idealized AIMD sawtooth: the
rate is piecewise linear, consumption is a constant ``na*C`` per phase,
and every buffering quantity is an area under those two curves. Between
*epochs* — backoffs, layer adds/drops, playout start, rate-cap
crossings — nothing discrete happens, so the whole state advances in
closed form:

- the rate is ``r(t) = min(r0 + S*(t - t0), max_rate)``;
- total receiver buffering integrates ``r(t) - na*C`` exactly
  (:func:`net_buffer_delta`), a piecewise quadratic in ``t``;
- the §2.1/§3.1 add condition and the §2.2 drop rule are scalar
  *residual* functions of ``t`` built from :mod:`repro.core.formulas`;
  their crossing instants are located by bracketing the residual on a
  coarse grid of closed-form evaluations and bisecting
  (:func:`first_crossing`) — no per-packet events anywhere.

:mod:`repro.sim.fluid` drives these helpers per flow;
:mod:`repro.sim.fluid_batch` re-derives the same forms vectorized over
numpy arrays for homogeneous flow classes. The packet-vs-fluid
differential harness (``tests/differential/``) pins the agreement of the
two backends on the paper-figure quantities.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core import formulas
from repro.core.config import QAConfig
from repro.core.states import StateSequence

# Re-exported: the tolerance itself is centralized (RL009 discipline).
from repro.core.tolerances import TIME_TOLERANCE as TIME_TOLERANCE
from repro.core.units import Bytes, BytesPerSec, BytesPerSec2, Seconds

#: Default grid density for :func:`first_crossing`. Residuals are smooth
#: between epochs (piecewise quadratic at worst), so a modest scan plus
#: bisection locates every sign change that matters.
SCAN_POINTS = 64


def rate_at(anchor_rate: BytesPerSec, slope: BytesPerSec2,
            anchor_time: Seconds, t: Seconds,
            max_rate: Optional[BytesPerSec] = None) -> BytesPerSec:
    """The AIMD ramp ``r(t)`` from an anchor, optionally capped."""
    value: BytesPerSec = anchor_rate + slope * (t - anchor_time)
    if max_rate is not None:
        value = min(value, max_rate)
    return value


def ramp_integral(anchor_rate: BytesPerSec, slope: BytesPerSec2,
                  anchor_time: Seconds, t0: Seconds, t1: Seconds,
                  max_rate: Optional[BytesPerSec] = None) -> Bytes:
    """``∫ r(t) dt`` over ``[t0, t1]`` for the capped ramp, exactly.

    The ramp crosses its cap at most once; both segments integrate to
    trapezoid areas, so the result is exact (no quadrature).
    """
    if t1 <= t0:
        return 0.0
    r0 = rate_at(anchor_rate, slope, anchor_time, t0, max_rate)
    r1 = rate_at(anchor_rate, slope, anchor_time, t1, max_rate)
    if max_rate is None or r1 < max_rate - formulas.EPSILON:
        return 0.5 * (r0 + r1) * (t1 - t0)
    if r0 >= max_rate - formulas.EPSILON:
        return max_rate * (t1 - t0)
    # The ramp hits the cap inside the window: trapezoid + plateau.
    t_cap: Seconds = anchor_time + (max_rate - anchor_rate) / slope
    return (0.5 * (r0 + max_rate) * (t_cap - t0)
            + max_rate * (t1 - t_cap))


def net_buffer_delta(anchor_rate: BytesPerSec, slope: BytesPerSec2,
                     anchor_time: Seconds, consumption: BytesPerSec,
                     t0: Seconds, t1: Seconds,
                     max_rate: Optional[BytesPerSec] = None) -> Bytes:
    """Exact change of total buffering over ``[t0, t1]``.

    Valid only within one epoch: the layer count (hence ``consumption``)
    and the sawtooth anchor must not change inside the window.
    """
    sent = ramp_integral(anchor_rate, slope, anchor_time, t0, t1, max_rate)
    return sent - consumption * (t1 - t0)


def add_requirement(rate: BytesPerSec, config: QAConfig,
                    active_layers: int, slope: BytesPerSec2,
                    base_reserve: Bytes) -> Bytes:
    """Total buffering needed before a layer add is allowed at ``rate``.

    Mirrors :meth:`repro.core.add_drop.AddDropPolicy.can_add` for the
    ``buffer_only``/``buffer_and_rate`` rules under the fluid split
    (buffers distributed bottom-up toward their targets, see
    :func:`split_total`): every per-layer target of the ``K_max``
    sequence is met, and §2.1's condition 2 (one further backoff with
    the new layer) holds, exactly when the *total* clears this level.
    """
    targets = StateSequence(
        rate, config.layer_rate, active_layers, slope, config.k_max
    ).final_targets
    condition2 = formulas.one_backoff_requirement(
        rate, config.consumption(active_layers + 1), slope)
    return base_reserve + max(formulas.share_sum(targets), condition2)


def add_margin(rate: BytesPerSec, total_buffer: Bytes, config: QAConfig,
               active_layers: int, slope: BytesPerSec2,
               base_reserve: Bytes) -> Bytes:
    """Headroom of the add condition; crosses zero when an add fires.

    Returns ``-inf``-like negative margin at the layer ceiling and, for
    the ``buffer_and_rate`` rule, while the instantaneous rate is below
    the consumption of existing plus new layers.
    """
    if active_layers >= config.max_layers:
        return -float("inf")
    if config.add_rule == "buffer_and_rate":
        if rate < config.consumption(active_layers + 1):
            return -float("inf")
    required = add_requirement(rate, config, active_layers, slope,
                               base_reserve)
    return total_buffer - required


def drop_margin(rate: BytesPerSec, consumption: BytesPerSec,
                slope: BytesPerSec2, drainable: Bytes) -> BytesPerSec:
    """The §2.2 drop inequality as a residual (fires at ``>= 0``).

    ``na*C - R >= sqrt(2*S*drainable)`` rearranged; both sides are B/s.
    """
    deficit: BytesPerSec = consumption - rate
    return deficit - formulas.drop_threshold(slope, drainable)


def split_total(total: Bytes, rate: BytesPerSec, config: QAConfig,
                active_layers: int, slope: BytesPerSec2) -> list[Bytes]:
    """Distribute a total fluid buffer across layers, base first.

    Approximates where the §4.1 filling policy would have put the data:
    the base layer first holds its stall-protection floor, then every
    layer fills bottom-up toward its ``K_max``-sequence target (plus the
    maintenance floor), and any excess parks in the base layer (§2.3:
    lower-layer buffering is the most efficient). The exact per-layer
    walk is packet-level detail; this split preserves the totals the
    drop rule reasons about and the base-first shape of Figure 5.
    """
    if active_layers < 1:
        return []
    path_rate: BytesPerSec = max(rate, config.consumption(active_layers))
    targets = list(StateSequence(
        path_rate, config.layer_rate, active_layers, slope, config.k_max
    ).final_targets)
    caps: list[Bytes] = []
    for layer in range(active_layers):
        floor: Bytes = (config.base_floor_bytes if layer == 0
                        else config.floor_bytes)
        caps.append(targets[layer] + floor)
    levels = [0.0] * active_layers
    remaining: Bytes = max(0.0, total)
    for layer in range(active_layers):
        take: Bytes = min(remaining, caps[layer])
        levels[layer] = take
        remaining -= take
    levels[0] += remaining  # excess parks in the base layer
    return levels


def first_crossing(residual: Callable[[Seconds], float],
                   lo: Seconds, hi: Seconds,
                   points: int = SCAN_POINTS,
                   tol: Seconds = TIME_TOLERANCE) -> Optional[Seconds]:
    """Earliest ``t`` in ``(lo, hi]`` where ``residual(t) >= 0``.

    The residual is assumed smooth between epochs (it is built from the
    closed forms above). A coarse scan brackets the first sign change;
    bisection then pins it to ``tol``. Returns ``None`` when the
    residual stays negative over the whole window. A residual already
    non-negative at ``lo`` reports ``lo`` (the event is due now).
    """
    if hi <= lo:
        return None
    if residual(lo) >= 0.0:
        return lo
    step: Seconds = (hi - lo) / points
    prev: Seconds = lo
    for i in range(1, points + 1):
        t: Seconds = hi if i == points else lo + i * step
        if residual(t) >= 0.0:
            # Bracketed in (prev, t]: bisect.
            a, b = prev, t
            while b - a > tol:
                mid: Seconds = 0.5 * (a + b)
                if residual(mid) >= 0.0:
                    b = mid
                else:
                    a = mid
            return b
        prev = t
    return None


def conservation_error(sent: Bytes, consumed: Bytes, discarded: Bytes,
                       stalled: Bytes, buffered: Bytes) -> Bytes:
    """Byte-conservation residual of a fluid flow (should be ~0).

    Every sent byte is either still buffered, already consumed,
    discarded with a dropped layer, or was never consumed because the
    base layer stalled (the stall shortfall is accounted as consumption
    the receiver *wanted*; see ``FluidQAFlow``).
    """
    return sent - consumed - discarded - buffered + stalled


def mean_of_samples(values: Sequence[float]) -> float:
    """Plain mean used by batch summaries (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(values) / len(values)
