"""Configuration of the quality adaptation mechanism.

One dataclass holds every tunable so experiments can sweep parameters
declaratively. Defaults follow the paper's section 5 setup where the paper
states a value, and sensible engineering choices where it does not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.core.units import (
    ByteCount,
    Bytes,
    BytesPerSec,
    BytesPerSec2,
    Scalar,
    Seconds,
)


@dataclass
class QAConfig:
    """Tunables of the quality adaptation mechanism.

    Attributes:
        layer_rate: per-layer consumption rate ``C`` in bytes/s. The paper
            assumes linearly spaced layers (all layers share one ``C``).
        max_layers: hard ceiling on the number of encoded layers available
            at the server (the codec produced only this many).
        k_max: smoothing factor -- buffer for this many backoffs (in both
            scenarios) before adding a new layer. The paper evaluates
            2, 3, 4, 5 and 8.
        add_rule: ``"buffer_only"`` (the paper's final rule: the *only*
            adding condition is buffer availability for ``k_max`` backoffs),
            ``"buffer_and_rate"`` (also require the instantaneous rate to
            exceed the consumption rate of existing plus new layers --
            section 2.1's conditions 1+2), or ``"average_bandwidth"`` (the
            rejected alternative of section 3.1, kept as a baseline).
        allocator: ``"optimal"`` (the paper's mechanism),
            ``"equal_share"`` or ``"base_first"`` (section 2.3's strawmen,
            kept as ablation baselines).
        packet_size: media packet size in bytes (RAP default 1000).
        startup_delay: seconds between the first received byte and playout
            start (users "expect startup playback latency to be low").
        drain_period: how often the draining planner of section 4.2
            recomputes the per-layer drain pattern, in seconds.
        maintenance_floor: minimum per-layer buffer (in units of
            ``layer_rate`` seconds) that filling maintains so no active
            layer underflows between packets; absorbs packetization and
            the feedback delay of the server's buffer estimate. It also
            serves as the bootstrap cushion a newly added layer collects
            before its playout starts.
        base_floor: like ``maintenance_floor`` but for the base layer
            only (in ``layer_rate`` seconds). The base is the one layer
            whose underflow stalls playback outright, so it carries a
            larger protected margin; this margin is excluded from the
            "drainable" buffering the drop rule and Table 2 reason about.
        underflow_debt_packets: how many packets' worth of estimated
            consumption shortfall a layer tolerates before the adapter
            treats it as a critical situation and drops the top layer.
        slope_override: fixed AIMD slope ``S`` in bytes/s^2; ``None`` means
            ask the congestion controller (RAP exposes ``P/srtt^2``).
        average_bandwidth_gain: EWMA gain for the rate average used by the
            ``"average_bandwidth"`` add rule.
        feedback: how the server estimates receiver buffers.
            ``"send"`` (default, the paper's model: the server knows its
            own transmission history) credits a layer at send time and
            debits it when the congestion controller detects the loss;
            ``"ack"`` credits only acknowledged data (one RTT stale,
            conservative -- a sensitivity baseline); ``"oracle"`` credits
            at send time and ignores losses (upper bound, for tests).
        retransmit_layers: selective retransmission (section 1.3: the
            layered approach "provides an opportunity for selective
            retransmission of the more important information"). Lost
            data from layers below this index is re-sent with priority;
            0 disables retransmission (the paper's evaluated
            configuration), 1 protects the base layer only.
        max_buffer_seconds: receiver flow control -- cap any layer's
            buffered data at this many seconds of its consumption rate.
            The paper "ignores flow control issues for simplicity";
            ``None`` reproduces that (a lone flow on a fat link then
            parks data without bound). When set, the server idles
            transmission slots once the target layer is full.
    """

    layer_rate: BytesPerSec = 2500.0
    max_layers: int = 8
    k_max: int = 2
    add_rule: str = "buffer_only"
    allocator: str = "optimal"
    packet_size: ByteCount = 1000
    startup_delay: Seconds = 1.0
    drain_period: Seconds = 0.1
    maintenance_floor: Seconds = 0.1
    base_floor: Seconds = 1.2
    underflow_debt_packets: Scalar = 6.0
    slope_override: Optional[BytesPerSec2] = None
    average_bandwidth_gain: Scalar = 0.05
    feedback: str = "send"
    retransmit_layers: int = 0
    max_buffer_seconds: Optional[Seconds] = None

    VALID_ADD_RULES = ("buffer_only", "buffer_and_rate", "average_bandwidth")
    VALID_ALLOCATORS = ("optimal", "equal_share", "base_first")
    VALID_FEEDBACK = ("send", "ack", "oracle")

    def __post_init__(self) -> None:
        if self.layer_rate <= 0:
            raise ValueError("layer_rate must be positive")
        if self.max_layers < 1:
            raise ValueError("max_layers must be at least 1")
        if self.k_max < 1:
            raise ValueError("k_max must be at least 1 (1 = no smoothing)")
        if self.add_rule not in self.VALID_ADD_RULES:
            raise ValueError(f"unknown add_rule {self.add_rule!r}")
        if self.allocator not in self.VALID_ALLOCATORS:
            raise ValueError(f"unknown allocator {self.allocator!r}")
        if self.feedback not in self.VALID_FEEDBACK:
            raise ValueError(f"unknown feedback {self.feedback!r}")
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.drain_period <= 0:
            raise ValueError("drain_period must be positive")
        if self.maintenance_floor < 0:
            raise ValueError("maintenance_floor cannot be negative")
        if self.base_floor < 0:
            raise ValueError("base_floor cannot be negative")
        if self.underflow_debt_packets <= 0:
            raise ValueError("underflow_debt_packets must be positive")
        if self.retransmit_layers < 0:
            raise ValueError("retransmit_layers cannot be negative")
        if self.max_buffer_seconds is not None \
                and self.max_buffer_seconds <= 0:
            raise ValueError("max_buffer_seconds must be positive")

    def with_(self, **changes: Any) -> "QAConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    @property
    def floor_bytes(self) -> Bytes:
        """The per-layer maintenance floor expressed in bytes."""
        return self.maintenance_floor * self.layer_rate

    @property
    def base_floor_bytes(self) -> Bytes:
        """The base layer's stall-protection margin in bytes."""
        return self.base_floor * self.layer_rate

    def consumption(self, active_layers: int) -> BytesPerSec:
        """Total consumption rate ``na * C`` in bytes/s."""
        return active_layers * self.layer_rate
