"""Centralized float-comparison tolerances (the RL009 discipline).

Every tolerance used when comparing unit-bearing floats lives here, so
the §2.2 crossing/bisection math, the playout boundary matching and the
byte-conservation checks all agree on what "equal" means. Defining a
tolerance anywhere else — or comparing unit-bearing floats with a raw
``==`` — is flagged by ``repro-lint`` rule RL009: scattered ad-hoc
epsilons are how two code paths quietly disagree about whether a
crossing fired, which breaks the bit-for-bit determinism the golden and
differential harnesses depend on.

The constants keep their historical values (and therefore every golden
artifact byte-identical): they were introduced alongside the formula
layer (``EPSILON``), the fluid solver (``TIME_TOLERANCE``) and the fluid
engine (``TIME_SLACK``) and are re-exported from those modules.
"""

from __future__ import annotations

from typing import Final

from repro.core.units import Seconds

#: Tolerance for float comparisons on byte quantities (Appendix A
#: formulas, buffer shares, conservation residuals).
EPSILON: Final[float] = 1e-9

#: Bisection tolerance on event instants (seconds). Far below any
#: sampling period or RTT the differential harness compares at.
TIME_TOLERANCE: Final[Seconds] = 1e-7

#: Time slack when matching an epoch endpoint against a scheduled
#: boundary (backoff instant, playout start) in the fluid engine.
TIME_SLACK: Final[Seconds] = 1e-9


def close(a: float, b: float, tol: float = EPSILON) -> bool:
    """Absolute-tolerance equality for unit-bearing floats.

    Absolute (not relative) because every quantity compared in the
    reproduction is bounded by scenario scale — rates in B/s, times in
    seconds — and the goldens pin absolute values.
    """
    return abs(a - b) <= tol


def is_zero(value: float, tol: float = EPSILON) -> bool:
    """Is ``value`` zero up to ``tol``?"""
    return abs(value) <= tol


def at_least(a: float, b: float, tol: float = EPSILON) -> bool:
    """Tolerant ``a >= b``: true when ``a`` clears ``b`` minus ``tol``."""
    return a >= b - tol
