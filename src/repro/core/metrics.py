"""Evaluation metrics (section 5, Tables 1 and 2).

Two headline numbers quantify how well the inter-layer buffer
distribution works:

- **Buffering efficiency** (Table 1): when a layer is dropped, any data
  still buffered for it stops providing buffering functionality. Per drop
  event, ``e = (buf_total - buf_drop) / buf_total``; the table reports the
  mean of ``e`` over all drop events of a run.
- **Drops due to poor buffer distribution** (Table 2): the percentage of
  drop events that would not have happened had the *same total* buffering
  been distributed differently -- i.e. drops where total buffering was
  sufficient for recovery but some layer's buffer ran dry anyway.

Plus general quality-of-experience counters: quality (layer) changes,
startup latency, stalls, time-averaged quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class DropCause(Enum):
    """Why a layer was dropped."""

    #: The section 2.2 rule: total buffering below the recovery triangle.
    RULE = "rule"
    #: A layer's own buffer ran dry (critical situation of section 2.2).
    UNDERFLOW = "underflow"
    #: The draining planner could not cover the period's deficit.
    SHORTFALL = "shortfall"


@dataclass
class DropEvent:
    """One dropped layer, with the state needed for Tables 1 and 2.

    Attributes:
        buf_total: all receiver buffering at drop time (Table 1's base).
        drainable: the part of ``buf_total`` actually usable for recovery
            (excludes the base layer's in-flight/stall-protection margin).
            Defaults to ``buf_total`` when the caller does not separate
            the two.
        required: the recovery requirement ``(na*C - R)^2 / (2S)`` at
            drop time.
    """

    time: float
    layer: int
    buf_drop: float
    buf_total: float
    required: float
    cause: DropCause
    drainable: float = -1.0

    def __post_init__(self) -> None:
        if self.drainable < 0:
            self.drainable = self.buf_total

    @property
    def efficiency(self) -> float:
        """Table 1's ``e`` for this event (1.0 when nothing was buffered)."""
        if self.buf_total <= 0:
            return 1.0
        return (self.buf_total - self.buf_drop) / self.buf_total

    @property
    def poor_distribution(self) -> bool:
        """Table 2's criterion: usable buffering was sufficient, yet we
        dropped -- only a different distribution could have saved the
        layer."""
        return self.drainable >= self.required - 1e-9


@dataclass
class QualityMetrics:
    """Accumulates QA events over one run."""

    drops: list[DropEvent] = field(default_factory=list)
    adds: list[tuple[float, int]] = field(default_factory=list)
    stall_count: int = 0
    stall_time: float = 0.0
    startup_latency: Optional[float] = None
    base_underflow_bytes: float = 0.0

    # ----------------------------------------------------------- recording

    def record_drop(self, event: DropEvent) -> None:
        """Log a layer-drop event (feeds Tables 1 and 2)."""
        self.drops.append(event)

    def record_add(self, time: float, new_layer: int) -> None:
        """Log a layer add (feeds the quality-change counters)."""
        self.adds.append((time, new_layer))

    def record_stall(self, duration: float) -> None:
        """Log one playback stall of ``duration`` seconds."""
        self.stall_count += 1
        self.stall_time += duration

    # ------------------------------------------------------------- tables

    def buffering_efficiency(self) -> Optional[float]:
        """Table 1: mean efficiency across drop events (None: no drops)."""
        if not self.drops:
            return None
        return sum(e.efficiency for e in self.drops) / len(self.drops)

    def poor_distribution_percent(self) -> Optional[float]:
        """Table 2: percent of drops blamed on distribution (None: no
        drops, rendered '-' as in the paper's Kmax=8/T1 cell)."""
        if not self.drops:
            return None
        bad = sum(1 for e in self.drops if e.poor_distribution)
        return 100.0 * bad / len(self.drops)

    # --------------------------------------------------------------- QoE

    @property
    def quality_changes(self) -> int:
        """Total number of layer adds plus drops (smoothing metric)."""
        return len(self.adds) + len(self.drops)

    def summary(self) -> dict[str, Optional[float]]:
        """Everything the experiment harnesses print."""
        eff = self.buffering_efficiency()
        poor = self.poor_distribution_percent()
        return {
            "drops": len(self.drops),
            "adds": len(self.adds),
            "quality_changes": self.quality_changes,
            "efficiency_percent": None if eff is None else 100.0 * eff,
            "poor_distribution_percent": poor,
            "stall_count": self.stall_count,
            "stall_time": self.stall_time,
            "startup_latency": self.startup_latency,
        }
