"""A fluid (packet-free) model of the mechanism.

The paper's illustrative figures (2, 5, 6) show the mechanism under a
*clean* AIMD sawtooth: the rate climbs linearly at slope S and halves at
chosen instants, data arrives instantly, nothing is lost. This module
drives the real :class:`~repro.core.adapter.QualityAdapter` under exactly
those conditions: small quanta, oracle feedback, scripted backoffs.

It is also the reference environment for unit tests: every invariant of
the filling/draining machinery can be checked here without the noise of a
packet network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.adapter import QualityAdapter
from repro.core.config import QAConfig
from repro.core.metrics import QualityMetrics
from repro.sim.engine import Simulator
from repro.sim.trace import PeriodicSampler, Tracer


class ScriptedAimd:
    """An AIMD rate trajectory with backoffs at scripted times.

    ``rate(t)`` = linear climb at ``slope`` from the last backoff's level,
    halved at each scripted instant, never below ``min_rate``.
    """

    def __init__(self, initial_rate: float, slope: float,
                 backoff_times: Iterable[float] = (),
                 min_rate: float = 100.0,
                 max_rate: Optional[float] = None) -> None:
        if initial_rate <= 0 or slope <= 0:
            raise ValueError("initial_rate and slope must be positive")
        self.slope = slope
        self.min_rate = min_rate
        self.max_rate = max_rate
        self._anchor_rate = initial_rate
        self._anchor_time = 0.0
        self._pending = sorted(backoff_times)

    @property
    def pending_backoffs(self) -> tuple[float, ...]:
        """Scripted backoff instants not yet consumed, in order."""
        return tuple(self._pending)

    def next_backoff(self) -> Optional[float]:
        """The next pending backoff instant, or None when exhausted."""
        return self._pending[0] if self._pending else None

    def clone(self) -> "ScriptedAimd":
        """An independent copy of the full current state.

        The fluid engine consumes pending backoffs as it advances;
        clone before a run to drive a second backend from the same
        trajectory.
        """
        out = ScriptedAimd(self._anchor_rate, self.slope,
                           min_rate=self.min_rate, max_rate=self.max_rate)
        out._anchor_rate = self._anchor_rate
        out._anchor_time = self._anchor_time
        out._pending = list(self._pending)
        return out

    def backoffs_until(self, t: float) -> list[float]:
        """Consume and return scripted backoff times up to ``t``."""
        due = [b for b in self._pending if b <= t]
        self._pending = self._pending[len(due):]
        return due

    def apply_backoff(self, at: float) -> float:
        """Halve the rate at time ``at``; returns the new rate."""
        rate_before = self.rate(at)
        self._anchor_rate = max(self.min_rate, rate_before / 2.0)
        self._anchor_time = at
        return self._anchor_rate

    def rate(self, t: float) -> float:
        value = self._anchor_rate + self.slope * (t - self._anchor_time)
        if self.max_rate is not None:
            value = min(value, self.max_rate)
        return value


@dataclass
class FluidResult:
    """Output of a fluid run."""

    tracer: Tracer
    adapter: QualityAdapter

    @property
    def metrics(self) -> QualityMetrics:
        return self.adapter.metrics


class FluidRun:
    """Drive a QualityAdapter with a scripted fluid bandwidth.

    Data is credited at send time (oracle feedback) and packets are small
    (an eighth of the configured packet size by default) so curves are
    smooth like the paper's sketches.
    """

    def __init__(
        self,
        config: QAConfig,
        bandwidth: ScriptedAimd,
        duration: float,
        quantum: Optional[int] = None,
        sample_period: float = 0.02,
        sim: Optional[Simulator] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.config = config.with_(
            feedback="oracle",
            packet_size=quantum or max(1, config.packet_size // 8),
        )
        self.bandwidth = bandwidth
        self.duration = duration
        self.sample_period = sample_period
        # An external simulator lets a scenario host several scripted
        # flows on one clock; standalone runs keep their private one.
        self.sim = sim if sim is not None else Simulator()
        self.tracer = Tracer()
        self.adapter = QualityAdapter(
            self.config,
            now_fn=lambda: self.sim.now,
            rate_fn=lambda: self.bandwidth.rate(self.sim.now),
            slope_fn=lambda: self.bandwidth.slope,
            on_event=lambda t, kind, f: self.tracer.log_event(t, kind, **f),
        )
        self._carry = 0.0
        self._seq = 0
        self._drained_last = [0.0] * self.config.max_layers
        self._sent_last = [0.0] * self.config.max_layers

    def start(self) -> None:
        """Schedule the tick and send samplers on the simulator.

        Used directly when the simulator is shared (scenario backend);
        ``run`` calls it for the standalone case.
        """
        PeriodicSampler(self.sim, self.config.drain_period,
                        lambda _t: self.adapter.tick())
        PeriodicSampler(self.sim, self.sample_period, self._step)

    def result(self) -> FluidResult:
        """Traces and adapter state collected so far."""
        return FluidResult(tracer=self.tracer, adapter=self.adapter)

    def run(self) -> FluidResult:
        """Run the scripted scenario to completion and return traces."""
        self.start()
        self.sim.run(until=self.duration)
        return self.result()

    # ------------------------------------------------------------ internals

    def _step(self, now: float) -> None:
        # Scripted backoffs take effect before this interval's sends.
        for at in self.bandwidth.backoffs_until(now):
            new_rate = self.bandwidth.apply_backoff(at)
            self.adapter.on_backoff(new_rate)

        rate = self.bandwidth.rate(now)
        self._carry += rate * self.sample_period
        quantum = self.config.packet_size
        while self._carry >= quantum:
            self._carry -= quantum
            self.adapter.pick_layer(self._seq)
            self._seq += 1
        self._sample(now, rate)

    def _sample(self, now: float, rate: float) -> None:
        t = self.tracer
        t.record("rate", now, rate)
        t.record("consumption", now, self.adapter.consumption)
        t.record("layers", now, self.adapter.active_layers)
        total = 0.0
        for i in range(self.config.max_layers):
            level = self.adapter.buffers.level(i)
            total += level
            t.record(f"buffer_L{i}", now, level)
            sent = self.adapter.sent_bytes_per_layer[i]
            t.record(f"send_rate_L{i}", now,
                     (sent - self._sent_last[i]) / self.sample_period)
            self._sent_last[i] = sent
        t.record("total_buffer", now, total)
