"""Fine-grain bandwidth allocation during the filling phase (section 4.1).

This is the paper's per-packet ``SendPacket`` algorithm: every
transmission opportunity is assigned to one layer so that the receiver's
per-layer buffers climb through the maximally efficient sequence of
optimal states (Figure 10) without ever draining a buffer mid-filling.

The algorithm, restated:

1. Find ``s1_k``: the smallest k whose scenario-1 total requirement is not
   yet covered by the available buffering (stop past ``k_max`` -- scenario
   1 fully provisioned).
2. Find ``s2_k`` likewise for scenario 2 (not capped: once both scenarios
   reach ``k_max`` the adapter adds a layer, which restarts the walk; at
   the codec's maximum layer count the walk simply keeps deepening
   protection).
3. Walk layers base-first. If the pending scenario-1 state needs less
   total buffering than the pending scenario-2 state, fill the first layer
   below its scenario-1 share. Otherwise fill the first layer below its
   scenario-2 share **and** still below its scenario-1 share -- the clamp
   of section 4 ("no more than the next scenario 1 state"), which pushes
   any excess to higher layers where it can still substitute for
   lower-layer buffering.

One practical addition for a packetized (non-fluid) system: a small
per-layer *maintenance floor*. In the fluid model a layer at its target
keeps receiving exactly C, so its buffer never moves; with packets and
one-RTT-stale feedback a layer could momentarily starve. Layers whose
buffer falls below the floor get absolute priority (most-depleted first).
The floor is a fraction of a second of layer data (see
:attr:`repro.core.config.QAConfig.maintenance_floor`) and is far below any
optimal share, so it does not disturb the filling path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core import formulas
from repro.core.config import QAConfig
from repro.core.formulas import SCENARIO_ONE, SCENARIO_TWO
from repro.core.units import Bytes, BytesPerSec, BytesPerSec2

#: Runaway guard for the (normally small) scenario-2 search.
_MAX_K_SEARCH = 10_000


@dataclass
class FillingDecision:
    """Outcome of one per-packet decision (kept for traces and tests)."""

    layer: Optional[int]
    s1_k: int
    s2_k: int
    working_scenario: int
    maintenance: bool = False

    @property
    def working_state(self) -> str:
        k = self.s1_k if self.working_scenario == SCENARIO_ONE else self.s2_k
        return f"S{self.working_scenario}k{k}"


#: Bound on the exact-argument result caches below; cleared when full.
_CACHE_LIMIT = 4096


class FillingPolicy:
    """Chooses the layer for each packet sent during a filling phase.

    The per-packet work is dominated by :func:`formulas.scenario_total` /
    :func:`formulas.scenario_shares` evaluations whose inputs (rate,
    slope, layer count) repeat for long packet runs between rate changes.
    Results are memoized on their exact float arguments — a pure-function
    cache, so every returned value is bit-identical to the uncached
    computation and golden traces are unaffected.
    """

    def __init__(self, config: QAConfig) -> None:
        self.config = config
        self._shares_cache: dict[
            tuple[float, int, float, int, int], tuple[float, ...]
        ] = {}

    def _shares(
        self, rate: BytesPerSec, na: int, slope: BytesPerSec2, k: int,
        scenario: int
    ) -> tuple[Bytes, ...]:
        """Memoized :func:`formulas.scenario_shares` (layer_rate is fixed)."""
        key = (rate, na, slope, k, scenario)
        cached = self._shares_cache.get(key)
        if cached is None:
            cached = formulas.scenario_shares(
                rate, self.config.layer_rate, na, slope, k, scenario)
            if len(self._shares_cache) >= _CACHE_LIMIT:
                self._shares_cache.clear()
            self._shares_cache[key] = cached
        return cached

    def choose(
        self,
        rate: BytesPerSec,
        buffers: Sequence[Bytes],
        active_layers: int,
        slope: BytesPerSec2,
        needs_floor: Optional[Sequence[bool]] = None,
        safety_levels: Optional[Sequence[Bytes]] = None,
    ) -> FillingDecision:
        """Pick the layer the next packet should carry.

        Args:
            rate: current transmission rate R (bytes/s).
            buffers: per-layer buffered bytes (server's estimate), base
                first, length >= ``active_layers``.
            active_layers: na.
            slope: AIMD slope S.
            needs_floor: per-layer flags -- which layers the maintenance
                floor protects (typically all of them once playback has
                begun; none before). Defaults to all.
            safety_levels: per-layer *lower bounds* on what the receiver
                actually holds (the estimate minus in-flight bytes for a
                send-time-crediting estimator). The maintenance floor is
                checked against these; target filling uses ``buffers``.
                Defaults to ``buffers``.

        Returns a :class:`FillingDecision`; ``layer`` is None only when
        every target is met (the adapter then adds a layer or parks excess
        bandwidth in the base layer).
        """
        cfg = self.config
        na = active_layers
        buffers = list(buffers[:na])
        total = sum(buffers)
        consumption = na * cfg.layer_rate

        # Maintenance floor: keep every protected layer playable. The top
        # layer gets only a one-packet floor -- in the optimal allocation
        # it holds (near) nothing, riding the network at C, so that when
        # it is dropped almost no buffered data is wasted (this is what
        # drives the paper's buffering efficiency to ~100%).
        if needs_floor is None:
            needs_floor = [True] * na
        if safety_levels is None:
            safety_levels = buffers
        floors = [cfg.floor_bytes] * na
        floors[na - 1] = min(cfg.floor_bytes, float(cfg.packet_size))
        floors[0] = cfg.base_floor_bytes  # the base never goes thin
        starving = [
            i for i in range(na)
            if needs_floor[i] and safety_levels[i] < floors[i]
        ]
        if starving:
            layer = min(starving, key=lambda i: safety_levels[i])
            return FillingDecision(layer, 0, 0, SCENARIO_ONE,
                                   maintenance=True)

        s1_k, req1 = self._first_unsatisfied(
            rate, consumption, slope, total, SCENARIO_ONE, cap=cfg.k_max)
        s2_k, req2 = self._first_unsatisfied(
            rate, consumption, slope, total, SCENARIO_TWO, cap=None)

        if s1_k > cfg.k_max and s2_k > cfg.k_max:
            # Every state up to K_max is covered *in total*; before
            # deepening protection beyond K_max, make sure the K_max
            # distribution itself is complete per layer (the pseudocode's
            # total-based loops can leave a middle layer below its share
            # while the base over-fills, which would stall the add rule).
            from repro.core.states import StateSequence

            targets = StateSequence(rate, cfg.layer_rate, na, slope,
                                    cfg.k_max).final_targets
            for layer in range(na):
                if targets[layer] > buffers[layer] + formulas.EPSILON:
                    return FillingDecision(layer, s1_k, s2_k,
                                           SCENARIO_TWO)

        s1_pending = s1_k <= cfg.k_max
        shares1 = (
            self._shares(rate, na, slope, s1_k, SCENARIO_ONE)
            if s1_pending else None
        )
        shares2 = self._shares(rate, na, slope, s2_k, SCENARIO_TWO)

        if shares1 is not None and req1 <= req2:
            # Working towards the scenario-1 state.
            for layer in range(na):
                if shares1[layer] > buffers[layer] + formulas.EPSILON:
                    return FillingDecision(layer, s1_k, s2_k, SCENARIO_ONE)
            return FillingDecision(None, s1_k, s2_k, SCENARIO_ONE)

        # Working towards the scenario-2 state, clamped by the pending
        # scenario-1 state: no layer is filled beyond its share at the
        # *next* scenario-1 state; the excess is redistributed to higher
        # layers (where it can still substitute for lower-layer
        # buffering). This is the section 4 constraint that keeps the
        # path monotone.
        if shares1 is not None:
            targets = self._clamp_shares(shares2, shares1)
        else:
            targets = shares2
        for layer in range(na):
            if targets[layer] > buffers[layer] + formulas.EPSILON:
                return FillingDecision(layer, s1_k, s2_k, SCENARIO_TWO)
        return FillingDecision(None, s1_k, s2_k, SCENARIO_TWO)

    @staticmethod
    def _clamp_shares(
        raw: Sequence[Bytes], caps: Sequence[Bytes]
    ) -> tuple[Bytes, ...]:
        """Clamp ``raw`` element-wise at ``caps``, carrying any excess to
        higher layers; leftover that no cap can hold lands on the top
        layer (total protection is preserved either way)."""
        clamped: list[float] = []
        carry = 0.0
        for share, cap in zip(raw, caps):
            want = share + carry
            give = min(want, cap)
            clamped.append(give)
            carry = want - give
        if carry > 0 and clamped:
            clamped[-1] += carry
        return tuple(clamped)

    def _first_unsatisfied(
        self,
        rate: BytesPerSec,
        consumption: BytesPerSec,
        slope: BytesPerSec2,
        total_buffer: Bytes,
        scenario: int,
        cap: Optional[int],
    ) -> tuple[int, Bytes]:
        """Smallest k whose total requirement exceeds the buffering.

        Mirrors the pseudocode's WHILE loops: returns ``(k, requirement)``;
        for scenario 1 the search stops at ``cap + 1`` (fully provisioned).

        For scenario 2 past ``k1`` the requirement grows *linearly* —
        ``req(k) = first + (k - k1) * sequential`` — so instead of walking
        k one step at a time (the profiled hot spot: ~100 evaluations per
        packet at deep buffering), the smallest unsatisfied k is found by
        direct division and then corrected by at most a couple of exact
        comparisons. The returned requirement is computed with the same
        expression :func:`formulas.scenario_total` uses, so the result is
        bit-identical to the naive walk.
        """
        bound = total_buffer + formulas.EPSILON
        k = 0
        req = 0.0
        k1 = (formulas.k1_backoffs(rate, consumption)
              if scenario == SCENARIO_TWO else None)
        while req <= bound:
            if cap is not None and k >= cap + 1:
                break
            if k >= _MAX_K_SEARCH:  # pragma: no cover - runaway guard
                break
            if k1 is not None and k == k1 and cap is None:
                # Linear regime: jump to the answer instead of walking.
                first = req
                sequential = formulas.triangle_area(consumption / 2.0,
                                                    slope)
                n = max(1, int((bound - first) / sequential))
                while n > 1 and first + (n - 1) * sequential > bound:
                    n -= 1
                while (first + n * sequential <= bound
                       and k1 + n < _MAX_K_SEARCH):
                    n += 1
                if k1 + n > _MAX_K_SEARCH:  # pragma: no cover - guard
                    n = _MAX_K_SEARCH - k1
                return k1 + n, first + n * sequential
            k += 1
            req = formulas.scenario_total(rate, consumption, slope, k,
                                          scenario)
        return k, req
