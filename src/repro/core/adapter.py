"""The quality adaptation mechanism itself (sections 2-4 end to end).

:class:`QualityAdapter` is the server-side controller. It is transport
agnostic: it consumes three callables (current time, current transmission
rate, current AIMD slope estimate) plus two event streams (per-layer
delivery confirmations and backoff notifications), and it answers one
question per transmission opportunity -- *which layer does the next packet
carry?*

Control flow, mirroring the paper:

- **Filling phase** (rate >= na*C): every packet is assigned by the
  section 4.1 per-packet algorithm (:class:`~repro.core.filling.
  FillingPolicy`), stepping the receiver's buffer distribution through the
  maximally efficient sequence of optimal states. When all ``K_max``
  targets are met, a layer is added (section 3.1's buffer-only rule by
  default).
- **Backoff**: the rate halves; the section 2.2 drop rule fires
  immediately; the state path is frozen at the pre-backoff rate so the
  draining phase can walk it backwards.
- **Draining phase** (rate < na*C): every ``drain_period`` the
  section 4.2 planner decides how much each layer's buffer contributes,
  and packets are spent against the resulting per-layer quotas. Critical
  situations (further backoffs, slope mis-estimates, planner shortfall,
  estimator underflow) drop the top layer as soon as they are detected.

The adapter tracks its own *estimate* of the receiver's buffers:
deliveries come from ACKs (one RTT stale, hence conservative) and
consumption from the playout clock agreed at session start. An ``oracle``
feedback mode (deliveries applied at send time) exists for tests and
sensitivity studies.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import formulas
from repro.core.add_drop import AddDropPolicy
from repro.core.buffers import LayerBufferSet
from repro.core.config import QAConfig
from repro.core.draining import DrainingPlanner, DrainPlan
from repro.core.filling import FillingPolicy
from repro.core.metrics import DropCause, DropEvent, QualityMetrics
from repro.core.states import StateSequence
from repro.core.units import (
    Bytes,
    ByteCount,
    BytesPerSec,
    BytesPerSec2,
    Seconds,
)

Clock = Callable[[], Seconds]
RateFn = Callable[[], BytesPerSec]
SlopeFn = Callable[[], BytesPerSec2]
EventHook = Callable[[float, str, dict[str, object]], None]


class QualityAdapter:
    """Server-side layered quality adaptation controller."""

    def __init__(
        self,
        config: QAConfig,
        now_fn: Clock,
        rate_fn: RateFn,
        slope_fn: SlopeFn,
        start_time: Seconds = 0.0,
        on_event: Optional[EventHook] = None,
    ) -> None:
        self.config = config
        self.now_fn = now_fn
        self.rate_fn = rate_fn
        self.slope_fn = slope_fn
        self.on_event = on_event

        self.buffers = LayerBufferSet(config.layer_rate, config.max_layers)
        self.metrics = QualityMetrics()
        self.filling_policy, self.planner = self._make_policies(config)
        self.add_drop = AddDropPolicy(config)

        self.active_layers = 0
        self.playout_started = False
        self.playout_start_time: Seconds = start_time + config.startup_delay
        self.average_rate: BytesPerSec = 0.0
        self.sent_bytes_per_layer: list[Bytes] = [0.0] * config.max_layers
        self._shortfall_debt: list[Bytes] = [0.0] * config.max_layers
        self._inflight: list[Bytes] = [0.0] * config.max_layers
        self._slope_avg: Optional[BytesPerSec2] = None
        self._plan_shortfall_debt: Bytes = 0.0
        self._delivered_accum: Bytes = 0.0
        self._last_average_update: Seconds = start_time
        #: Bytes of lost low-layer data owed a retransmission (§1.3).
        self._retransmit_debt: list[Bytes] = [0.0] * config.max_layers
        self.retransmitted_bytes: Bytes = 0.0

        self._frozen_rate: Optional[BytesPerSec] = None
        self._sequence: Optional[StateSequence] = None
        self._plan: Optional[DrainPlan] = None
        self._plan_until: Seconds = -1.0
        self._quota: list[Bytes] = []

        self._activate_layer(start_time)  # the base layer is always sent

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _make_policies(
        config: QAConfig,
    ) -> tuple[FillingPolicy, DrainingPlanner]:
        """Pick the filling/draining pair for the configured allocator.

        The strawman allocators live in :mod:`repro.baselines` (imported
        lazily to avoid a package cycle).
        """
        if config.allocator == "equal_share":
            from repro.baselines.allocators import (
                EqualShareFillingPolicy, SimpleDrainingPlanner)
            return (EqualShareFillingPolicy(config),
                    SimpleDrainingPlanner(config, order="equal"))
        if config.allocator == "base_first":
            from repro.baselines.allocators import (
                BaseFirstFillingPolicy, SimpleDrainingPlanner)
            return (BaseFirstFillingPolicy(config),
                    SimpleDrainingPlanner(config, order="bottom_up"))
        return FillingPolicy(config), DrainingPlanner(config)

    @property
    def consumption(self) -> BytesPerSec:
        """Total consumption rate na*C in bytes/s."""
        return self.config.consumption(self.active_layers)

    @property
    def slope(self) -> BytesPerSec2:
        """Smoothed AIMD slope S used by every buffering decision.

        The instantaneous estimate (``P/srtt^2`` for RAP) swings with
        queueing delay; using it raw makes filling targets and the drop
        rule disagree across an RTT spike (the paper's "estimate of the
        slope ... may be incorrect" critical situation). A slow EWMA
        keeps the two consistent.
        """
        if self.config.slope_override is not None:
            return self.config.slope_override
        if self._slope_avg is None:
            self._slope_avg = self.slope_fn()
        return self._slope_avg

    def _update_slope(self) -> None:
        if self.config.slope_override is not None:
            return
        sample = self.slope_fn()
        if self._slope_avg is None:
            self._slope_avg = sample
        else:
            self._slope_avg += 0.05 * (sample - self._slope_avg)

    def _emit(self, kind: str, **fields: object) -> None:
        if self.on_event is not None:
            self.on_event(self.now_fn(), kind, fields)

    def buffer_levels(self) -> list[Bytes]:
        """Per-layer buffered-byte estimates for the active layers."""
        return self.buffers.levels(self.active_layers)

    def is_filling(self) -> bool:
        """Filling phase: nothing drains before playout starts, and once
        it has, the phase is set by rate vs. consumption (Figure 3)."""
        if not self.playout_started:
            return True
        return self.rate_fn() >= self.consumption

    # -------------------------------------------------------- layer moves

    def _activate_layer(self, now: float) -> None:
        layer = self.active_layers
        self.buffers.activate(layer, now)
        # A new layer plays out "immediately" (section 2.1) -- in packet
        # terms, as soon as its first data reaches the receiver; see
        # :meth:`on_delivered`.
        self.active_layers += 1
        self._shortfall_debt[layer] = 0.0
        if self._frozen_rate is not None:
            self._refreeze_sequence()
        self._invalidate_plan()
        if layer > 0:  # the initial base-layer activation is not an "add"
            self.metrics.record_add(now, layer)
            self._emit("add", layer=layer, active=self.active_layers)

    def _base_protected_bytes(self) -> Bytes:
        """Base-layer bytes unusable for recovery (stall-margin + flight)."""
        if self.config.feedback == "ack":
            margin = self.config.base_floor_bytes
        else:
            margin = self.config.base_floor_bytes + self._inflight[0]
        return min(self.buffers.level(0), margin)

    def _drainable_total(self) -> Bytes:
        """Receiver buffering actually available to absorb a deficit."""
        return max(0.0, self.buffers.total(self.active_layers)
                   - self._base_protected_bytes())

    def _drop_top_layer(self, cause: DropCause) -> None:
        if self.active_layers <= 1:
            return  # the base layer is always sent
        now = self.now_fn()
        layer = self.active_layers - 1
        # Measure what the receiver actually holds: data still in flight
        # for the dropped layer arrives and is played out, so it is not
        # wasted buffering.
        safety = self.safety_levels()
        buf_total = sum(safety)
        buf_drop = safety[layer]
        required = formulas.draining_recovery_requirement(
            self.rate_fn(), self.consumption, self.slope)
        drainable = self._drainable_total()
        consumption = self.consumption  # na*C as the drop rule saw it
        self.metrics.record_drop(DropEvent(
            time=now, layer=layer, buf_drop=buf_drop, buf_total=buf_total,
            required=required, cause=cause,
            drainable=drainable))
        self.buffers.deactivate(layer)
        self.active_layers -= 1
        self._shortfall_debt[layer] = 0.0
        self._retransmit_debt[layer] = 0.0
        # Every drop is annotated with the section 2.2 inequality inputs
        # (R, na*C, S, sqrt(2*S*buf)) regardless of which critical
        # situation triggered it, so a decision log can always answer
        # "would the rule alone have fired here?".
        rate = self.rate_fn()
        self._emit("drop", layer=layer, cause=cause.value,
                   active=self.active_layers, buf_drop=buf_drop,
                   buf_total=buf_total, required=required,
                   rate=rate, consumption=consumption,
                   slope=self.slope, drainable=drainable,
                   threshold=formulas.drop_threshold(self.slope, drainable),
                   buffers=safety)
        if self._frozen_rate is not None:
            self._refreeze_sequence()
        self._invalidate_plan()

    def _refreeze_sequence(self) -> None:
        assert self._frozen_rate is not None
        self._sequence = StateSequence(
            self._frozen_rate, self.config.layer_rate, self.active_layers,
            self.slope, self.config.k_max)

    def _invalidate_plan(self) -> None:
        self._plan = None
        self._plan_until = -1.0
        self._quota = []

    # ------------------------------------------------------ transport API

    def pick_layer(self, seq: int) -> Optional[dict[str, int]]:
        """Assign the next packet to a layer (transmission opportunity).

        Returns the packet metadata ``{"layer": i, "active": na}``. A
        stored-video server always has data, so the only ``None`` case
        is receiver flow control (``max_buffer_seconds``): the chosen
        layer's buffer is at its cap and the slot is left idle.
        """
        now = self.now_fn()
        self._advance_clocks(now)
        layer = self._pick_retransmission()
        if layer is None:
            if self.is_filling():
                layer = self._pick_filling(now)
            else:
                layer = self._pick_draining(now)
        if self._flow_control_full(layer):
            # Receiver full: idle this slot. Return any draining quota
            # the pick already spent.
            if not self.is_filling() and layer < len(self._quota):
                self._quota[layer] += self.config.packet_size
            return None
        self.sent_bytes_per_layer[layer] += self.config.packet_size
        if self.config.feedback != "oracle":
            # Oracle mode models instant delivery: nothing is in flight.
            self._inflight[layer] += self.config.packet_size
        if self.config.feedback in ("send", "oracle"):
            # The server knows its own transmission history (the paper's
            # model): credit the receiver estimate right away.
            self.buffers.deliver(layer, self.config.packet_size)
            self._start_consumption_if_due(layer)
        return {"layer": layer, "active": self.active_layers}

    def on_delivered(self, layer: int, nbytes: ByteCount) -> None:
        """An ACK confirmed ``nbytes`` of ``layer`` reached the receiver."""
        if layer >= self.config.max_layers:
            return
        self._delivered_accum += nbytes
        self._inflight[layer] = max(0.0, self._inflight[layer] - nbytes)
        if self.config.feedback != "ack":
            return  # already credited at send time
        if not self.buffers.is_active(layer):
            return  # data for an already-dropped layer
        self.buffers.deliver(layer, nbytes)
        self._start_consumption_if_due(layer)

    def on_lost(self, layer: int, nbytes: ByteCount) -> None:
        """The congestion controller detected the loss of layer data."""
        if layer >= self.config.max_layers:
            return
        self._inflight[layer] = max(0.0, self._inflight[layer] - nbytes)
        # The drain plan assumed these bytes would reach the layer; owe
        # them back so a lossy period does not silently starve it.
        if layer < len(self._quota):
            self._quota[layer] += nbytes
        # Selective retransmission (§1.3): lost data from protected low
        # layers is re-sent with priority at the next opportunities.
        if (layer < self.config.retransmit_layers
                and self.buffers.is_active(layer)):
            self._retransmit_debt[layer] += nbytes
        if self.config.feedback != "send":
            return  # "ack" never credited it; "oracle" ignores losses
        self.buffers.withdraw(layer, nbytes)

    def _flow_control_full(self, layer: int) -> bool:
        """Receiver flow control: is this layer's buffer at its cap?"""
        cap_seconds = self.config.max_buffer_seconds
        if cap_seconds is None:
            return False
        return (self.buffers.level(layer)
                >= cap_seconds * self.config.layer_rate)

    def _pick_retransmission(self) -> Optional[int]:
        """Serve outstanding retransmission debt, lowest layer first."""
        for layer in range(min(self.config.retransmit_layers,
                               self.active_layers)):
            if self._retransmit_debt[layer] >= self.config.packet_size:
                self._retransmit_debt[layer] -= self.config.packet_size
                self.retransmitted_bytes += self.config.packet_size
                if self.on_event is not None:
                    self.on_event(self.now_fn(), "retransmit", {
                        "layer": layer,
                        "nbytes": self.config.packet_size,
                        "debt": self._retransmit_debt[layer],
                    })
                return layer
        return None

    def _start_consumption_if_due(self, layer: int) -> None:
        """Playout of a layer begins once it has a cushion of data.

        A freshly added layer first bootstraps ``floor_bytes`` of buffer
        (a fraction of a second); starting its playout from zero would
        make it underflow on the very next packet gap. The base layer at
        playout start already holds the whole startup-delay's worth.
        """
        if not self.playout_started or self.buffers.is_consuming(layer):
            return
        threshold = (0.0 if layer == 0
                     else float(self.config.packet_size))
        if self.buffers.delivered(layer) >= max(threshold,
                                                formulas.EPSILON):
            self.buffers.start_consuming(layer, self.now_fn())

    def on_backoff(self, new_rate: BytesPerSec) -> None:
        """The congestion controller halved its rate."""
        now = self.now_fn()
        self._advance_clocks(now)
        # Freeze the state path at the pre-backoff rate: the draining
        # phase walks the same path the filling phase climbed.
        self._frozen_rate = max(new_rate * 2.0, self.consumption)
        self._refreeze_sequence()
        self._emit("backoff", rate=new_rate)
        self._apply_drop_rule(new_rate)
        self._invalidate_plan()

    def tick(self) -> None:
        """Periodic housekeeping; call every ``config.drain_period``."""
        now = self.now_fn()
        self._advance_clocks(now)
        rate = self.rate_fn()
        # The "average available bandwidth" of section 3.1 is measured
        # from acknowledged deliveries: the instantaneous send rate
        # overshoots the path capacity between loss detections, which
        # would make the average-bandwidth add rule look better than it
        # is. (Without ACK feedback -- oracle mode -- fall back to the
        # send rate.)
        elapsed = now - self._last_average_update
        if elapsed > 0:
            if self.config.feedback == "oracle":
                sample = rate
            else:
                sample = self._delivered_accum / elapsed
            self._delivered_accum = 0.0
            self._last_average_update = now
            gain = self.config.average_bandwidth_gain
            self.average_rate += gain * (sample - self.average_rate)
        self._update_slope()

        if self.is_filling():
            added = self._maybe_add(rate)
            if self.on_event is not None:
                # One causal record per coarse-grain add evaluation (not
                # per packet: _pick_filling also probes _maybe_add, but
                # the tick cadence is the decision loop the paper
                # describes). kmax_margin is the worst layer's headroom
                # over the Figure-4 targets — negative says why the add
                # was refused, None means the layer ceiling.
                self.on_event(now, "add_eval", {
                    "rate": rate,
                    "average_rate": self.average_rate,
                    "consumption": self.consumption,
                    "active": self.active_layers,
                    "kmax_margin": self.add_drop.kmax_margin(
                        rate, self.active_layers, self.buffer_levels(),
                        self.slope, base_reserve=self._base_reserve()),
                    "buffers": self.buffer_levels(),
                    "added": added,
                })
        else:
            self._apply_drop_rule(rate)
            self._ensure_plan(now)

    # ----------------------------------------------------------- internals

    def _advance_clocks(self, now: Seconds) -> None:
        if not self.playout_started and now >= self.playout_start_time:
            self.playout_started = True
            self.metrics.startup_latency = self.config.startup_delay
            for layer in range(self.active_layers):
                self._start_consumption_if_due(layer)
            self._emit("playout_start")
        shortfalls = self.buffers.consume_until(now)
        for layer in range(self.active_layers):
            missing = shortfalls.get(layer, 0.0)
            if missing > 0:
                self._shortfall_debt[layer] += missing
            else:
                self._shortfall_debt[layer] = 0.0
        if 0 in shortfalls:
            self.metrics.base_underflow_bytes += shortfalls[0]
        # A persistently starving enhancement layer during a *draining*
        # phase is a critical situation: shed load from the top so the
        # survivors can be fed (section 2.2). During filling the rate
        # covers consumption, so starvation is transient packet jitter
        # that the maintenance floor absorbs. The debt threshold filters
        # shortfalls caused by packetization and feedback lag.
        debt_limit = (self.config.underflow_debt_packets
                      * self.config.packet_size)
        if (not self.is_filling()
                and any(self._shortfall_debt[layer] > debt_limit
                        for layer in range(1, self.active_layers))):
            self._drop_top_layer(DropCause.UNDERFLOW)

    def _apply_drop_rule(self, rate: BytesPerSec) -> None:
        while True:
            # Only drainable buffering counts: the base layer's
            # stall-protection margin cannot absorb the deficit.
            total = self._drainable_total()
            keep = self.add_drop.layers_after_drop_rule(
                rate, total, self.active_layers, self.slope)
            if self.on_event is not None:
                self.on_event(self.now_fn(), "drop_rule", {
                    "rate": rate,
                    "consumption": self.consumption,
                    "slope": self.slope,
                    "drainable": total,
                    "threshold": formulas.drop_threshold(self.slope, total),
                    "active": self.active_layers,
                    "keep": keep,
                    "buffers": self.safety_levels(),
                })
            if keep >= self.active_layers:
                return
            self._drop_top_layer(DropCause.RULE)
            if self.active_layers <= 1:
                return

    def _base_reserve(self) -> Bytes:
        """Stall-protection bytes the base must hold beyond its targets."""
        if self.config.feedback == "ack":
            return self.config.base_floor_bytes
        return self.config.base_floor_bytes + self._inflight[0]

    def _maybe_add(self, rate: BytesPerSec) -> bool:
        if not self.add_drop.can_add(
            rate, self.average_rate, self.active_layers,
            self.buffer_levels(), self.slope,
            base_reserve=self._base_reserve(),
        ):
            return False
        self._activate_layer(self.now_fn())
        return True

    def safety_levels(self) -> list[Bytes]:
        """Lower bounds on the receiver's true per-layer buffering.

        With send-time crediting, the estimate leads the receiver by the
        bytes still in flight; subtracting them gives what has certainly
        arrived. (In "ack" mode the estimate itself is the lower bound.)
        """
        levels = self.buffer_levels()
        if self.config.feedback == "ack":
            return levels
        return [max(0.0, levels[i] - self._inflight[i])
                for i in range(self.active_layers)]

    def _pick_filling(self, now: Seconds) -> int:
        rate = self.rate_fn()
        # Once playback runs, every active layer needs the maintenance
        # floor: consuming layers so they keep playing, and freshly added
        # (not yet consuming) layers as their bootstrap cushion.
        needs_floor = [self.playout_started] * self.active_layers
        decision = self.filling_policy.choose(
            rate, self.buffer_levels(), self.active_layers, self.slope,
            needs_floor, safety_levels=self.safety_levels())
        if decision.layer is not None:
            return decision.layer
        # Every current-layer target is satisfied: time to add a layer
        # (the first packet of the new layer goes out immediately) ...
        if self._maybe_add(rate):
            return self.active_layers - 1
        # ... or, when adding is not yet possible (the base must still
        # build its stall-protection reserve on top of the targets, or
        # the codec is at its layer ceiling), park excess in the base
        # layer, where buffering is most efficient (section 2.3).
        return 0

    def _ensure_plan(self, now: Seconds) -> None:
        if self._plan is not None and now < self._plan_until:
            return
        if self._sequence is None or self._frozen_rate is None:
            # Draining without a recorded backoff (e.g. a slow start below
            # consumption): freeze a path at the current consumption rate.
            self._frozen_rate = max(self.rate_fn(), self.consumption)
            self._refreeze_sequence()
        elif self._sequence.active_layers != self.active_layers:
            self._refreeze_sequence()
        sequence = self._sequence
        assert sequence is not None  # _refreeze_sequence just set it
        period = self.config.drain_period
        base_protection = (self._inflight[0]
                           if self.config.feedback != "ack" else 0.0)
        plan = self.planner.plan(
            self.rate_fn(), self.buffer_levels(), self.active_layers,
            period, sequence, base_protection=base_protection)
        if plan.shortfall > formulas.EPSILON:
            # Regressing the whole path cannot cover this period's
            # deficit. A single period's sliver can be jitter; a
            # persistent shortfall is the critical situation of
            # section 2.2 and sheds the top layer.
            self._plan_shortfall_debt += plan.shortfall
        else:
            self._plan_shortfall_debt = 0.0
        debt_limit = (self.config.underflow_debt_packets
                      * self.config.packet_size)
        if (self._plan_shortfall_debt > debt_limit
                and self.active_layers > 1):
            self._drop_top_layer(DropCause.SHORTFALL)
            self._plan_shortfall_debt = 0.0
            sequence = self._sequence
            assert sequence is not None  # refrozen by _drop_top_layer
            plan = self.planner.plan(
                self.rate_fn(), self.buffer_levels(), self.active_layers,
                period, sequence, base_protection=base_protection)
        self._plan = plan
        self._plan_until = now + period
        self._quota = list(plan.quotas)

    def _pick_draining(self, now: Seconds) -> int:
        self._ensure_plan(now)
        # Starvation override for the *base* layer only: it must never run
        # dry (stall), whatever the quotas say. Enhancement layers are
        # allowed to drain to empty during a draining phase -- that is the
        # maximally efficient pattern, and an empty top layer is the one
        # that gets dropped (with nothing wasted) when the phase turns
        # critical.
        safety = self.safety_levels()
        floor = self.config.base_floor_bytes
        if self.buffers.is_consuming(0) and safety[0] < floor:
            layer = 0
        elif max(self._quota) <= 0:
            # The controller is sending faster than the plan assumed; the
            # surplus is filling-phase bandwidth.
            return self._pick_filling(now)
        else:
            # Spend quotas emptiest-layer-first (ties: largest remaining
            # quota). If the controller under-delivers this period, the
            # unspent quota then belongs to layers that still hold buffer
            # -- they absorb the shortage instead of a dry top layer.
            candidates = [i for i in range(self.active_layers)
                          if self._quota[i] > 0]
            layer = min(candidates,
                        key=lambda i: (safety[i], -self._quota[i]))
        self._quota[layer] -= self.config.packet_size
        return layer
