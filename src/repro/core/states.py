"""Optimal buffer states and the maximally efficient filling path.

Section 4 of the paper organizes buffering targets as a sequence of
*states* ``(scenario, k)`` -- "enough optimally-distributed buffering to
survive k backoffs under that scenario" -- ordered by increasing total
requirement (Figure 9). Because that raw ordering sometimes asks a layer
for *less* buffer than an earlier state did (which would mean draining
during a filling phase), the per-layer targets along the path are made
monotone (Figure 10): a later state's effective target for a layer is at
least every earlier state's target. Buffering kept in a lower layer than
strictly necessary is always usable for recovery (lower-layer buffering is
*more* efficient, section 2.3), so the monotone path still protects every
state it has passed.

:class:`StateSequence` is used two ways:

- analytically, to regenerate Figures 8, 9 and 10;
- operationally, by the draining planner (section 4.2), which walks the
  same path backwards.

The per-packet filling algorithm (:mod:`repro.core.filling`) does not read
a precomputed sequence -- following the paper's pseudocode it recomputes
its working state on the fly -- but the two agree (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core import formulas
from repro.core.formulas import SCENARIO_ONE, SCENARIO_TWO
from repro.core.units import Bytes, BytesPerSec, BytesPerSec2


@dataclass(frozen=True)
class BufferState:
    """One optimal buffer state.

    Attributes:
        scenario: 1 or 2.
        k: number of backoffs survived.
        total: total buffering the raw state requires (bytes).
        shares: raw optimal per-layer allocation (base first, bytes).
        effective_shares: per-layer targets after the monotonicity
            constraint of Figure 10 (only set when the state is part of a
            :class:`StateSequence`).
    """

    scenario: int
    k: int
    total: Bytes
    shares: tuple[Bytes, ...]
    effective_shares: tuple[Bytes, ...] = ()

    @property
    def effective_total(self) -> Bytes:
        return formulas.share_sum(self.effective_shares or self.shares)

    def label(self) -> str:
        return f"S{self.scenario}k{self.k}"


class StateSequence:
    """The ordered, monotone sequence of buffer states for one situation.

    Args:
        rate: transmission rate R the scenarios back off from (bytes/s).
        layer_rate: per-layer consumption C (bytes/s).
        active_layers: na.
        slope: AIMD linear-increase slope S (bytes/s^2).
        k_max: largest number of backoffs to provision for.

    The sequence contains, for each ``k`` in ``1..k_max``, the scenario-1
    and scenario-2 states (deduplicated when they coincide, i.e. when
    ``k <= k1``), sorted by raw total requirement with scenario 1 first on
    ties (matching Figure 9). ``effective_shares`` are the running
    element-wise maxima, so they are monotone along the sequence.
    """

    def __init__(self, rate: BytesPerSec, layer_rate: BytesPerSec,
                 active_layers: int, slope: BytesPerSec2,
                 k_max: int) -> None:
        if k_max < 1:
            raise ValueError("k_max must be at least 1")
        if active_layers < 1:
            raise ValueError("need at least one active layer")
        self.rate = rate
        self.layer_rate = layer_rate
        self.active_layers = active_layers
        self.slope = slope
        self.k_max = k_max
        self.states: list[BufferState] = self._build()

    def _raw_states(self) -> list[BufferState]:
        consumption = self.active_layers * self.layer_rate
        k1 = formulas.k1_backoffs(self.rate, consumption)
        raw: list[BufferState] = []
        for k in range(1, self.k_max + 1):
            for scenario in (SCENARIO_ONE, SCENARIO_TWO):
                if scenario == SCENARIO_TWO and k <= k1:
                    continue  # identical to scenario 1 at this k
                total = formulas.scenario_total(
                    self.rate, consumption, self.slope, k, scenario)
                shares = formulas.scenario_shares(
                    self.rate, self.layer_rate, self.active_layers,
                    self.slope, k, scenario)
                raw.append(BufferState(scenario, k, total, shares))
        return raw

    def _build(self) -> list[BufferState]:
        raw = self._raw_states()
        # Figure 9 ordering: increasing total requirement; scenario 1 wins
        # ties; then smaller k first. sorted() is stable so the (k,
        # scenario) generation order handles residual ties.
        raw.sort(key=lambda s: (s.total, s.scenario, s.k))
        running = [0.0] * self.active_layers
        out: list[BufferState] = []
        for state in raw:
            running = [max(a, b) for a, b in zip(running, state.shares)]
            out.append(BufferState(state.scenario, state.k, state.total,
                                   state.shares, tuple(running)))
        return out

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[BufferState]:
        return iter(self.states)

    def __getitem__(self, index: int) -> BufferState:
        return self.states[index]

    @property
    def final_targets(self) -> tuple[Bytes, ...]:
        """Per-layer targets whose satisfaction allows adding a layer."""
        if not self.states:
            return tuple([0.0] * self.active_layers)
        return self.states[-1].effective_shares

    def position(self, buffers: Sequence[Bytes]) -> int:
        """Index of the last state fully satisfied by ``buffers``.

        A state is satisfied when every layer holds at least its effective
        share. Returns -1 when not even the first state is satisfied.
        Because effective shares are monotone, satisfaction is a prefix
        property: this is the filling progress pointer.
        """
        pos = -1
        for i, state in enumerate(self.states):
            if all(b + formulas.EPSILON >= s
                   for b, s in zip(buffers, state.effective_shares)):
                pos = i
            else:
                break
        return pos

    def survivable_position(self, total_buffer: Bytes) -> int:
        """Index of the largest state whose *total* fits in ``total_buffer``.

        The draining planner uses totals (not per-layer shares) to decide
        how far back along the path it must regress; -1 when even the
        first state's total exceeds the buffering.
        """
        pos = -1
        for i, state in enumerate(self.states):
            if state.total <= total_buffer + formulas.EPSILON:
                pos = i
            else:
                break
        return pos
