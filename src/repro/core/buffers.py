"""Per-layer receiver-buffer bookkeeping.

The same accounting is used twice: by the actual receiver (playout) and by
the server-side estimator that drives adaptation decisions (the server
learns deliveries from ACKs, one RTT late, and computes consumption from
the playout clock it agreed on with the client at session start).

Buffers are fluid byte counters, matching the paper's model: ``level =
delivered - consumed``, consumption is a constant ``C`` per active layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.units import Bytes, BytesPerSec, Seconds


@dataclass
class LayerAccount:
    """Accounting for one layer."""

    delivered: Bytes = 0.0
    consumed: Bytes = 0.0
    active: bool = False
    consuming_since: Optional[Seconds] = None
    clock: Seconds = 0.0  # consumption clock position (simulation time)

    @property
    def level(self) -> Bytes:
        return self.delivered - self.consumed


class LayerBufferSet:
    """A set of per-layer buffers with independent consumption clocks.

    ``consume_until(t)`` advances every *consuming* layer's clock to ``t``,
    draining ``C * dt`` from each and reporting shortfalls (bytes a layer
    wanted to play but did not have). A layer can be active (being sent and
    buffered) before its consumption starts -- that is the startup window.
    """

    def __init__(self, layer_rate: BytesPerSec, max_layers: int) -> None:
        if layer_rate <= 0:
            raise ValueError("layer_rate must be positive")
        if max_layers < 1:
            raise ValueError("max_layers must be at least 1")
        self.layer_rate = layer_rate
        self.max_layers = max_layers
        self._accounts = [LayerAccount() for _ in range(max_layers)]

    # ---------------------------------------------------------- lifecycle

    def activate(self, layer: int, now: Seconds) -> None:
        """Start buffering (and clocking) layer ``layer`` at time ``now``."""
        acct = self._accounts[layer]
        if acct.active:
            raise ValueError(f"layer {layer} already active")
        acct.active = True
        acct.clock = now

    def start_consuming(self, layer: int, now: Seconds) -> None:
        """Begin draining ``layer`` at rate C from time ``now``."""
        acct = self._accounts[layer]
        if not acct.active:
            raise ValueError(f"layer {layer} not active")
        acct.consuming_since = now
        acct.clock = now

    def deactivate(self, layer: int) -> Bytes:
        """Stop layer ``layer``; returns the buffered bytes discarded."""
        acct = self._accounts[layer]
        if not acct.active:
            raise ValueError(f"layer {layer} not active")
        remaining = max(0.0, acct.level)
        self._accounts[layer] = LayerAccount()
        return remaining

    def is_active(self, layer: int) -> bool:
        return self._accounts[layer].active

    def is_consuming(self, layer: int) -> bool:
        return self._accounts[layer].consuming_since is not None

    # --------------------------------------------------------------- data

    def deliver(self, layer: int, nbytes: Bytes) -> None:
        """Record ``nbytes`` of layer data arriving at the receiver."""
        if nbytes < 0:
            raise ValueError("cannot deliver negative bytes")
        acct = self._accounts[layer]
        if not acct.active:
            return  # data for a dropped layer still plays but isn't tracked
        acct.delivered += nbytes

    def withdraw(self, layer: int, nbytes: Bytes) -> None:
        """Un-credit ``nbytes`` that turned out to be lost in transit.

        Used by send-time-crediting estimators when the congestion
        controller detects a loss. The account may momentarily go
        negative; :meth:`level` clamps reads at zero.
        """
        if nbytes < 0:
            raise ValueError("cannot withdraw negative bytes")
        acct = self._accounts[layer]
        if not acct.active:
            return
        acct.delivered -= nbytes

    def consume_until(self, now: Seconds) -> dict[int, Bytes]:
        """Advance all consumption clocks to ``now``.

        Returns ``{layer: shortfall_bytes}`` for layers that wanted more
        data than they had (underflow). Clocks advance even on shortfall;
        stall semantics (pausing) are the playout policy's job and are
        implemented by it calling :meth:`pause` instead.
        """
        shortfalls: dict[int, float] = {}
        for layer, acct in enumerate(self._accounts):
            if not acct.active or acct.consuming_since is None:
                continue
            dt = now - acct.clock
            if dt <= 0:
                continue
            want = self.layer_rate * dt
            take = min(want, max(0.0, acct.level))
            acct.consumed += take
            acct.clock = now
            if want - take > 1e-9:
                shortfalls[layer] = want - take
        return shortfalls

    def pause(self, now: Seconds) -> None:
        """Advance all clocks to ``now`` without consuming (playback stall)."""
        for acct in self._accounts:
            if acct.active and acct.consuming_since is not None:
                acct.clock = now

    # ------------------------------------------------------------ queries

    def level(self, layer: int) -> Bytes:
        """Buffered bytes of ``layer`` (clamped at zero)."""
        return max(0.0, self._accounts[layer].level)

    def levels(self, active_layers: int) -> list[Bytes]:
        """Base-first buffer levels of the first ``active_layers`` layers."""
        return [self.level(i) for i in range(active_layers)]

    def total(self, active_layers: Optional[int] = None) -> Bytes:
        """Sum of buffered bytes over the first ``active_layers`` layers."""
        n = self.max_layers if active_layers is None else active_layers
        return sum(self.level(i) for i in range(n))

    def delivered(self, layer: int) -> Bytes:
        """Cumulative bytes credited to ``layer``."""
        return self._accounts[layer].delivered

    def consumed(self, layer: int) -> Bytes:
        """Cumulative bytes the decoder has consumed from ``layer``."""
        return self._accounts[layer].consumed
