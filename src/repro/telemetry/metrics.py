"""A small metrics registry: counters, gauges, histograms with labels.

Prometheus-shaped (families → labeled children → samples) but pure
stdlib and deterministic: families render sorted by name, children by
label value, and numbers format identically run to run, so two runs of
the same seed export byte-identical text.

Hot-path discipline mirrors :meth:`~repro.telemetry.bus.TelemetryBus.
event_hook` (enforced by lint rule RL007): producers never poke the
registry per packet. They bind a hook once —

    self._fwd_hook = registry.counter_hook("link_tx_bytes", link=name)

— and the hook is ``None`` when metrics are disabled, so the guarded
call site costs one attribute load and a ``None`` check. When enabled,
the hook *is* the child's bound ``inc``/``set``/``observe`` method: no
dict lookups, no label hashing, no allocation per sample.

Cheap derived values (byte totals a link already counts, the engine's
event counter) don't need per-event hooks at all: register a
*collector* — a callable run once per export that copies live state
into gauges.
"""

from __future__ import annotations

import bisect
from typing import Callable, Optional, Sequence, Union

LabelValue = Union[str, int, float]
Labels = tuple[tuple[str, str], ...]

#: Default histogram buckets: log-spaced seconds, good for handler
#: timings from sub-microsecond to 100 ms.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
)


def _format_value(value: float) -> str:
    """Deterministic sample rendering: ints stay integral."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_suffix(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go anywhere."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "total",
                 "count")

    def __init__(self, name: str, labels: Labels,
                 buckets: Sequence[float]) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: Per-bound counts plus the +Inf overflow slot at the end.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Counts at or below each bound, then the +Inf total."""
        out: list[int] = []
        running = 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


Instrument = Union[Counter, Gauge, Histogram]
SampleHook = Callable[[float], None]
Collector = Callable[["MetricsRegistry"], None]

_KINDS = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class _Family:
    """One metric name: its kind, help text and labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[tuple[float, ...]]) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict[Labels, Instrument] = {}


class MetricsRegistry:
    """Registered metric families plus export-time collectors."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, _Family] = {}
        self._collectors: list[Collector] = []

    # -------------------------------------------------------- registration

    def _child(self, cls: type, name: str, help_text: str,
               labels: dict[str, LabelValue],
               buckets: Optional[Sequence[float]] = None) -> Instrument:
        kind = _KINDS[cls]
        family = self._families.get(name)
        if family is None:
            bounds = tuple(sorted(buckets)) if buckets is not None else None
            family = _Family(name, kind, help_text, bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"cannot re-register as a {kind}"
            )
        key: Labels = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = family.children.get(key)
        if child is None:
            if cls is Histogram:
                assert family.buckets is not None
                child = Histogram(name, key, family.buckets)
            elif cls is Counter:
                child = Counter(name, key)
            else:
                child = Gauge(name, key)
            family.children[key] = child
        return child

    def counter(self, name: str, help: str = "",
                **labels: LabelValue) -> Counter:
        child = self._child(Counter, name, help, labels)
        assert isinstance(child, Counter)
        return child

    def gauge(self, name: str, help: str = "",
              **labels: LabelValue) -> Gauge:
        child = self._child(Gauge, name, help, labels)
        assert isinstance(child, Gauge)
        return child

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: LabelValue) -> Histogram:
        child = self._child(Histogram, name, help, labels, buckets)
        assert isinstance(child, Histogram)
        return child

    # ------------------------------------------------------ hot-path hooks

    def counter_hook(self, name: str, help: str = "",
                     **labels: LabelValue) -> Optional[SampleHook]:
        """Bound ``inc(amount)`` for the labeled counter, or ``None``.

        ``None`` when the registry is disabled — producers must guard
        (RL007) so the disabled path never touches the registry.
        """
        if not self.enabled:
            return None
        return self.counter(name, help, **labels).inc

    def gauge_hook(self, name: str, help: str = "",
                   **labels: LabelValue) -> Optional[SampleHook]:
        """Bound ``set(value)`` for the labeled gauge, or ``None``."""
        if not self.enabled:
            return None
        return self.gauge(name, help, **labels).set

    def histogram_hook(self, name: str, help: str = "",
                       buckets: Sequence[float] = DEFAULT_BUCKETS,
                       **labels: LabelValue) -> Optional[SampleHook]:
        """Bound ``observe(value)`` for the histogram, or ``None``."""
        if not self.enabled:
            return None
        return self.histogram(name, help, buckets, **labels).observe

    # ----------------------------------------------------------- collection

    def register_collector(self, collector: Collector) -> None:
        """Run ``collector(self)`` before every export.

        Collectors copy live component state (link byte counters, the
        engine's event count) into gauges, so cheap derived metrics need
        no hot-path hooks at all. Ignored when disabled.
        """
        if self.enabled:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Refresh collector-fed metrics (no-op when disabled)."""
        for collector in self._collectors:
            collector(self)

    # --------------------------------------------------------------- export

    def instruments(self) -> list[Instrument]:
        """Every child, family-name then label order (deterministic)."""
        out: list[Instrument] = []
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.children):
                out.append(family.children[key])
        return out

    def snapshot(self) -> dict[str, object]:
        """A stable nested dict of every sample (manifest attachment)."""
        self.collect()
        families: dict[str, object] = {}
        for name in sorted(self._families):
            family = self._families[name]
            children = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: dict[str, object] = {"labels": dict(key)}
                if isinstance(child, Histogram):
                    entry["count"] = child.count
                    entry["sum"] = round(child.total, 9)
                    entry["buckets"] = {
                        repr(bound): n for bound, n in
                        zip(child.bounds, child.cumulative())
                    }
                else:
                    entry["value"] = round(child.value, 9)
                children.append(entry)
            families[name] = {"type": family.kind, "samples": children}
        return families

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        self.collect()
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if isinstance(child, Histogram):
                    cumulative = child.cumulative()
                    for bound, n in zip(child.bounds, cumulative):
                        bucket_labels = key + (("le", repr(bound)),)
                        lines.append(
                            f"{name}_bucket{_label_suffix(bucket_labels)} "
                            f"{n}"
                        )
                    inf_labels = key + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_label_suffix(inf_labels)} "
                        f"{cumulative[-1]}"
                    )
                    lines.append(
                        f"{name}_sum{_label_suffix(key)} "
                        f"{_format_value(child.total)}"
                    )
                    lines.append(f"{name}_count{_label_suffix(key)} "
                                 f"{child.count}")
                else:
                    lines.append(
                        f"{name}{_label_suffix(key)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""
