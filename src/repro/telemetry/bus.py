"""The telemetry bus: probe subscription, decimation, on/off switch."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.trace import PeriodicSampler, TimeSeries, Tracer
from repro.telemetry.recorder import FlightRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.probes import Probe


class TelemetryBus:
    """Routes probe samples and discrete events into a :class:`Tracer`.

    Args:
        sim: the event engine (drives the periodic samplers).
        tracer: series sink; a fresh one is created if omitted.
        enabled: when False, no samplers are scheduled, records are
            dropped, and :meth:`event_hook` returns ``None`` — the
            simulation runs with near-zero instrumentation cost.
        decimate: sample every Nth probe period (N >= 1). Stretches each
            probe's effective period by the factor; probes see the
            effective period as their ``dt`` so rate derivations stay
            correct.
        recorder: optional shared :class:`FlightRecorder`. When it is
            enabled, :meth:`event_hook` fans every discrete event out to
            it as a decision record tagged ``source`` — even if the bus
            itself is disabled, so a run can keep the causal log while
            skipping time-series cost.
        source: the label decision records from this bus carry
            (typically the flow/session name).
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
        enabled: bool = True,
        decimate: int = 1,
        recorder: Optional[FlightRecorder] = None,
        source: str = "session",
    ) -> None:
        if decimate < 1:
            raise ValueError(f"decimate must be >= 1, got {decimate}")
        self.sim = sim
        self.enabled = enabled
        self.decimate = decimate
        self.tracer = tracer if tracer is not None else Tracer()
        self.recorder = recorder
        self.source = source
        self.probes: list["Probe"] = []
        self._samplers: list[PeriodicSampler] = []

    # ------------------------------------------------------- subscriptions

    def subscribe(
        self, probe: "Probe", start: float = 0.0
    ) -> Optional[PeriodicSampler]:
        """Register ``probe`` and start sampling it (unless disabled).

        Returns the sampler driving the probe, or ``None`` when the bus
        is disabled (the probe stays registered but is never sampled).
        """
        self.probes.append(probe)
        probe.bind(self)
        if not self.enabled:
            return None
        sampler = PeriodicSampler(
            self.sim, probe.period * self.decimate, probe.sample,
            start=start)
        self._samplers.append(sampler)
        return sampler

    # ------------------------------------------------------------- sinks

    def record(self, name: str, time: float, value: float) -> None:
        """Append a sample to channel ``name`` (dropped when disabled)."""
        if self.enabled:
            self.tracer.record(name, time, value)

    def log_event(self, time: float, kind: str, **fields: object) -> None:
        """Record a discrete event (dropped when disabled)."""
        if self.enabled:
            self.tracer.log_event(time, kind, **fields)

    def event_hook(
        self,
    ) -> Optional[Callable[[float, str, dict[str, object]], None]]:
        """An ``on_event(t, kind, fields)`` callable, or None if disabled.

        Producers treat ``None`` as "don't even build the event", which
        keeps the disabled path allocation-free. With an enabled flight
        recorder attached, events fan out to it as decision records;
        the recorder keeps working even when the bus itself is disabled
        (causal log without time-series cost). ``None`` only when both
        sinks are off.
        """
        recorder = self.recorder
        record = (
            recorder.hook(self.source) if recorder is not None else None
        )
        if not self.enabled:
            return record
        tracer = self.tracer
        if record is None:
            return lambda t, kind, f: tracer.log_event(t, kind, **f)

        def _fan_out(t: float, kind: str, f: dict[str, object]) -> None:
            tracer.log_event(t, kind, **f)
            record(t, kind, f)

        return _fan_out

    # ------------------------------------------------------------ queries

    def series(self, name: str) -> TimeSeries:
        """The recorded channel ``name`` (raises KeyError if absent)."""
        return self.tracer.get(name)

    def stop(self) -> None:
        """Stop every sampler this bus scheduled."""
        for sampler in self._samplers:
            sampler.stop()
