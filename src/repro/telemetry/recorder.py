"""The flight recorder: a bounded, seed-stable structured decision log.

Time-series telemetry (the :class:`~repro.telemetry.bus.TelemetryBus`)
answers *what* happened — rates, buffer levels, layer counts. The flight
recorder answers *why*: every coarse-grain add/drop decision, every
§2.2 drop-rule evaluation, every transport backoff lands here as a
:class:`DecisionRecord` carrying the exact inputs the rule saw (``R``,
``na*C``, ``sqrt(2*S*buf)``, per-layer buffer levels, the ``K_max``
margin) and the outcome.

Design constraints, in order:

- **Seed-stable.** Records contain only simulation-derived values
  (simulation time, byte counts, rates) plus a monotonic sequence
  number; two runs of the same seed produce bit-for-bit identical JSONL
  whether they execute serially or in a worker process.
- **Bounded.** Records live in a ring buffer (``capacity`` entries);
  old records are evicted FIFO and counted, never silently lost.
- **Free when off.** A disabled recorder hands producers ``None`` from
  :meth:`FlightRecorder.hook` — the same RL007 discipline as
  ``TelemetryBus.event_hook`` — so the hot path never builds a record
  that nobody will read, and :meth:`write_jsonl` refuses to create a
  file for a run that recorded nothing.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from collections import deque
from typing import Callable, Iterator, Mapping, Optional, Union

#: A JSON-serializable decision payload value. Producers hand fields
#: over as ``Mapping[str, object]`` (matching the adapter's event-hook
#: signature); anything json.dumps rejects fails loudly at export.
FieldValue = Union[str, int, float, bool, None, list["FieldValue"]]

#: ``(time, kind, fields)`` — what a producer hands the recorder. The
#: producer's identity (``source``) is bound into the hook itself.
RecorderHook = Callable[[float, str, Mapping[str, object]], None]

_JSON_SEPARATORS = (",", ":")


class DecisionRecord:
    """One causal event: who decided what, when, and from which inputs."""

    __slots__ = ("seq", "time", "source", "kind", "fields")

    def __init__(
        self,
        seq: int,
        time: float,
        source: str,
        kind: str,
        fields: Mapping[str, object],
    ) -> None:
        self.seq = seq
        self.time = time
        self.source = source
        self.kind = kind
        self.fields = dict(fields)

    def to_json(self) -> str:
        """One deterministic JSON line (sorted keys, compact separators)."""
        return json.dumps(
            {
                "seq": self.seq,
                "t": round(self.time, 9),
                "src": self.source,
                "kind": self.kind,
                "fields": self.fields,
            },
            sort_keys=True,
            separators=_JSON_SEPARATORS,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecisionRecord(seq={self.seq}, t={self.time:.6f}, "
            f"src={self.source!r}, kind={self.kind!r})"
        )


class FlightRecorder:
    """Bounded in-memory decision log with deterministic JSONL export."""

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._records: deque[DecisionRecord] = deque(maxlen=capacity)
        self._seq = 0

    # ---------------------------------------------------------- recording

    def hook(self, source: str) -> Optional[RecorderHook]:
        """A ``(time, kind, fields)`` recording callable for ``source``.

        Returns ``None`` when the recorder is disabled; producers must
        treat that as "don't even build the record" (RL007).
        """
        if not self.enabled:
            return None

        def _record(
            time: float, kind: str, fields: Mapping[str, object]
        ) -> None:
            self.record(time, source, kind, fields)

        return _record

    def record(
        self,
        time: float,
        source: str,
        kind: str,
        fields: Mapping[str, object],
    ) -> None:
        """Append one decision record (dropped when disabled)."""
        if not self.enabled:
            return
        self._records.append(
            DecisionRecord(self._seq, time, source, kind, fields)
        )
        self._seq += 1

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DecisionRecord]:
        return iter(self._records)

    @property
    def total_recorded(self) -> int:
        """Records ever accepted (retained + evicted)."""
        return self._seq

    @property
    def evicted(self) -> int:
        """Records pushed out of the ring buffer by newer ones."""
        return self._seq - len(self._records)

    def records_of(self, kind: str, source: Optional[str] = None
                   ) -> list[DecisionRecord]:
        """Retained records of ``kind`` (optionally from one source)."""
        return [
            r for r in self._records
            if r.kind == kind and (source is None or r.source == source)
        ]

    # ------------------------------------------------------------- export

    def to_jsonl(self) -> str:
        """The retained records as JSONL (one record per line)."""
        if not self._records:
            return ""
        return "\n".join(r.to_json() for r in self._records) + "\n"

    def digest(self) -> str:
        """sha256 of :meth:`to_jsonl` — the run's causal fingerprint."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()

    def write_jsonl(self, path: Union[str, pathlib.Path]
                    ) -> Optional[pathlib.Path]:
        """Write the JSONL log to ``path``.

        A disabled recorder writes nothing and returns ``None`` — runs
        with telemetry off must not scatter empty artifacts.
        """
        if not self.enabled:
            return None
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_jsonl())
        return target

    def summary(self) -> dict[str, object]:
        """Manifest-ready digest block (counts, eviction, sha256)."""
        kinds: dict[str, int] = {}
        for record in self._records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "recorded": self.total_recorded,
            "retained": len(self._records),
            "evicted": self.evicted,
            "kinds": dict(sorted(kinds.items())),
            "digest": self.digest(),
        }
