"""Decoupled telemetry: a subscription bus between probes and traces.

Instrumentation used to be welded into :class:`~repro.server.session.
StreamingSession` — every run paid full per-layer sampling cost whether
or not anyone looked at the series. This package splits that into:

- :class:`TelemetryBus` — owns the :class:`~repro.sim.trace.Tracer`,
  schedules subscribed probes, and can decimate (sample every Nth
  period) or disable sampling entirely. A disabled bus schedules no
  samplers and drops all records, so headless/batch runs pay near-zero
  tracing cost.
- probes — registered channels. :class:`SessionProbe` samples every
  series the paper's figures plot (rates, layer counts, per-layer
  buffers and drain rates); :class:`QueueOccupancyProbe` and
  :class:`TransportRateProbe` watch shared-path state that no single
  session owns.

Adapter events (add/drop/backoff) flow through :meth:`TelemetryBus.
event_hook`, which is ``None`` when the bus is disabled so producers
skip the call entirely.

On top of the bus sit three observability layers (see
``docs/OBSERVABILITY.md``):

- :class:`FlightRecorder` — a bounded, seed-stable causal log of
  *decisions* (drop-rule evaluations with their §2.2 inputs, layer
  adds/drops, transport backoffs) exported as deterministic JSONL.
- :class:`MetricsRegistry` — counters/gauges/histograms with labels,
  RL007 hook discipline (``None`` when disabled), Prometheus text
  export; :func:`instrument_engine` feeds it per-handler timings and
  heap depth from the event loop.
- exporters — :func:`chrome_trace` / :func:`export_chrome_trace`
  (Perfetto-loadable trace-event JSON) and :func:`export_prometheus`.
- :class:`SpanRecorder` / :class:`TraceContext` — distributed tracing:
  deterministic span trees stitched across the sim server, the asyncio
  service and its clients (trace context rides the HELLO/WELCOME wire
  options), exported through the Chrome-trace path.
- :class:`QuantileDigest` — the deterministic, mergeable streaming
  quantile sketch behind every percentile the reports quote.
"""

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.digest import QuantileDigest, digest_of, percentile
from repro.telemetry.engine import EngineInstrumentation, instrument_engine
from repro.telemetry.exporters import (
    chrome_trace,
    export_chrome_trace,
    export_prometheus,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.probes import (
    Probe,
    QueueOccupancyProbe,
    SessionProbe,
    TransportRateProbe,
)
from repro.telemetry.recorder import DecisionRecord, FlightRecorder
from repro.telemetry.tracing import (
    Span,
    SpanRecorder,
    TraceContext,
    merge_spans,
)

__all__ = [
    "TelemetryBus",
    "Probe",
    "SessionProbe",
    "QueueOccupancyProbe",
    "TransportRateProbe",
    "DecisionRecord",
    "FlightRecorder",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EngineInstrumentation",
    "instrument_engine",
    "chrome_trace",
    "export_chrome_trace",
    "export_prometheus",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "merge_spans",
    "QuantileDigest",
    "digest_of",
    "percentile",
]
