"""Decoupled telemetry: a subscription bus between probes and traces.

Instrumentation used to be welded into :class:`~repro.server.session.
StreamingSession` — every run paid full per-layer sampling cost whether
or not anyone looked at the series. This package splits that into:

- :class:`TelemetryBus` — owns the :class:`~repro.sim.trace.Tracer`,
  schedules subscribed probes, and can decimate (sample every Nth
  period) or disable sampling entirely. A disabled bus schedules no
  samplers and drops all records, so headless/batch runs pay near-zero
  tracing cost.
- probes — registered channels. :class:`SessionProbe` samples every
  series the paper's figures plot (rates, layer counts, per-layer
  buffers and drain rates); :class:`QueueOccupancyProbe` and
  :class:`TransportRateProbe` watch shared-path state that no single
  session owns.

Adapter events (add/drop/backoff) flow through :meth:`TelemetryBus.
event_hook`, which is ``None`` when the bus is disabled so producers
skip the call entirely.
"""

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.probes import (
    Probe,
    QueueOccupancyProbe,
    SessionProbe,
    TransportRateProbe,
)

__all__ = [
    "TelemetryBus",
    "Probe",
    "SessionProbe",
    "QueueOccupancyProbe",
    "TransportRateProbe",
]
