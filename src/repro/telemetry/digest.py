"""A deterministic, mergeable streaming quantile digest.

Fleet-scale percentile reporting (RTT, stall time, per-session QoE over
hundreds of sessions) should not require keeping every raw sample: the
:class:`QuantileDigest` folds samples into a *fixed* geometric bucket
grid — the same grid in every process, independent of the data — so two
digests built on different machines merge by plain bucket-wise addition
and two same-input digests are bit-for-bit identical.

Design constraints, in order:

- **Deterministic.** The bucket edges are a pure function of the
  construction parameters, never of the samples; ``to_dict()`` output is
  stable across runs and processes.
- **Mergeable.** ``merge`` is exact (bucket-wise sum); merging per-host
  digests equals digesting the concatenated stream.
- **Bounded.** Memory is ``O(buckets)`` regardless of sample count; the
  relative quantile error is bounded by the bucket width (about 3.7 %
  at the default 32 buckets per decade).

Exact ``count``/``total``/``min``/``max`` ride alongside the buckets, so
the extreme quantiles (q=0, q=1) and the mean stay exact.

:func:`percentile` is the repo-wide percentile helper built on top —
one implementation shared by the service results path, the loop
sanitizer and the benchmarks (previously each kept its own sorted-list
version).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence

#: Default grid: 1 µs .. 1 Gs (covers latencies in seconds *and* rates
#: in bytes/s on one grid), 32 geometric buckets per decade.
DEFAULT_LO = 1e-6
DEFAULT_HI = 1e9
DEFAULT_BUCKETS_PER_DECADE = 32


class QuantileDigest:
    """Fixed-bucket geometric histogram with exact count/total/min/max.

    Values at or below ``lo`` (including zeros and negatives) land in
    the underflow bucket and are represented by the exact ``min``;
    values above ``hi`` land in the overflow bucket and are represented
    by the exact ``max``. Everything between maps to a geometric bucket
    whose representative value is the bucket's geometric midpoint,
    clamped into ``[min, max]``.
    """

    __slots__ = (
        "lo",
        "hi",
        "bins_per_decade",
        "_nbins",
        "_log_lo",
        "_counts",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        bins_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
        if bins_per_decade < 1:
            raise ValueError(
                f"bins_per_decade must be >= 1, got {bins_per_decade}")
        self.lo = lo
        self.hi = hi
        self.bins_per_decade = bins_per_decade
        decades = math.log10(hi / lo)
        # Geometric bins between lo and hi, plus underflow (index 0)
        # and overflow (index nbins + 1).
        self._nbins = max(1, math.ceil(decades * bins_per_decade))
        self._log_lo = math.log10(lo)
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # --------------------------------------------------------- recording

    def _bucket_of(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value > self.hi:
            return self._nbins + 1
        idx = 1 + int(
            (math.log10(value) - self._log_lo) * self.bins_per_decade)
        # log10 rounding can push an exact edge one bin out of range.
        return min(max(idx, 1), self._nbins)

    def add(self, value: float, weight: int = 1) -> None:
        """Fold one sample (optionally pre-aggregated ``weight`` times)."""
        if weight <= 0:
            return
        bucket = self._bucket_of(value)
        self._counts[bucket] = self._counts.get(bucket, 0) + weight
        self.count += weight
        self.total += value * weight
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # ----------------------------------------------------------- queries

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _edge(self, idx: int) -> float:
        """Upper edge of geometric bin ``idx`` (1-based)."""
        return self.lo * 10.0 ** (idx / self.bins_per_decade)

    def _representative(self, bucket: int) -> float:
        if bucket == 0:
            return self.min
        if bucket == self._nbins + 1:
            return self.max
        lower = self._edge(bucket - 1)
        upper = self._edge(bucket)
        value = math.sqrt(lower * upper)
        return min(max(value, self.min), self.max)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile (``q`` in [0, 1]); 0.0 when empty.

        Matches the sorted-list nearest-rank convention this repo used
        before (rank ``round(q * (n - 1))``), so q=0 is the exact min
        and q=1 the exact max.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = int(round(q * (self.count - 1)))
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if rank < seen:
                return self._representative(bucket)
        return self.max  # pragma: no cover - rank < count always hits

    # ------------------------------------------------------------- merge

    def compatible(self, other: "QuantileDigest") -> bool:
        return (self.lo == other.lo and self.hi == other.hi
                and self.bins_per_decade == other.bins_per_decade)

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold ``other`` into ``self`` (exact; returns ``self``)."""
        if not self.compatible(other):
            raise ValueError(
                f"incompatible digests: ({self.lo}, {self.hi}, "
                f"{self.bins_per_decade}) vs ({other.lo}, {other.hi}, "
                f"{other.bins_per_decade})")
        for bucket, n in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0) + n
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    # ------------------------------------------------------------ export

    def to_dict(self) -> dict[str, object]:
        """JSON-ready state; ``from_dict`` round-trips it exactly."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins_per_decade": self.bins_per_decade,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): v
                        for k, v in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, state: Mapping[str, object]) -> "QuantileDigest":
        lo = state["lo"]
        hi = state["hi"]
        bins = state["bins_per_decade"]
        assert isinstance(lo, float) and isinstance(hi, float)
        assert isinstance(bins, int)
        digest = cls(lo=lo, hi=hi, bins_per_decade=bins)
        buckets = state["buckets"]
        assert isinstance(buckets, Mapping)
        for key, n in buckets.items():
            assert isinstance(n, int)
            digest._counts[int(key)] = n
        count = state["count"]
        total = state["total"]
        assert isinstance(count, int)
        assert isinstance(total, (int, float))
        digest.count = count
        digest.total = float(total)
        minimum = state.get("min")
        maximum = state.get("max")
        if isinstance(minimum, (int, float)):
            digest.min = float(minimum)
        if isinstance(maximum, (int, float)):
            digest.max = float(maximum)
        return digest

    def summary(self) -> dict[str, float]:
        """The report-friendly percentile block."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max if self.count else 0.0,
        }


def digest_of(samples: Iterable[float],
              lo: float = DEFAULT_LO,
              hi: float = DEFAULT_HI,
              bins_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
              ) -> QuantileDigest:
    """Build a digest over ``samples`` in one call."""
    digest = QuantileDigest(lo=lo, hi=hi, bins_per_decade=bins_per_decade)
    digest.extend(samples)
    return digest


def percentile(samples: Sequence[float], q: float,
               digest: Optional[QuantileDigest] = None) -> float:
    """Shared percentile helper (``q`` in [0, 100]); 0.0 on empty input.

    The repo-wide replacement for the per-module sorted-list versions:
    folds ``samples`` through a :class:`QuantileDigest` (or a caller's
    pre-built one) so every report path quotes percentiles from the same
    implementation with the same error bound.
    """
    if digest is None:
        if not samples:
            return 0.0
        digest = digest_of(samples)
    elif samples:
        digest.extend(samples)
    return digest.quantile(q / 100.0)
