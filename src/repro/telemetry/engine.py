"""Engine self-profiling: per-handler timing, heap depth, event counts.

:func:`instrument_engine` attaches an observer to a
:class:`~repro.sim.engine.Simulator` that feeds a
:class:`~repro.telemetry.metrics.MetricsRegistry`:

- ``engine_handler_calls_total{handler=...}`` — dispatches per handler
  (the bound method's ``__qualname__``).
- ``engine_handler_seconds{handler=...}`` — wall-clock histogram of each
  handler's run time.
- ``engine_heap_depth`` — histogram of pending-event counts sampled at
  every dispatch.
- ``engine_events_total`` / ``engine_sim_time_seconds`` — collector-fed
  gauges read from the simulator at export time, costing nothing while
  the run is hot.

The simulator lives in an RL001 determinism zone where wall-clock reads
are banned, so the caller *injects* the timer (``time.perf_counter``
from a benchmark or report script); nothing here imports ``time``. When
the registry is disabled this attaches nothing and the engine keeps its
uninstrumented fast-path loop.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.telemetry.metrics import MetricsRegistry, SampleHook

#: Heap-depth histogram bounds: pending-event counts, log-spaced.
HEAP_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                      256.0, 512.0, 1024.0, 4096.0)


def _handler_name(callback: Callable[..., None]) -> str:
    func = getattr(callback, "__func__", callback)
    name = getattr(func, "__qualname__", None)
    if name is None:  # pragma: no cover - exotic callables
        name = repr(func)
    return str(name)


class EngineInstrumentation:
    """The observer bound between one simulator and one registry."""

    def __init__(
        self,
        sim: Simulator,
        registry: MetricsRegistry,
        timer: Callable[[], float],
    ) -> None:
        self.sim = sim
        self.registry = registry
        self._heap_depth = registry.histogram(
            "engine_heap_depth",
            "Pending events in the scheduler heap at each dispatch",
            buckets=HEAP_DEPTH_BUCKETS,
        ).observe
        # Per-handler hooks, created lazily at first dispatch. Keyed by
        # the underlying function so every bound method of a class
        # shares one child per method, not one per instance.
        self._handlers: dict[object, tuple[SampleHook, SampleHook]] = {}
        registry.register_collector(self._collect)
        sim.instrument(timer, self._record)

    def _record(
        self, callback: Callable[..., None], seconds: float, depth: int
    ) -> None:
        func = getattr(callback, "__func__", callback)
        hooks = self._handlers.get(func)
        if hooks is None:
            name = _handler_name(callback)
            hooks = (
                self.registry.counter(
                    "engine_handler_calls_total",
                    "Event dispatches per handler",
                    handler=name,
                ).inc,
                self.registry.histogram(
                    "engine_handler_seconds",
                    "Wall-clock run time per handler dispatch",
                    handler=name,
                ).observe,
            )
            self._handlers[func] = hooks
        hooks[0](1.0)
        hooks[1](seconds)
        self._heap_depth(float(depth))

    def _collect(self, registry: MetricsRegistry) -> None:
        registry.gauge(
            "engine_events_total", "Events executed by the simulator"
        ).set(float(self.sim.events_processed))
        registry.gauge(
            "engine_sim_time_seconds", "Current simulation clock"
        ).set(self.sim.now)

    def detach(self) -> None:
        """Restore the engine's uninstrumented fast path."""
        self.sim.uninstrument()


def instrument_engine(
    sim: Simulator,
    registry: MetricsRegistry,
    timer: Callable[[], float],
) -> Optional[EngineInstrumentation]:
    """Attach engine self-profiling, or ``None`` if metrics are off.

    ``timer`` is a monotonic wall-clock read (``time.perf_counter``)
    supplied by the caller — see the module docstring for why it cannot
    be imported here.
    """
    if not registry.enabled:
        return None
    return EngineInstrumentation(sim, registry, timer)
