"""Exporters: Chrome trace-event JSON and Prometheus text files.

Two interchange formats for a finished run:

- :func:`chrome_trace` turns the flight recorder's decision log (and
  optionally the tracer's time series) into the Chrome trace-event JSON
  format, loadable in ``about://tracing`` or https://ui.perfetto.dev —
  each decision source gets its own named track, decisions render as
  instant events with their inputs attached, and series render as
  counter tracks.
- :func:`export_prometheus` writes a :class:`~repro.telemetry.metrics.
  MetricsRegistry` in the Prometheus text exposition format.

Both are deterministic: same seed, same bytes.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union

from repro.sim.trace import Tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import FlightRecorder

_PID = 1
#: Counter tracks share one synthetic thread id; decision tracks start
#: above it.
_COUNTER_TID = 0


def chrome_trace(
    recorder: Optional[FlightRecorder] = None,
    tracer: Optional[Tracer] = None,
) -> dict[str, object]:
    """Build a Chrome trace-event document from a finished run.

    Decision records become instant events (phase ``i``) on one track
    per source; tracer series become counter events (phase ``C``).
    Timestamps are simulation seconds scaled to integer microseconds.
    """
    events: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _COUNTER_TID,
            "args": {"name": "repro simulation"},
        }
    ]
    if recorder is not None and recorder.enabled:
        sources = sorted({record.source for record in recorder})
        tids = {src: _COUNTER_TID + 1 + i for i, src in enumerate(sources)}
        for src in sources:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tids[src],
                    "args": {"name": src},
                }
            )
        for record in recorder:
            events.append(
                {
                    "name": record.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": round(record.time * 1e6),
                    "pid": _PID,
                    "tid": tids[record.source],
                    "args": dict(record.fields),
                }
            )
    if tracer is not None:
        for name in sorted(tracer.series):
            series = tracer.series[name]
            for t, v in zip(series.times, series.values):
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": round(t * 1e6),
                        "pid": _PID,
                        "tid": _COUNTER_TID,
                        "args": {"value": v},
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    path: Union[str, pathlib.Path],
    recorder: Optional[FlightRecorder] = None,
    tracer: Optional[Tracer] = None,
) -> pathlib.Path:
    """Write :func:`chrome_trace` output as deterministic JSON."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace(recorder=recorder, tracer=tracer)
    target.write_text(
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    )
    return target


def export_prometheus(
    path: Union[str, pathlib.Path], registry: MetricsRegistry
) -> pathlib.Path:
    """Write ``registry`` in the Prometheus text exposition format."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(registry.to_prometheus())
    return target
