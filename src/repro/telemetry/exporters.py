"""Exporters: Chrome trace-event JSON and Prometheus text files.

Two interchange formats for a finished run:

- :func:`chrome_trace` turns the flight recorder's decision log (and
  optionally the tracer's time series) into the Chrome trace-event JSON
  format, loadable in ``about://tracing`` or https://ui.perfetto.dev —
  each decision source gets its own named track, decisions render as
  instant events with their inputs attached, and series render as
  counter tracks. With ``spans`` (a merged
  :func:`~repro.telemetry.tracing.merge_spans` list) each trace renders
  as its own named *process*, each span source (client, server session)
  as a thread inside it, so client playout/stall spans and server §2.2
  decision spans nest under one trace in Perfetto.
- :func:`export_prometheus` writes a :class:`~repro.telemetry.metrics.
  MetricsRegistry` in the Prometheus text exposition format.

Both are deterministic: same seed, same bytes.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Sequence, Union

from repro.sim.trace import Tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.tracing import Span

_PID = 1
#: Counter tracks share one synthetic thread id; decision tracks start
#: above it.
_COUNTER_TID = 0
#: Span processes start above the simulation's pid: one pid per trace.
_SPAN_PID_BASE = 2


def _span_events(spans: Sequence[Span]) -> list[dict[str, object]]:
    """Trace-event rows for a merged span list.

    One synthetic *process* per trace id (so a fleet run shows one
    process group per session trace), one *thread* per span source
    inside it (client on one lane, server session on another). Timed
    spans become complete events (phase ``X``), which Perfetto nests by
    time containment on a lane; instant spans become phase ``i``.
    """
    events: list[dict[str, object]] = []
    trace_ids = sorted({span.trace_id for span in spans})
    pids = {tid: _SPAN_PID_BASE + i for i, tid in enumerate(trace_ids)}
    sources: dict[str, list[str]] = {
        tid: sorted({s.source for s in spans if s.trace_id == tid})
        for tid in trace_ids
    }
    tids = {
        (tid, src): 1 + lane
        for tid in trace_ids
        for lane, src in enumerate(sources[tid])
    }
    for tid in trace_ids:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pids[tid],
            "tid": 0,
            "args": {"name": f"trace {tid}"},
        })
        for src in sources[tid]:
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pids[tid],
                "tid": tids[(tid, src)],
                "args": {"name": src},
            })
    for span in spans:
        args: dict[str, object] = dict(span.fields)
        args["span_id"] = span.span_id
        args["parent_id"] = span.parent_id
        event: dict[str, object] = {
            "name": span.name,
            "ts": round(span.start * 1e6),
            "pid": pids[span.trace_id],
            "tid": tids[(span.trace_id, span.source)],
            "args": args,
        }
        if span.instant:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = max(1, round(span.duration * 1e6))
        events.append(event)
    return events


def chrome_trace(
    recorder: Optional[FlightRecorder] = None,
    tracer: Optional[Tracer] = None,
    spans: Optional[Sequence[Span]] = None,
) -> dict[str, object]:
    """Build a Chrome trace-event document from a finished run.

    Decision records become instant events (phase ``i``) on one track
    per source; tracer series become counter events (phase ``C``);
    merged spans (see :func:`_span_events`) become per-trace process
    groups. Timestamps are seconds scaled to integer microseconds.
    """
    events: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _COUNTER_TID,
            "args": {"name": "repro simulation"},
        }
    ]
    if recorder is not None and recorder.enabled:
        sources = sorted({record.source for record in recorder})
        tids = {src: _COUNTER_TID + 1 + i for i, src in enumerate(sources)}
        for src in sources:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tids[src],
                    "args": {"name": src},
                }
            )
        for record in recorder:
            events.append(
                {
                    "name": record.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": round(record.time * 1e6),
                    "pid": _PID,
                    "tid": tids[record.source],
                    "args": dict(record.fields),
                }
            )
    if tracer is not None:
        for name in sorted(tracer.series):
            series = tracer.series[name]
            for t, v in zip(series.times, series.values):
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": round(t * 1e6),
                        "pid": _PID,
                        "tid": _COUNTER_TID,
                        "args": {"value": v},
                    }
                )
    if spans:
        events.extend(_span_events(spans))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    path: Union[str, pathlib.Path],
    recorder: Optional[FlightRecorder] = None,
    tracer: Optional[Tracer] = None,
    spans: Optional[Sequence[Span]] = None,
) -> pathlib.Path:
    """Write :func:`chrome_trace` output as deterministic JSON."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace(recorder=recorder, tracer=tracer, spans=spans)
    target.write_text(
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    )
    return target


def export_prometheus(
    path: Union[str, pathlib.Path], registry: MetricsRegistry
) -> pathlib.Path:
    """Write ``registry`` in the Prometheus text exposition format."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(registry.to_prometheus())
    return target
