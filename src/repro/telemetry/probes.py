"""Probes: the telemetry channels a bus can sample.

Each probe is a small object with a desired sampling ``period`` and a
``sample(now)`` method that pushes values into its bus. Probes are inert
until subscribed; a disabled bus registers them without ever sampling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.sim.link import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.bus import TelemetryBus


class Probe:
    """Base class: a periodically sampled telemetry channel."""

    def __init__(self, period: float = 0.1) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.bus: Optional["TelemetryBus"] = None
        #: Effective seconds between samples (period x bus decimation).
        self.dt = period

    def bind(self, bus: "TelemetryBus") -> None:
        self.bus = bus
        self.dt = self.period * bus.decimate

    def sample(self, now: float) -> None:
        raise NotImplementedError


class SessionProbe(Probe):
    """Every series the paper's figures plot, for one streaming session:

    - ``rate``            -- RAP transmission rate (bytes/s)
    - ``consumption``     -- na * C (bytes/s)
    - ``layers``          -- number of active layers
    - ``send_rate_L{i}``  -- per-layer bandwidth share (bytes/s)
    - ``drain_rate_L{i}`` -- per-layer buffer drain rate at the receiver
    - ``buffer_L{i}``     -- per-layer buffered bytes at the receiver
    - ``buffer_est_L{i}`` -- the server's estimate of the same
    - ``total_buffer``    -- sum of receiver buffers
    - ``srtt``            -- the transport's smoothed RTT

    ``prefix`` namespaces the channels (e.g. ``"f3."``) when several
    sessions share one bus.
    """

    def __init__(self, server: Any, client: Any, period: float = 0.1,
                 prefix: str = "") -> None:
        # server/client are duck-typed (``Any``): probes only read the
        # handful of attributes listed above, and ablation variants
        # substitute their own server/adapter classes freely.
        super().__init__(period)
        self.server = server
        self.client = client
        self.prefix = prefix
        max_layers: int = server.config.max_layers
        self._last_sent = [0.0] * max_layers
        self._last_consumed = [0.0] * max_layers
        self._last_delivered = [0.0] * max_layers

    def sample(self, now: float) -> None:
        bus = self.bus
        assert bus is not None, "probe sampled before subscribe()"
        adapter = self.server.adapter
        playout = self.client.playout
        playout.advance(now)

        pre = self.prefix
        bus.record(f"{pre}rate", now, self.server.rap.rate)
        bus.record(f"{pre}consumption", now, adapter.consumption)
        bus.record(f"{pre}layers", now, adapter.active_layers)
        bus.record(f"{pre}total_buffer", now, playout.total_buffered())
        bus.record(f"{pre}srtt", now, self.server.rap.srtt)

        dt = self.dt
        for i in range(self.server.config.max_layers):
            sent = adapter.sent_bytes_per_layer[i]
            bus.record(f"{pre}send_rate_L{i}", now,
                       (sent - self._last_sent[i]) / dt)
            self._last_sent[i] = sent

            consumed = playout.buffers.consumed(i)
            delivered = playout.buffers.delivered(i)
            drain = max(0.0, (consumed - self._last_consumed[i])
                        - (delivered - self._last_delivered[i])) / dt
            bus.record(f"{pre}drain_rate_L{i}", now, drain)
            self._last_consumed[i] = consumed
            self._last_delivered[i] = delivered

            bus.record(f"{pre}buffer_L{i}", now, playout.level(i))
            bus.record(f"{pre}buffer_est_L{i}", now,
                       adapter.buffers.level(i))


class QueueOccupancyProbe(Probe):
    """Occupancy and drop count of one link's output queue.

    Channels: ``{name}_qlen`` (packets), ``{name}_qbytes`` (bytes),
    ``{name}_drops`` (cumulative).
    """

    def __init__(self, link: Link, name: str = "bottleneck",
                 period: float = 0.1) -> None:
        super().__init__(period)
        self.link = link
        self.name = name

    def sample(self, now: float) -> None:
        bus = self.bus
        assert bus is not None, "probe sampled before subscribe()"
        queue = self.link.queue
        bus.record(f"{self.name}_qlen", now, float(len(queue)))
        bus.record(f"{self.name}_qbytes", now, float(queue.byte_length))
        bus.record(f"{self.name}_drops", now, float(queue.drops))


class TransportRateProbe(Probe):
    """Transmission rate of one transport agent (any with ``.rate``)."""

    def __init__(self, transport: Any, channel: str,
                 period: float = 0.1) -> None:
        super().__init__(period)
        self.transport = transport
        self.channel = channel

    def sample(self, now: float) -> None:
        bus = self.bus
        assert bus is not None, "probe sampled before subscribe()"
        bus.record(self.channel, now, self.transport.rate)
