"""Distributed tracing: deterministic span trees across client & server.

The paper's quality-adaptation decisions are causal — a client-visible
stall traces back to a specific §2.2 drop evaluation on the server —
but since the streaming service split the two ends into separate
processes joined by UDP, nothing correlated them. This module is the
correlation layer:

- :class:`TraceContext` — a ``(trace_id, span_id)`` pair. In simulation
  zones ids derive from the run seed via
  :func:`~repro.sim.rng.derive_seed` (PYTHONHASHSEED-stable, so two
  same-seed runs produce identical trace ids); in the service the
  *client* derives the context from the fleet seed and session index
  and carries it across the wire in the HELLO options, the server
  echoes it in the WELCOME config, and from then on both ends stamp
  spans into the same trace. DATA/ACK frames stay binary — they are
  correlated to the trace via ``session_id`` + ``seq``.
- :class:`Span` — one timed operation (``start``/``end`` on the
  caller's clock; instant events have ``end == start``).
- :class:`SpanRecorder` — the bounded sink. Producers bind a
  :meth:`~SpanRecorder.span_hook` once per ``(source, context)`` and
  get ``None`` when recording is disabled — the exact RL007 discipline
  of ``FlightRecorder.hook`` and the metric hooks, so the hot path
  stays free when tracing is off.

This module never reads a clock (it lives in the RL001 ``telemetry``
determinism zone): timestamps arrive as hook arguments — simulation
time from the scenario builder, service-relative wall clock from the
asyncio service. Span *ids* are deterministic in both cases: the n-th
span recorded through a given hook always gets the same id.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from collections import deque
from typing import Callable, Iterator, Mapping, Optional, Union

from repro.sim.rng import derive_seed

#: ``(start, end, name, fields)`` — what a producer hands the recorder.
#: Returns the new span's id so producers can link follow-up spans.
#: The producer's identity (``source``) and trace membership
#: (``TraceContext``) are bound into the hook itself.
SpanHook = Callable[[float, float, str, Mapping[str, object]], str]

#: Key under which a trace context travels in HELLO/WELCOME JSON
#: options — absent entirely when tracing is off, so traced and
#: untraced wire exchanges stay byte-compatible.
TRACE_OPTION = "trace"

_JSON_SEPARATORS = (",", ":")


def _hex_id(seed: int, *parts: object) -> str:
    """A 64-bit hex id from two :func:`derive_seed` halves.

    ``derive_seed`` yields 31 bits; two independent derivations cover a
    64-bit id space with the same PYTHONHASHSEED-stable property.
    """
    hi = derive_seed(seed, "hi", *parts)
    lo = derive_seed(seed, "lo", *parts)
    return f"{((hi << 33) | (lo << 2)) & 0xFFFFFFFFFFFFFFFF:016x}"


def _is_hex_id(value: object) -> bool:
    if not isinstance(value, str) or len(value) != 16:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


class TraceContext:
    """One trace's identity plus the current parent span.

    Immutable: :meth:`child` returns a new context under the same trace.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        if not _is_hex_id(trace_id) or not _is_hex_id(span_id):
            raise ValueError(
                f"trace ids must be 16 hex chars, got "
                f"trace_id={trace_id!r} span_id={span_id!r}")
        self.trace_id = trace_id
        self.span_id = span_id

    @classmethod
    def derive(cls, seed: int, *parts: object) -> "TraceContext":
        """Deterministic root context for ``(seed, *parts)``."""
        return cls(_hex_id(seed, "trace", *parts),
                   _hex_id(seed, "root", *parts))

    def child(self, *parts: object) -> "TraceContext":
        """A sub-context: same trace, new deterministic parent span."""
        return TraceContext(
            self.trace_id, _hex_id(int(self.span_id, 16), *parts))

    # --------------------------------------------------------------- wire

    def to_wire(self) -> dict[str, str]:
        """The JSON payload carried under :data:`TRACE_OPTION`."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, options: Mapping[str, object]
                  ) -> Optional["TraceContext"]:
        """Recover a context from HELLO/WELCOME options; None if absent.

        Malformed payloads (wrong types, bad hex) read as absent rather
        than raising: a mistraced peer must not kill the session path.
        """
        payload = options.get(TRACE_OPTION)
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not _is_hex_id(trace_id) or not _is_hex_id(span_id):
            return None
        assert isinstance(trace_id, str) and isinstance(span_id, str)
        return cls(trace_id, span_id)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id}, {self.span_id})"


class Span:
    """One timed operation inside a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "source", "name",
                 "start", "end", "fields")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str,
        source: str,
        name: str,
        start: float,
        end: float,
        fields: Mapping[str, object],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.source = source
        self.name = name
        self.start = start
        self.end = end
        self.fields = dict(fields)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def instant(self) -> bool:
        """True for point events (``end == start``)."""
        return self.end <= self.start

    def to_json(self) -> str:
        """One deterministic JSON line (sorted keys, compact)."""
        return json.dumps(
            {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "src": self.source,
                "name": self.name,
                "t0": round(self.start, 9),
                "t1": round(self.end, 9),
                "fields": self.fields,
            },
            sort_keys=True,
            separators=_JSON_SEPARATORS,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, src={self.source!r}, "
                f"t0={self.start:.6f}, t1={self.end:.6f})")


class SpanRecorder:
    """Bounded in-memory span sink with deterministic JSONL export.

    Mirrors :class:`~repro.telemetry.recorder.FlightRecorder`: a ring
    buffer (FIFO eviction, evictions counted), RL007 ``None``-hook
    discipline when disabled, and bit-stable export. Span ids derive
    from the owning trace id and a per-hook counter, so the n-th span a
    hook records is identical across runs — bind one hook per
    ``(source, context)`` pair to keep that property.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._recorded = 0
        self._by_source: dict[str, int] = {}

    # ---------------------------------------------------------- recording

    def span_hook(self, source: str,
                  context: TraceContext) -> Optional[SpanHook]:
        """A ``(start, end, name, fields)`` recording callable.

        Returns ``None`` when the recorder is disabled; producers must
        treat that as "don't even build the span" (RL007 — enforced for
        ``span_hook`` results like every other telemetry hook).
        """
        if not self.enabled:
            return None
        trace_seed = int(context.trace_id, 16)
        sequence = [0]

        def _record(start: float, end: float, name: str,
                    fields: Mapping[str, object]) -> str:
            span_id = _hex_id(trace_seed, source, sequence[0])
            sequence[0] += 1
            self._append(Span(
                context.trace_id, span_id, context.span_id,
                source, name, start, end, fields))
            return span_id

        return _record

    def _append(self, span: Span) -> None:
        self._spans.append(span)
        self._recorded += 1
        self._by_source[span.source] = (
            self._by_source.get(span.source, 0) + 1)

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def total_recorded(self) -> int:
        """Spans ever accepted (retained + evicted)."""
        return self._recorded

    @property
    def evicted(self) -> int:
        return self._recorded - len(self._spans)

    def recorded_for(self, source: str) -> int:
        """Spans ever recorded by ``source`` (survives eviction)."""
        return self._by_source.get(source, 0)

    def spans_of(self, name: Optional[str] = None,
                 source: Optional[str] = None,
                 trace_id: Optional[str] = None) -> list[Span]:
        """Retained spans filtered by name / source / trace."""
        return [
            s for s in self._spans
            if (name is None or s.name == name)
            and (source is None or s.source == source)
            and (trace_id is None or s.trace_id == trace_id)
        ]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids among retained spans, sorted."""
        return sorted({s.trace_id for s in self._spans})

    # ------------------------------------------------------------- export

    def to_jsonl(self) -> str:
        if not self._spans:
            return ""
        return "\n".join(s.to_json() for s in self._spans) + "\n"

    def digest(self) -> str:
        """sha256 of :meth:`to_jsonl` — the trace's fingerprint."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()

    def write_jsonl(self, path: Union[str, pathlib.Path]
                    ) -> Optional[pathlib.Path]:
        """Write span JSONL; a disabled recorder writes nothing."""
        if not self.enabled:
            return None
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_jsonl())
        return target

    def summary(self) -> dict[str, object]:
        """Manifest-ready block (counts, traces, sha256)."""
        names: dict[str, int] = {}
        for span in self._spans:
            names[span.name] = names.get(span.name, 0) + 1
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "recorded": self.total_recorded,
            "retained": len(self._spans),
            "evicted": self.evicted,
            "traces": len(self.trace_ids()),
            "names": dict(sorted(names.items())),
            "digest": self.digest(),
        }


def merge_spans(*recorders: Optional[SpanRecorder]) -> list[Span]:
    """Deterministically merge span streams from several recorders.

    ``None`` and disabled recorders are skipped, so callers can pass
    client and server recorders unconditionally. The order is total
    (trace, time, source, id): same inputs, same merged list.
    """
    merged: list[Span] = []
    for recorder in recorders:
        if recorder is not None and recorder.enabled:
            merged.extend(recorder)
    merged.sort(key=lambda s: (s.trace_id, s.start, s.end, s.source,
                               s.span_id))
    return merged
