"""Per-rule wall-time accounting for ``repro-lint --profile``.

The linter's cost model changed when the async-graph stage landed:
whole-program rules no longer pay only for the call graph, and a slow
rule hides inside an aggregate "lint took N seconds" number. The
profiler attributes wall-clock time to named phases (``parse``,
``project:build``, ``project:asyncgraph``) and to each rule code, so
a bench regression points at the rule that caused it.

Timings accumulate across files: a per-file rule's entry is its total
over the whole run, and a flow rule's entry is its single
``check_project`` call. Lazily built shared analyses are measured
under their own phase labels so rule entries stay comparable -- the
async graph, for instance, is forced *before* RL013 runs, otherwise
its construction cost would land on whichever async rule ran first.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Profiler:
    """Accumulates wall-clock seconds keyed by phase or rule label."""

    timings: dict[str, float] = field(default_factory=dict)

    def add(self, label: str, seconds: float) -> None:
        self.timings[label] = self.timings.get(label, 0.0) + seconds

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(label, time.perf_counter() - start)

    def report_json(self) -> dict[str, float]:
        """Label -> seconds, rounded so reports diff cleanly."""
        return {
            label: round(seconds, 6)
            for label, seconds in sorted(self.timings.items())
        }

    def report_text(self) -> str:
        """Aligned table, most expensive first, with a total row."""
        if not self.timings:
            return "profile: no timings recorded"
        total = sum(self.timings.values())
        width = max(
            len("phase/rule"),
            max(len(label) for label in self.timings),
        )
        lines = [f"{'phase/rule'.ljust(width)}  seconds   share"]
        ranked = sorted(
            self.timings.items(), key=lambda item: (-item[1], item[0])
        )
        for label, seconds in ranked:
            share = 100.0 * seconds / total if total else 0.0
            lines.append(
                f"{label.ljust(width)}  {seconds:7.3f}  {share:5.1f}%"
            )
        lines.append(f"{'total'.ljust(width)}  {total:7.3f}")
        return "\n".join(lines)
