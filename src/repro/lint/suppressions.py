"""``# repro-lint: disable=CODE`` suppression comments.

Two forms, modelled on pylint's:

- ``# repro-lint: disable=RL001`` on a line suppresses the listed codes
  for violations reported *on that line* (trailing or standalone -- the
  comment's own line is what counts, matching the ``lineno`` the rules
  report).
- ``# repro-lint: disable-file=RL001,RL003`` anywhere in the file
  (conventionally in the module docstring area) suppresses the listed
  codes for the whole file.

Codes are comma-separated; unknown codes are accepted silently so a
suppression written for a future rule does not break older checkouts.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator

_COMMENT = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*)"
)


def _comment_lines(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, text)`` for each real comment in ``source``.

    Tokenizing keeps directive-shaped text inside string literals (for
    example this module's own docstring) from acting as a suppression.
    Files that do not tokenize fall back to a per-line string scan so
    syntactically broken files stay suppressible.
    """
    comments: list[tuple[int, str]] = []
    try:
        readline = io.StringIO(source).readline
        for tok in tokenize.generate_tokens(readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (SyntaxError, ValueError, tokenize.TokenError):
        yield from enumerate(source.splitlines(), start=1)
        return
    yield from comments


@dataclass(frozen=True)
class Directive:
    """One suppression comment as written in the file.

    ``line`` is where the comment sits; ``code`` a single rule code
    (comma lists are split into one directive each); ``file_level``
    whether it was the ``disable-file`` form. Kept so ``repro-lint
    --show-suppressed`` can audit which directives still earn their keep.
    """

    line: int
    code: str
    file_level: bool


@dataclass
class Suppressions:
    """Parsed suppression directives for one source file."""

    file_level: frozenset[str] = frozenset()
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    directives: tuple[Directive, ...] = ()

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        """Collect directives from every comment in ``source``.

        Only genuine comment tokens count: directive-shaped text inside
        a string literal or docstring documents the syntax without
        enabling it. When the file does not tokenize the scan degrades
        to every physical line, keeping broken files suppressible.
        """
        file_level: set[str] = set()
        by_line: dict[int, frozenset[str]] = {}
        directives: list[Directive] = []
        for lineno, text in _comment_lines(source):
            match = _COMMENT.search(text)
            if match is None:
                continue
            codes = frozenset(
                code.strip().upper()
                for code in match.group("codes").split(",")
            )
            is_file_level = match.group("scope") == "disable-file"
            for code in sorted(codes):
                directives.append(Directive(lineno, code, is_file_level))
            if is_file_level:
                file_level |= codes
            else:
                by_line[lineno] = by_line.get(lineno, frozenset()) | codes
        return cls(
            file_level=frozenset(file_level),
            by_line=by_line,
            directives=tuple(directives),
        )

    def covers(self, code: str, line: int) -> bool:
        """Is a ``code`` violation reported at ``line`` suppressed?"""
        if code in self.file_level:
            return True
        return code in self.by_line.get(line, frozenset())
