"""``# repro-lint: disable=CODE`` suppression comments.

Two forms, modelled on pylint's:

- ``# repro-lint: disable=RL001`` on a line suppresses the listed codes
  for violations reported *on that line* (trailing or standalone -- the
  comment's own line is what counts, matching the ``lineno`` the rules
  report).
- ``# repro-lint: disable-file=RL001,RL003`` anywhere in the file
  (conventionally in the module docstring area) suppresses the listed
  codes for the whole file.

Codes are comma-separated; unknown codes are accepted silently so a
suppression written for a future rule does not break older checkouts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_COMMENT = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*)"
)


@dataclass
class Suppressions:
    """Parsed suppression directives for one source file."""

    file_level: frozenset[str] = frozenset()
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        """Collect directives from every physical line of ``source``.

        A plain string scan (not the tokenizer) keeps syntactically
        broken files suppressible; the directive grammar is strict
        enough that false positives inside string literals would have to
        be written deliberately.
        """
        file_level: set[str] = set()
        by_line: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _COMMENT.search(text)
            if match is None:
                continue
            codes = frozenset(
                code.strip().upper()
                for code in match.group("codes").split(",")
            )
            if match.group("scope") == "disable-file":
                file_level |= codes
            else:
                by_line[lineno] = by_line.get(lineno, frozenset()) | codes
        return cls(file_level=frozenset(file_level), by_line=by_line)

    def covers(self, code: str, line: int) -> bool:
        """Is a ``code`` violation reported at ``line`` suppressed?"""
        if code in self.file_level:
            return True
        return code in self.by_line.get(line, frozenset())
