"""Content-addressed incremental analysis cache.

The linter's cost is dominated by analysis, not I/O: parsing and
tokenizing every file, then running the per-file rules and the
whole-program flow rules (call graph, summaries, dataflow). The cache
makes the common cases cheap without ever trading soundness:

- **Warm run, nothing changed.** Every file's content digest matches
  the index: the stored findings are replayed verbatim. No file is
  parsed or tokenized -- suppressions are reconstructed from cached
  directive records -- so the warm path is pure hashing plus one JSON
  read (the CI gate holds it to >= 5x faster than cold).
- **Warm run, some files changed.** Everything is re-parsed (the flow
  rules need the full :class:`~repro.lint.flow.project.Project` for
  cross-module resolution), but re-*analysis* is scoped: per-file rules
  re-run only where the file's environment digest changed, and flow
  rules re-run only over the **dirty cone** -- modules whose transitive
  import closure contains a changed file. Clean modules replay their
  cached flow findings.

Three digest layers, mirroring the experiment runner's cache keying:

- ``analyzer digest`` -- every source file of ``repro.lint`` plus the
  Python version. Editing any rule invalidates everything.
- ``env digest`` (per file) -- the file's own content plus its sibling
  ``__init__.py`` (RL002 reads the sibling experiment registry, so a
  registry edit must re-check every experiment module beside it).
- ``cone digest`` (per module) -- the content digests of the module's
  transitive import closure, self included. Any edit anywhere in the
  closure changes the cone digest, which *is* the reverse-dependency
  invalidation: dependents of a changed module notice because their
  closures contain it.
- ``async digest`` (per module) -- the cone digest widened to the
  forward *union* reverse import closure. Async-graph facts flow both
  ways (may-block comes from callees, loop contexts from spawners), so
  rules with ``uses_async_facts = True`` (RL013-RL015) key their cached
  findings on this digest and re-run over the wider async-dirty set.

Findings of :class:`~repro.lint.rules.base.FlowRule` subclasses with
``cone_cacheable = False`` (RL010: a finding ties a submitter module to
an unrelated worker module, outside either's import cone) are stored
under a whole-project digest instead and re-run on any change.

Cached findings are **raw** (pre-suppression): suppressions are applied
per run, so editing only a ``# repro-lint: disable`` comment changes
the file digest, re-tokenizes that file, and re-filters the replayed
findings correctly.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sys
from typing import Any, Optional, Sequence

from repro.lint.rules.base import Rule
from repro.lint.suppressions import Directive, Suppressions
from repro.lint.violations import Violation

#: Bump when the index layout changes; old indexes are discarded.
CACHE_SCHEMA = 2

#: Default cache location (gitignored alongside the experiment cache).
DEFAULT_CACHE_DIR = ".repro-cache/lint"


def content_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


_sha256 = content_sha


def source_sha(path: pathlib.Path) -> str:
    return _sha256(path.read_bytes())


def analyzer_digest() -> str:
    """Digest of the analyzer itself: ``repro.lint`` sources + Python.

    Computed once per process; editing any rule, the engine, or this
    module invalidates every cached finding.
    """
    global _ANALYZER_DIGEST
    if _ANALYZER_DIGEST is None:
        package_dir = pathlib.Path(__file__).resolve().parent
        hasher = hashlib.sha256()
        hasher.update(
            f"py{sys.version_info[0]}.{sys.version_info[1]}".encode()
        )
        for path in sorted(package_dir.rglob("*.py")):
            hasher.update(str(path.relative_to(package_dir)).encode())
            hasher.update(path.read_bytes())
        _ANALYZER_DIGEST = hasher.hexdigest()
    return _ANALYZER_DIGEST


_ANALYZER_DIGEST: Optional[str] = None


def ruleset_digest(rules: Sequence[Rule]) -> str:
    """Digest of the active rule selection (``--rules`` subsets cache
    separately from full runs)."""
    return _sha256(",".join(sorted(rule.code for rule in rules)).encode())


def env_sha(file_sha: str, path: pathlib.Path) -> str:
    """Per-file environment digest: own content + sibling registry.

    RL002 validates experiment modules against the ``EXPERIMENTS``
    table in the *sibling* ``__init__.py``; editing the registry must
    re-check every module beside it even though their bytes are
    untouched.
    """
    sibling = path.parent / "__init__.py"
    sibling_sha = ""
    if sibling != path and sibling.is_file():
        sibling_sha = source_sha(sibling)
    return _sha256(f"{file_sha}:{sibling_sha}".encode())


def _closures(
    graph: dict[str, set[str]]
) -> dict[str, frozenset[str]]:
    """Transitive closure (incl. self) of every node in ``graph``."""
    memo: dict[str, frozenset[str]] = {}

    def closure(name: str, trail: frozenset[str]) -> frozenset[str]:
        cached = memo.get(name)
        if cached is not None:
            return cached
        if name in trail:  # import cycle: break, union handled by caller
            return frozenset((name,))
        acc = {name}
        for dep in graph.get(name, ()):
            acc |= closure(dep, trail | {name})
        result = frozenset(acc)
        if name not in trail:
            memo[name] = result
        return result

    return {name: closure(name, frozenset()) for name in graph}


def _member_digest(
    members: frozenset[str], module_shas: dict[str, str]
) -> str:
    parts = sorted(
        f"{member}:{module_shas.get(member, '')}" for member in members
    )
    return _sha256("\n".join(parts).encode())


def cone_digests(
    import_graph: dict[str, set[str]], module_shas: dict[str, str]
) -> dict[str, str]:
    """Per-module digest over the transitive import closure (incl. self).

    A module's digest changes iff any file in its closure changed --
    the fixed point of reverse-dependency invalidation, computed
    forward.
    """
    forward = _closures(import_graph)
    return {
        name: _member_digest(forward[name], module_shas)
        for name in import_graph
    }


def async_digests(
    import_graph: dict[str, set[str]], module_shas: dict[str, str]
) -> dict[str, str]:
    """Per-module digest over the forward *union* reverse import closure.

    Async facts flow in both directions: a coroutine's may-block verdict
    depends on its callees (forward imports), but its loop contexts and
    cross-task span pairings depend on who spawns or schedules it --
    its importers. Editing a spawner must therefore re-analyze the
    coroutine's module even though the coroutine's own import cone never
    saw the change. Rules with ``uses_async_facts = True`` key their
    cached findings on this digest instead of :func:`cone_digests`; it
    covers a superset of the cone members, so the async-dirty set is
    always a superset of the plain dirty cone.
    """
    reverse: dict[str, set[str]] = {name: set() for name in import_graph}
    for name, deps in import_graph.items():
        for dep in deps:
            if dep in reverse:
                reverse[dep].add(name)
    forward = _closures(import_graph)
    backward = _closures(reverse)
    return {
        name: _member_digest(forward[name] | backward[name], module_shas)
        for name in import_graph
    }


# ------------------------------------------------------- (de)serialization


def pack_violation(violation: Violation) -> list[Any]:
    return [
        violation.path,
        violation.line,
        violation.col,
        violation.code,
        violation.message,
    ]


def unpack_violation(row: Sequence[Any]) -> Violation:
    return Violation(
        path=row[0],
        line=int(row[1]),
        col=int(row[2]),
        code=row[3],
        message=row[4],
    )


def pack_directives(suppressions: Suppressions) -> list[list[Any]]:
    return [
        [d.line, d.code, d.file_level] for d in suppressions.directives
    ]


def unpack_suppressions(rows: Sequence[Sequence[Any]]) -> Suppressions:
    """Rebuild a :class:`Suppressions` without re-tokenizing the file."""
    directives = tuple(
        Directive(int(row[0]), row[1], bool(row[2])) for row in rows
    )
    file_level: set[str] = set()
    by_line: dict[int, frozenset[str]] = {}
    for directive in directives:
        if directive.file_level:
            file_level.add(directive.code)
        else:
            by_line[directive.line] = by_line.get(
                directive.line, frozenset()
            ) | {directive.code}
    return Suppressions(
        file_level=frozenset(file_level),
        by_line=by_line,
        directives=directives,
    )


# --------------------------------------------------------------- the store


class LintCache:
    """One JSON index per (analyzer, ruleset) pair under ``root``.

    The index maps resolved file paths to their digests, directives,
    and raw findings; a ``global`` section holds whole-project-keyed
    results. Writes are atomic (temp file + rename) so a crashed run
    never leaves a torn index.
    """

    def __init__(self, root: pathlib.Path) -> None:
        self.root = root

    def index_path(self, ruleset_sha: str) -> pathlib.Path:
        return self.root / f"index-{ruleset_sha[:16]}.json"

    def load(self, ruleset_sha: str) -> Optional[dict[str, Any]]:
        path = self.index_path(ruleset_sha)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        if payload.get("analyzer") != analyzer_digest():
            return None
        return payload

    def store(self, ruleset_sha: str, payload: dict[str, Any]) -> None:
        payload = dict(payload)
        payload["schema"] = CACHE_SCHEMA
        payload["analyzer"] = analyzer_digest()
        path = self.index_path(ruleset_sha)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(path)
        except OSError:
            # Caching is an optimization: an unwritable cache dir must
            # never fail the lint run itself.
            return
