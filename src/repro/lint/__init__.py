"""repro-lint: AST-based determinism and invariant checker.

The golden-trace harness and the content-addressed result cache
(PR 1) are only sound if properties hold *at rest* that nothing in the
test suite can observe directly: the simulation must be bit-for-bit
deterministic, experiment modules must obey the runner protocol, the
core QA arithmetic must not mix units, and experiment imports must be
visible to the cache's static source-closure walk. ``repro.lint`` is a
standalone static analyzer (stdlib ``ast`` only, no new dependencies)
that rejects whole classes of such mistakes before any simulation runs.

Rules (each documented in docs/LINTING.md):

- **RL001 determinism** -- no ambient randomness or wall-clock reads in
  ``sim/``, ``core/``, ``transport/``, ``media/``; seeded
  :mod:`repro.sim.rng` streams only, and no ``PYTHONHASHSEED``-sensitive
  set iteration.
- **RL002 experiment protocol** -- every ``fig*``/``table*``/
  ``ablation*`` module is registered in ``EXPERIMENTS``, exposes a
  runner-compatible ``run`` entry point that threads ``seed``, and
  satisfies the render protocol.
- **RL003 units discipline** -- no arithmetic mixing values built via
  :mod:`repro.core.units` helpers with raw numeric literals in the core
  QA math.
- **RL004 cache-key hygiene** -- no dynamic imports in experiment
  modules; they are invisible to the cache-key source-closure walk in
  :mod:`repro.experiments.cache`.

Violations are reported as ``path:line:col: CODE message`` (or JSON via
``--format json``) and can be suppressed per line with
``# repro-lint: disable=CODE`` or per file with
``# repro-lint: disable-file=CODE``.

Installed as the ``repro-lint`` console script; also runnable as
``python -m repro.lint``.
"""

from repro.lint.cli import lint_paths, main
from repro.lint.rules import default_rules
from repro.lint.violations import REPORT_SCHEMA, Violation, build_report

__all__ = [
    "REPORT_SCHEMA",
    "Violation",
    "build_report",
    "default_rules",
    "lint_paths",
    "main",
]
