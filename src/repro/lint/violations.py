"""Violation records and the machine-readable report schema.

A violation pinpoints one rule breach at ``path:line:col``. The JSON
report mirrors the experiment runner's manifest conventions (stable key
order, schema version field) so dashboards can track violation counts
per PR the same way they track cache hit rates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

#: Version of the ``--format json`` report layout.
REPORT_SCHEMA = 1


@dataclass(frozen=True, order=True)
class Violation:
    """One rule breach, anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The canonical one-line rendering: ``path:line:col: CODE msg``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def build_report(
    violations: Sequence[Violation], files_checked: int
) -> dict[str, object]:
    """The ``--format json`` payload (stable ordering, see REPORT_SCHEMA).

    ``counts`` maps rule code to violation count so a dashboard can plot
    per-rule trends without re-parsing the violation list.
    """
    counts: dict[str, int] = {}
    for violation in sorted(violations):
        counts[violation.code] = counts.get(violation.code, 0) + 1
    return {
        "schema": REPORT_SCHEMA,
        "files_checked": files_checked,
        "total": len(violations),
        "counts": counts,
        "violations": [asdict(v) for v in sorted(violations)],
    }
