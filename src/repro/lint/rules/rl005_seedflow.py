"""RL005: seed-flow tracking for SeededRNG objects.

Bit-for-bit reproducibility rests on a discipline the type system cannot
see: every stochastic component must draw from its *own* labelled
substream (``rng.spawn(label)`` / ``make_rng(seed)`` /
``SeededRNG(derive_seed(...))``), so that adding, removing, or reordering
one flow never shifts another flow's draw sequence. Two components
sharing one ``SeededRNG`` object interleave their draws -- golden traces
then depend on event interleaving, the exact failure PR 1 eliminated.

This rule proves, per function, that every RNG reaching a stochastic
constructor (any call argument bound to a parameter named ``rng``):

- originates from a sanctioned source -- a ``spawn``/``make_rng`` call,
  ``SeededRNG(derive_seed(...))``, or a ``SeededRNG``-annotated
  parameter (already proven at its own construction site); and
- feeds exactly one consumer: the same variable consumed twice (directly
  or through an alias), consumed again in a later loop iteration, or a
  shared ``self.rng`` attribute passed on directly, is an aliasing
  violation.

``repro.sim.rng`` itself is exempt: it is the sanctioned factory.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Optional, Sequence

from repro.lint.flow.project import Project
from repro.lint.flow.summaries import (
    RNG_CLASS as RNG_CLASS,
    RNG_MODULE as RNG_MODULE,
    SummaryTable,
)
from repro.lint.flow.symbols import ClassInfo, FunctionInfo, ModuleSymbols, Param
from repro.lint.rules.base import FileContext, FlowRule
from repro.lint.violations import Violation


class _RngState:
    __slots__ = ("origin", "bind_mult", "count")

    def __init__(self, origin: str, bind_mult: int) -> None:
        self.origin = origin
        self.bind_mult = bind_mult
        self.count = 0


class SeedFlowRule(FlowRule):
    code: ClassVar[str] = "RL005"
    title: ClassVar[str] = "seed flow"
    rationale: ClassVar[str] = (
        "every SeededRNG reaching a stochastic constructor must originate "
        "from spawn()/derive_seed() and feed exactly one consumer; shared "
        "streams interleave draws and break per-flow reproducibility"
    )

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        out: list[Violation] = []
        summaries = project.summaries()
        for name in sorted(project.modules):
            if only is not None and name not in only:
                continue
            if name == RNG_MODULE or not _imports_rng(project, name):
                continue
            info = project.modules[name]
            checker = _ModuleChecker(
                self, project, info.symbols, info.ctx, summaries
            )
            out.extend(checker.run())
        return out


def _imports_rng(project: Project, module: str) -> bool:
    for target in project.modules[module].symbols.imports.values():
        if target == RNG_MODULE or target.startswith(RNG_MODULE + "."):
            return True
    return False


class _ModuleChecker:
    def __init__(
        self,
        rule: SeedFlowRule,
        project: Project,
        symbols: ModuleSymbols,
        ctx: FileContext,
        summaries: SummaryTable,
    ) -> None:
        self.rule = rule
        self.project = project
        self.symbols = symbols
        self.ctx = ctx
        self.summaries = summaries
        self.out: list[Violation] = []

    def run(self) -> list[Violation]:
        for func in self.symbols.functions.values():
            self._check_function(func, None)
        for cls in self.symbols.classes.values():
            for method in cls.methods.values():
                self._check_function(method, cls)
        return self.out

    # -------------------------------------------------------- resolution

    def _dotted_target(self, func: ast.expr) -> Optional[str]:
        """Canonical dotted target of a call's function expression."""
        if isinstance(func, ast.Name):
            target = self.symbols.imports.get(func.id)
            if target is not None:
                return target
            if func.id in self.symbols.functions:
                return f"{self.symbols.name}.{func.id}"
            if func.id in self.symbols.classes:
                return f"{self.symbols.name}.{func.id}"
            return None
        if isinstance(func, ast.Attribute):
            parts: list[str] = [func.attr]
            current: ast.expr = func.value
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if not isinstance(current, ast.Name):
                return None
            head = self.symbols.imports.get(current.id)
            if head is None:
                return None
            parts.append(head)
            return ".".join(reversed(parts))
        return None

    def _is_rng_annotation(self, ann: Optional[ast.expr]) -> bool:
        if ann is None:
            return False
        ref = self.project.resolve_annotation(self.symbols.name, ann)
        if ref.kind == "cls" and ref.qualname == RNG_CLASS:
            return True
        # Fixture fallback: the rng module itself is not always part of
        # the linted set; match the import target syntactically.
        if isinstance(ann, ast.Name):
            return self.symbols.imports.get(ann.id) == RNG_CLASS
        return False

    def _returns_rng(self, target: str) -> bool:
        resolved = self.project.resolve_function(target)
        if resolved is None:
            return False
        module, fn = resolved
        ref = self.project.resolve_annotation(module, fn.returns)
        if ref.kind == "cls" and ref.qualname == RNG_CLASS:
            return True
        returns = fn.returns
        if isinstance(returns, ast.Name):
            owner = self.project.modules.get(module)
            if owner is not None:
                if owner.symbols.imports.get(returns.id) == RNG_CLASS:
                    return True
        # Unannotated wrapper: the summary table traced its return
        # provenance through the call graph.
        return self.summaries.rng_origin(f"{module}.{fn.name}") == "sanctioned"

    def _classify(self, call: ast.Call, cls: Optional[ClassInfo]) -> Optional[str]:
        """'sanctioned' / 'raw' for an RNG-producing call, else None."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "spawn":
            return "sanctioned"
        target = self._dotted_target(func)
        if target is None:
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and cls is not None
            ):
                found = self.project.find_method(cls, func.attr)
                if found is not None:
                    owner, method = found
                    ref = self.project.resolve_annotation(
                        owner.module, method.returns
                    )
                    if ref.kind == "cls" and ref.qualname == RNG_CLASS:
                        return "sanctioned"
                    return self.summaries.rng_origin(
                        f"{owner.qualname}.{method.name}"
                    )
            return None
        if target == f"{RNG_MODULE}.make_rng":
            return "sanctioned"
        if target in ("random.Random", "random.SystemRandom"):
            return "raw"
        if target == RNG_CLASS:
            if call.args and isinstance(call.args[0], ast.Call):
                seed_target = self._dotted_target(call.args[0].func)
                seed_name = (
                    call.args[0].func.id
                    if isinstance(call.args[0].func, ast.Name)
                    else None
                )
                if (
                    seed_target == f"{RNG_MODULE}.derive_seed"
                    or seed_name == "derive_seed"
                ):
                    return "sanctioned"
            return "raw"
        if self._returns_rng(target):
            return "sanctioned"
        resolved = self.project.resolve_function(target)
        if resolved is not None:
            module, fn = resolved
            return self.summaries.rng_origin(f"{module}.{fn.name}")
        return None

    def _callee_qualname(
        self, call: ast.Call, cls: Optional[ClassInfo]
    ) -> Optional[str]:
        """Summary-table key of the called project function, if known."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and cls is not None
        ):
            found = self.project.find_method(cls, func.attr)
            if found is not None:
                owner, method = found
                return f"{owner.qualname}.{method.name}"
            return None
        target = self._dotted_target(func)
        if target is None:
            return None
        resolved = self.project.resolve_function(target)
        if resolved is not None:
            module, fn = resolved
            return f"{module}.{fn.name}"
        info = self.project.resolve_class(target)
        if info is not None:
            found = self.project.find_method(info, "__init__")
            if found is not None:
                owner, _ = found
                return f"{owner.qualname}.__init__"
        return None

    def _callee_params(
        self, call: ast.Call, cls: Optional[ClassInfo]
    ) -> Optional[Sequence[Param]]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and cls is not None
        ):
            found = self.project.find_method(cls, func.attr)
            if found is None:
                return None
            _, method = found
            return (
                method.params
                if method.is_staticmethod
                else method.params[1:]
            )
        target = self._dotted_target(func)
        if target is None:
            return None
        resolved = self.project.resolve_function(target)
        if resolved is not None:
            return resolved[1].params
        info = self.project.resolve_class(target)
        if info is not None:
            found = self.project.find_method(info, "__init__")
            if found is not None:
                return found[1].params[1:]
            if info.is_dataclass:
                return [
                    Param(field, info.body_fields[field])
                    for field in info.field_order
                ]
        return None

    # ----------------------------------------------------------- checking

    def _check_function(
        self, func: FunctionInfo, cls: Optional[ClassInfo]
    ) -> None:
        env: dict[str, _RngState] = {}
        registry: list[_RngState] = []
        params = func.params
        if cls is not None and not func.is_staticmethod and params:
            params = params[1:]
        for param in params:
            if self._is_rng_annotation(param.annotation):
                state = _RngState("sanctioned", 1)
                env[param.name] = state
                registry.append(state)
        self._walk(func.node.body, env, registry, 1, cls)

    def _walk(
        self,
        stmts: Sequence[ast.stmt],
        env: dict[str, _RngState],
        registry: list[_RngState],
        mult: int,
        cls: Optional[ClassInfo],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                if value is not None:
                    self._scan_calls(value, env, registry, mult, cls)
                    state = self._value_state(value, env, registry, mult, cls)
                    if state is not None:
                        for target in targets:
                            if isinstance(target, ast.Name):
                                env[target.id] = state
                        continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        env.pop(target.id, None)
            elif isinstance(stmt, ast.If):
                self._scan_calls(stmt.test, env, registry, mult, cls)
                self._walk_branches(
                    [stmt.body, stmt.orelse], env, registry, mult, cls
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_calls(stmt.iter, env, registry, mult, cls)
                body_env = dict(env)
                self._walk(stmt.body, body_env, registry, mult * 2, cls)
                env.update(body_env)
                self._walk(stmt.orelse, env, registry, mult, cls)
            elif isinstance(stmt, ast.While):
                self._scan_calls(stmt.test, env, registry, mult, cls)
                body_env = dict(env)
                self._walk(stmt.body, body_env, registry, mult * 2, cls)
                env.update(body_env)
                self._walk(stmt.orelse, env, registry, mult, cls)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan_calls(item.context_expr, env, registry, mult, cls)
                self._walk(stmt.body, env, registry, mult, cls)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, env, registry, mult, cls)
                for handler in stmt.handlers:
                    self._walk(handler.body, dict(env), registry, mult, cls)
                self._walk(stmt.orelse, env, registry, mult, cls)
                self._walk(stmt.finalbody, env, registry, mult, cls)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._scan_calls(child, env, registry, mult, cls)

    def _walk_branches(
        self,
        blocks: Sequence[Sequence[ast.stmt]],
        env: dict[str, _RngState],
        registry: list[_RngState],
        mult: int,
        cls: Optional[ClassInfo],
    ) -> None:
        """Branch counts do not add up: take the per-state maximum.

        A branch that terminates (``if ...: return use(rng)``) never
        rejoins the fall-through path, so its consumption and bindings
        are excluded from the post-If state -- sequential dispatch
        chains (``if isinstance(...): return ...`` per spec kind) each
        consume once on *their* path, not cumulatively.
        """
        base = {id(state): state.count for state in registry}
        maxima: dict[int, int] = dict(base)
        merged_bindings: dict[str, _RngState] = {}
        for block in blocks:
            branch_env = dict(env)
            self._walk(block, branch_env, registry, mult, cls)
            rejoins = not _block_terminates(block)
            for state in registry:
                key = id(state)
                if rejoins:
                    maxima[key] = max(maxima.get(key, 0), state.count)
                state.count = base.get(key, 0)
            if rejoins:
                merged_bindings.update(branch_env)
        for state in registry:
            state.count = maxima.get(id(state), state.count)
        env.update(merged_bindings)

    def _value_state(
        self,
        value: ast.expr,
        env: dict[str, _RngState],
        registry: list[_RngState],
        mult: int,
        cls: Optional[ClassInfo],
    ) -> Optional[_RngState]:
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if isinstance(value, ast.Call):
            origin = self._classify(value, cls)
            if origin is not None:
                state = _RngState(origin, mult)
                registry.append(state)
                return state
        return None

    def _scan_calls(
        self,
        expr: ast.expr,
        env: dict[str, _RngState],
        registry: list[_RngState],
        mult: int,
        cls: Optional[ClassInfo],
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._check_sink(node, env, registry, mult, cls)

    def _check_sink(
        self,
        call: ast.Call,
        env: dict[str, _RngState],
        registry: list[_RngState],
        mult: int,
        cls: Optional[ClassInfo],
    ) -> None:
        rng_args: list[ast.expr] = [
            kw.value for kw in call.keywords if kw.arg == "rng"
        ]
        if call.args:
            params = self._callee_params(call, cls)
            if params is not None:
                for param, arg in zip(params, call.args):
                    if param.name == "rng" and not isinstance(
                        arg, ast.Starred
                    ):
                        rng_args.append(arg)
        for arg in rng_args:
            self._consume(call, arg, env, registry, mult, cls)

    def _consume(
        self,
        call: ast.Call,
        arg: ast.expr,
        env: dict[str, _RngState],
        registry: list[_RngState],
        mult: int,
        cls: Optional[ClassInfo],
    ) -> None:
        callee = _describe_callee(call)
        if isinstance(arg, ast.Name):
            state = env.get(arg.id)
            if state is None:
                return
            # Escape analysis: one pass to a fanning-out helper stands
            # for as many consumers as the helper feeds (weight >= 1).
            weight = self.summaries.rng_weight(
                self._callee_qualname(call, cls), "rng"
            )
            state.count += max(1, mult // state.bind_mult) * weight
            if state.count > 1:
                self.out.append(
                    self.ctx.violation(
                        call,
                        self.rule.code,
                        f"RNG '{arg.id}' feeds more than one stochastic "
                        f"consumer (here: {callee}); spawn a separate "
                        f"substream per flow",
                    )
                )
            elif state.origin == "raw":
                self.out.append(
                    self.ctx.violation(
                        call,
                        self.rule.code,
                        f"RNG '{arg.id}' passed to {callee} does not "
                        f"originate from spawn()/make_rng()/derive_seed()",
                    )
                )
            return
        if isinstance(arg, ast.Call):
            if self._classify(arg, cls) == "raw":
                self.out.append(
                    self.ctx.violation(
                        call,
                        self.rule.code,
                        f"RNG passed to {callee} is constructed from a raw "
                        f"seed; use spawn()/make_rng()/derive_seed()",
                    )
                )
            return
        if isinstance(arg, ast.Attribute):
            self.out.append(
                self.ctx.violation(
                    call,
                    self.rule.code,
                    f"shared RNG attribute '{arg.attr}' passed directly to "
                    f"{callee}; spawn a per-consumer substream",
                )
            )


def _block_terminates(block: Sequence[ast.stmt]) -> bool:
    return bool(block) and isinstance(
        block[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _describe_callee(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return "<call>"
