"""RL001: simulation code must be bit-for-bit deterministic.

The golden-trace regression harness and the content-addressed result
cache both assume that an experiment is a pure function of (source,
config, seed). Any ambient randomness or wall-clock read under ``sim/``,
``core/``, ``transport/``, ``media/``, ``scenario/`` or ``telemetry/``
silently breaks that contract, so this rule bans it at rest:

- stdlib ``random`` in any form -- module-state calls *and*
  ``random.Random(...)`` construction (the ``queues.py`` fallback bug:
  a constant-seed RNG shared by every parallel run). Stochastic
  components must take a seeded stream from :mod:`repro.sim.rng`.
- ``numpy.random`` module state (legacy global generator).
- wall-clock reads: ``time.time``/``perf_counter``/``monotonic`` (and
  their ``_ns`` variants), ``datetime.now``/``utcnow``/``today``.
- OS entropy: ``os.urandom``, ``secrets``, ``uuid.uuid1``/``uuid4``.
- ``PYTHONHASHSEED``-sensitive iteration: a ``set`` used as the iterable
  of a loop or comprehension, or materialized via ``list``/``tuple``/
  ``enumerate``/``iter``, leaks hash-seed-dependent ordering into
  output. Wrap the set in ``sorted(...)`` instead.
- ``asyncio`` in any form, plus the ``loop.time()`` idiom: event-loop
  timers are wall-clock by construction, so scheduling belongs to the
  simulator (``sim.schedule``), never to asyncio.

The ``service`` zone (:mod:`repro.service`, the real-socket streaming
server) is the one place wall-clock time and asyncio timers are
legitimate — that is what the package is *for* — so those two checks
are skipped there. Randomness, OS entropy and set-order hazards remain
banned: a load fleet's loss pattern must still replay from its seed.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import FileContext, Rule, import_aliases, resolve_dotted
from repro.lint.violations import Violation

#: Directories whose code the rule polices in full.
ZONES = ("sim", "core", "transport", "media", "scenario", "telemetry")
#: The asyncio service zone: wall-clock and asyncio are legitimate
#: there, but randomness/entropy/set-order hazards still apply.
SERVICE_ZONES = ("service",)

#: Event-loop receiver names whose ``.time()`` is a wall-clock read.
_LOOP_NAMES = frozenset({"loop", "_loop", "event_loop", "_event_loop"})

_WALL_CLOCK = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)
#: Entropy hazards, banned in every zone (service included).
_BANNED_EXACT = {
    "os.urandom": "os.urandom() is OS entropy; derive bytes from a seeded "
    "repro.sim.rng stream",
    "uuid.uuid1": "uuid.uuid1() is time/host dependent; use a seed-derived "
    "identifier",
    "uuid.uuid4": "uuid.uuid4() is OS entropy; use a seed-derived identifier",
}
#: Wall-clock hazards, banned outside the service zone only.
_WALL_CLOCK_EXACT = {
    "datetime.datetime.now": "wall-clock read; simulation time comes from "
    "the event loop (sim.now)",
    "datetime.datetime.utcnow": "wall-clock read; simulation time comes "
    "from the event loop (sim.now)",
    "datetime.date.today": "wall-clock read; simulation time comes from "
    "the event loop (sim.now)",
}
_ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class DeterminismRule(Rule):
    code = "RL001"
    title = "determinism"
    rationale = (
        "Experiments must be pure functions of (source, config, seed); "
        "ambient randomness, wall-clock reads and hash-seed-dependent "
        "set ordering break golden traces and poison the result cache."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dirs(ZONES + SERVICE_ZONES)

    def check(self, ctx: FileContext) -> list[Violation]:
        aliases = import_aliases(ctx.tree)
        # The service zone keeps its wall clock and asyncio timers;
        # every other zone must stay on simulation time.
        clocked = not ctx.in_dirs(SERVICE_ZONES)
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                self._check_import(ctx, node, clocked, out)
            elif isinstance(node, ast.ImportFrom):
                self._check_import_from(ctx, node, clocked, out)
            elif isinstance(node, ast.Attribute):
                self._check_dotted_use(ctx, node, aliases, clocked, out)
            elif isinstance(node, ast.For):
                self._check_set_iteration(ctx, node.iter, out)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    self._check_set_iteration(ctx, generator.iter, out)
            elif isinstance(node, ast.Call):
                self._check_order_sink(ctx, node, out)
                if clocked:
                    self._check_loop_time(ctx, node, out)
        return out

    # ------------------------------------------------------------- imports

    def _check_import(
        self, ctx: FileContext, node: ast.Import, clocked: bool, out: list[Violation]
    ) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root == "asyncio":
                if clocked:
                    out.append(
                        ctx.violation(
                            node,
                            self.code,
                            "asyncio timers are wall-clock; simulation "
                            "code schedules on the event loop "
                            "(sim.schedule) — asyncio belongs in "
                            "repro.service",
                        )
                    )
            elif root == "random":
                out.append(
                    ctx.violation(
                        node,
                        self.code,
                        "stdlib random is banned in simulation code; take "
                        "a seeded stream from repro.sim.rng",
                    )
                )
            elif alias.name == "numpy.random" or alias.name.startswith(
                "numpy.random."
            ):
                out.append(
                    ctx.violation(
                        node,
                        self.code,
                        "numpy.random module state is unseeded global "
                        "state; use a seeded repro.sim.rng stream",
                    )
                )
            elif root == "secrets":
                out.append(
                    ctx.violation(
                        node,
                        self.code,
                        "secrets draws OS entropy; simulation randomness "
                        "must come from repro.sim.rng",
                    )
                )

    def _check_import_from(
        self,
        ctx: FileContext,
        node: ast.ImportFrom,
        clocked: bool,
        out: list[Violation],
    ) -> None:
        module = node.module or ""
        if node.level:
            return
        for alias in node.names:
            if module == "asyncio" or module.startswith("asyncio."):
                if clocked:
                    out.append(
                        ctx.violation(
                            node,
                            self.code,
                            "asyncio timers are wall-clock; simulation "
                            "code schedules on the event loop "
                            "(sim.schedule) — asyncio belongs in "
                            "repro.service",
                        )
                    )
            elif module == "random" or module.startswith("random."):
                out.append(
                    ctx.violation(
                        node,
                        self.code,
                        "stdlib random is banned in simulation code; take "
                        "a seeded stream from repro.sim.rng",
                    )
                )
            elif (module == "numpy" and alias.name == "random") or (
                module.startswith("numpy.random")
            ):
                out.append(
                    ctx.violation(
                        node,
                        self.code,
                        "numpy.random module state is unseeded global "
                        "state; use a seeded repro.sim.rng stream",
                    )
                )
            elif module == "secrets":
                out.append(
                    ctx.violation(
                        node,
                        self.code,
                        "secrets draws OS entropy; simulation randomness "
                        "must come from repro.sim.rng",
                    )
                )
            elif module == "time" and alias.name in _WALL_CLOCK:
                if clocked:
                    out.append(
                        ctx.violation(
                            node,
                            self.code,
                            f"time.{alias.name} is a wall-clock read; "
                            "simulation time comes from the event loop "
                            "(sim.now)",
                        )
                    )
            elif module == "os" and alias.name == "urandom":
                out.append(
                    ctx.violation(node, self.code, _BANNED_EXACT["os.urandom"])
                )
            elif module == "uuid" and alias.name in ("uuid1", "uuid4"):
                out.append(
                    ctx.violation(
                        node, self.code, _BANNED_EXACT[f"uuid.{alias.name}"]
                    )
                )

    # --------------------------------------------------------- dotted uses

    def _check_dotted_use(
        self,
        ctx: FileContext,
        node: ast.Attribute,
        aliases: dict[str, str],
        clocked: bool,
        out: list[Violation],
    ) -> None:
        # Only inspect the outermost attribute of a chain: resolve the
        # full dotted path once, not once per link.
        dotted = resolve_dotted(node, aliases)
        if dotted is None:
            return
        if dotted.startswith("asyncio."):
            if clocked:
                out.append(
                    ctx.violation(
                        node,
                        self.code,
                        f"{dotted} schedules on wall-clock asyncio "
                        "timers; simulation code uses sim.schedule "
                        "(asyncio belongs in repro.service)",
                    )
                )
        elif dotted.startswith("random."):
            out.append(
                ctx.violation(
                    node,
                    self.code,
                    f"{dotted} uses stdlib random; take a seeded stream "
                    "from repro.sim.rng",
                )
            )
        elif dotted.startswith("numpy.random."):
            out.append(
                ctx.violation(
                    node,
                    self.code,
                    f"{dotted} is numpy module-state RNG; use a seeded "
                    "repro.sim.rng stream",
                )
            )
        elif dotted.startswith("secrets."):
            out.append(
                ctx.violation(
                    node,
                    self.code,
                    f"{dotted} draws OS entropy; simulation randomness "
                    "must come from repro.sim.rng",
                )
            )
        elif dotted.startswith("time.") and dotted[5:] in _WALL_CLOCK:
            if clocked:
                out.append(
                    ctx.violation(
                        node,
                        self.code,
                        f"{dotted} is a wall-clock read; simulation time "
                        "comes from the event loop (sim.now)",
                    )
                )
        elif dotted in _WALL_CLOCK_EXACT:
            if clocked:
                out.append(
                    ctx.violation(node, self.code, _WALL_CLOCK_EXACT[dotted])
                )
        elif dotted in _BANNED_EXACT:
            out.append(ctx.violation(node, self.code, _BANNED_EXACT[dotted]))

    # ----------------------------------------------------- event-loop time

    def _check_loop_time(
        self, ctx: FileContext, node: ast.Call, out: list[Violation]
    ) -> None:
        """The ``loop.time()`` idiom: asyncio's clock without the import."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in _LOOP_NAMES
            and not node.args
            and not node.keywords
        ):
            out.append(
                ctx.violation(
                    node,
                    self.code,
                    f"{func.value.id}.time() reads the event-loop wall "
                    "clock; simulation time comes from sim.now "
                    "(wall-clock belongs in repro.service)",
                )
            )

    # ------------------------------------------------------- set ordering

    def _check_set_iteration(
        self, ctx: FileContext, iterable: ast.AST, out: list[Violation]
    ) -> None:
        if _is_set_expr(iterable):
            out.append(
                ctx.violation(
                    iterable,
                    self.code,
                    "iteration order over a set depends on "
                    "PYTHONHASHSEED; wrap it in sorted(...)",
                )
            )

    def _check_order_sink(
        self, ctx: FileContext, node: ast.Call, out: list[Violation]
    ) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SINKS
            and len(node.args) >= 1
            and _is_set_expr(node.args[0])
        ):
            out.append(
                ctx.violation(
                    node,
                    self.code,
                    f"{node.func.id}() over a set materializes "
                    "PYTHONHASHSEED-dependent order; wrap the set in "
                    "sorted(...)",
                )
            )
