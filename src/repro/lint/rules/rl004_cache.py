"""RL004: experiment modules must not import dynamically.

``repro.experiments.cache`` computes each experiment's cache key from a
static AST walk of its ``repro.*`` import closure. A module pulled in
via ``importlib.import_module`` or ``__import__`` never enters that
closure, so edits to it do not change the cache key -- the cache then
serves stale results that no test can distinguish from fresh ones. This
rule bans dynamic-import machinery outright in experiment modules (the
runner and the cache itself, whose dynamic dispatch *is* the mechanism,
are out of scope).
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import FileContext, Rule
from repro.lint.violations import Violation

#: Experiments-package infrastructure allowed to import dynamically.
_EXEMPT_STEMS = frozenset({"__init__", "__main__", "runner", "cache"})


class CacheKeyHygieneRule(Rule):
    code = "RL004"
    title = "cache-key hygiene"
    rationale = (
        "The result cache keys on a static walk of each experiment's "
        "import closure; dynamically imported modules are invisible to "
        "it, so their edits serve stale cached results."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            ctx.path.parent.name == "experiments"
            and ctx.stem not in _EXEMPT_STEMS
        )

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "importlib":
                        out.append(self._flag(ctx, node, "importlib"))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if not node.level and module.split(".", 1)[0] == "importlib":
                    out.append(self._flag(ctx, node, "importlib"))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "__import__"
            ):
                out.append(self._flag(ctx, node, "__import__"))
        return out

    def _flag(self, ctx: FileContext, node: ast.AST, what: str) -> Violation:
        return ctx.violation(
            node,
            self.code,
            f"{what} is invisible to the cache-key source-closure walk "
            "(experiments/cache.py); use a static repro.* import",
        )
