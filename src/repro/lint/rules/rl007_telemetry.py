"""RL007: telemetry cost discipline on hot paths.

PR 3's hot-path contract: a disabled :class:`~repro.telemetry.bus.
TelemetryBus` hands producers ``event_hook() -> None``, and producers
must treat ``None`` as "don't even build the event" -- the per-packet
path stays allocation-free. An unguarded ``self.on_event(...)`` (or a
call through a variable holding ``bus.event_hook()``) either crashes
when telemetry is off or, more insidiously, rebuilds the kwargs dict per
packet and erases the benchmark win the engine refactor bought.

PR 5 widened the contract to the whole observability surface: the
metrics registry's ``counter_hook``/``gauge_hook``/``histogram_hook``
factories and the flight recorder's ``hook`` factory follow the same
protocol — ``None`` when the sink is disabled, a bound sample method
when enabled — so their results get the same enforcement. PR 10 added
the tracing recorder's ``span_hook`` factory (``SpanRecorder.span_hook
(source, context)``): span producers must bind once and None-guard, so
a run with tracing off never builds a span.

The rule tracks hook values through each function -- parameters and
attributes named ``on_event``, class attributes assigned from a hook
factory (``self._tx_hook = registry.counter_hook(...)``), and locals
bound from either -- and requires every *call* of one to be dominated
by a ``None`` guard of that same expression (``if hook is not None:``,
``if hook:``, an early ``if hook is None: return``, or an ``assert hook
is not None``). The telemetry package itself is exempt: it is the
implementation of the switch, not a producer.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Optional, Sequence

from repro.lint.flow.project import Project
from repro.lint.flow.summaries import HOOK_FACTORY_METHODS, SummaryTable
from repro.lint.flow.symbols import ModuleSymbols
from repro.lint.rules.base import FileContext, FlowRule, dotted_name
from repro.lint.violations import Violation

_EXEMPT_PREFIX = "repro.telemetry"
_HOOK_ATTR = "on_event"
#: Factory methods whose result is "None when disabled, else a bound
#: sample method": the telemetry bus, the metrics registry, and the
#: flight recorder (``recorder.hook(source)``). Canonically defined next
#: to the summary builder, which traces them through wrappers.
_HOOK_FACTORIES = HOOK_FACTORY_METHODS


def _terminates(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _is_hook_factory_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _HOOK_FACTORIES
    )


def _hook_attrs_of_class(cls: ast.ClassDef) -> FrozenSet[str]:
    """Attribute names the class binds from hook factories.

    ``self._tx_hook = registry.counter_hook(...)`` anywhere in the class
    makes ``self._tx_hook`` a hook-valued attribute in *every* method.
    """
    attrs: set[str] = set()
    for node in ast.walk(cls):
        value: Optional[ast.expr] = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value = node.value
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value = node.value
            targets = [node.target]
        if value is None or not _is_hook_factory_call(value):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return frozenset(attrs)


class TelemetryCostRule(FlowRule):
    code: ClassVar[str] = "RL007"
    title: ClassVar[str] = "telemetry cost"
    rationale: ClassVar[str] = (
        "observability hooks (event hooks, metric hooks, recorder hooks) "
        "are None when their sink is disabled; calling one (and building "
        "its sample) outside a None-guard crashes or taxes the per-packet "
        "hot path"
    )

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        out: list[Violation] = []
        summaries = project.summaries()
        for name in sorted(project.modules):
            if only is not None and name not in only:
                continue
            if name == _EXEMPT_PREFIX or name.startswith(_EXEMPT_PREFIX + "."):
                continue
            info = project.modules[name]
            # Pre-pass: which attributes hold factory-made hooks, per
            # enclosing class, so every method knows its hook attrs.
            attrs_of: dict[ast.FunctionDef, FrozenSet[str]] = {}
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                attrs = _hook_attrs_of_class(node)
                if not attrs:
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.FunctionDef):
                        attrs_of[sub] = attrs_of.get(sub, frozenset()) | attrs
            for node in ast.walk(info.ctx.tree):
                if isinstance(node, ast.FunctionDef):
                    checker = _FunctionChecker(
                        self, info.ctx, attrs_of.get(node, frozenset()),
                        project=project, symbols=info.symbols,
                        summaries=summaries)
                    checker.check(node)
                    out.extend(checker.out)
        return out


class _FunctionChecker:
    def __init__(self, rule: TelemetryCostRule, ctx: FileContext,
                 hook_attrs: FrozenSet[str] = frozenset(),
                 project: Optional[Project] = None,
                 symbols: Optional[ModuleSymbols] = None,
                 summaries: Optional[SummaryTable] = None) -> None:
        self.rule = rule
        self.ctx = ctx
        self.project = project
        self.symbols = symbols
        self.summaries = summaries
        self.out: list[Violation] = []
        self.hook_names: set[str] = set()
        self.hook_attrs = hook_attrs

    def check(self, func: ast.FunctionDef) -> None:
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg == _HOOK_ATTR:
                self.hook_names.add(arg.arg)
        self._collect_hook_locals(func)
        self._walk(func.body, frozenset())

    def _collect_hook_locals(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func:
                    continue
            value: Optional[ast.expr] = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value = node.value
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                targets = [node.target]
            elif isinstance(node, ast.NamedExpr):
                value = node.value
                targets = [node.target]
            if value is None or not self._is_hook_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.hook_names.add(target.id)

    def _is_hook_value(self, node: ast.expr) -> bool:
        """Does this expression produce a maybe-None hook?

        Either a factory call (``registry.counter_hook(...)``) or a load
        of a known hook attribute (``hook = self._tx_hook`` — the
        "locals from attrs" pattern the Link hot path uses).
        """
        if _is_hook_factory_call(node):
            return True
        if isinstance(node, ast.Attribute) and (
            node.attr == _HOOK_ATTR or node.attr in self.hook_attrs
        ):
            return True
        # Wrapper factory: a project function whose summary says it
        # returns a maybe-None hook (directly or through further calls).
        if isinstance(node, ast.Call) and self.summaries is not None:
            qualname = self._call_qualname(node)
            if qualname is not None and self.summaries.returns_hook(qualname):
                return True
        return False

    def _call_qualname(self, node: ast.Call) -> Optional[str]:
        """Summary key of a called project function, for Name calls."""
        func = node.func
        if not isinstance(func, ast.Name) or self.symbols is None:
            return None
        if func.id in self.symbols.functions:
            return f"{self.symbols.name}.{func.id}"
        target = self.symbols.imports.get(func.id)
        if target is not None and self.project is not None:
            resolved = self.project.resolve_function(target)
            if resolved is not None:
                module, fn = resolved
                return f"{module}.{fn.name}"
        return None

    def _hook_key(self, node: ast.expr) -> Optional[str]:
        """Canonical key if ``node`` is a hook-valued expression."""
        if isinstance(node, ast.Name) and node.id in self.hook_names:
            return node.id
        if isinstance(node, ast.Attribute) and (
            node.attr == _HOOK_ATTR or node.attr in self.hook_attrs
        ):
            return dotted_name(node)
        return None

    # ------------------------------------------------------------ walking

    def _walk(
        self, stmts: Sequence[ast.stmt], guarded: frozenset[str]
    ) -> None:
        extra: frozenset[str] = frozenset()
        for stmt in stmts:
            active = guarded | extra
            if isinstance(stmt, ast.If):
                key, positive = self._guard_from_test(stmt.test)
                self._scan(stmt.test, active)
                body_guard = active | {key} if key and positive else active
                else_guard = active | {key} if key and not positive else active
                self._walk(stmt.body, body_guard)
                self._walk(stmt.orelse, else_guard)
                # ``if hook is None: return`` guards the rest of the block.
                if (
                    key
                    and not positive
                    and stmt.body
                    and _terminates(stmt.body[-1])
                    and not stmt.orelse
                ):
                    extra = extra | {key}
                continue
            if isinstance(stmt, ast.Assert):
                key, positive = self._guard_from_test(stmt.test)
                if key and positive:
                    extra = extra | {key}
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan(stmt.iter, active)
                self._walk(stmt.body, active)
                self._walk(stmt.orelse, active)
                continue
            if isinstance(stmt, ast.While):
                self._scan(stmt.test, active)
                self._walk(stmt.body, active)
                self._walk(stmt.orelse, active)
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan(item.context_expr, active)
                self._walk(stmt.body, active)
                continue
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body, active)
                for handler in stmt.handlers:
                    self._walk(handler.body, active)
                self._walk(stmt.orelse, active)
                self._walk(stmt.finalbody, active)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan(child, active)

    def _guard_from_test(
        self, test: ast.expr
    ) -> tuple[Optional[str], bool]:
        """(hook key, guard-is-positive) for a recognized None test."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                key, positive = self._guard_from_test(value)
                if key is not None and positive:
                    return key, True
            return None, True
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op = test.left, test.ops[0]
            right = test.comparators[0]
            if isinstance(right, ast.Constant) and right.value is None:
                if isinstance(left, ast.NamedExpr):
                    if isinstance(left.target, ast.Name):
                        self.hook_names.add(left.target.id)
                    left = left.target
                key = self._hook_key(left)
                if key is not None:
                    if isinstance(op, ast.IsNot):
                        return key, True
                    if isinstance(op, ast.Is):
                        return key, False
            return None, True
        key = self._hook_key(test)
        if key is not None:
            return key, True
        return None, True

    def _scan(self, expr: ast.expr, guarded: frozenset[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.IfExp):
                # handled coarsely: guards inside ternaries not tracked
                continue
            if not isinstance(node, ast.Call):
                continue
            if _is_hook_factory_call(node.func):
                factory = node.func.func.attr  # type: ignore[attr-defined]
                self.out.append(
                    self.ctx.violation(
                        node,
                        self.rule.code,
                        f"{factory}() result called without a None-guard; "
                        "bind it and guard before building the sample",
                    )
                )
                continue
            key = self._hook_key(node.func)
            if key is not None and key not in guarded:
                self.out.append(
                    self.ctx.violation(
                        node,
                        self.rule.code,
                        f"hook '{key}' called outside an "
                        f"'if {key} is not None' guard; a disabled "
                        f"sink hands producers None",
                    )
                )
