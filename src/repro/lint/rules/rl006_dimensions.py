"""RL006: dimensional analysis of the QA math.

The paper's control laws mix four dimensions -- bytes, seconds, rates
(``C``, ``R`` in B/s) and the AIMD slope ``S`` in B/s^2 -- and several of
its formulas only balance through a square root (the section 2.2 drop
rule compares ``na*C - R`` against ``sqrt(2*S*total_buf)``; both sides
are B/s). A transposed operand produces plausible-looking floats and
silently wrong buffer targets, which no runtime test pins down unless it
crosses a golden trace.

This rule runs the :mod:`repro.lint.flow` dataflow engine over every
module that imports the unit aliases of ``repro.core.units`` and reports
each operation whose operands *definitely* carry different dimensions:
additions, subtractions, comparisons, ``min``/``max``, call arguments
against annotated parameters, returns against the declared return type,
and stores into annotated attributes or typed containers.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from repro.lint.flow.dataflow import analyze_module
from repro.lint.flow.project import Project
from repro.lint.flow.units import UNITS_MODULE
from repro.lint.rules.base import FlowRule
from repro.lint.violations import Violation


def _uses_units(project: Project, module: str) -> bool:
    info = project.modules[module]
    if info.name == UNITS_MODULE:
        return False  # the alias definitions themselves
    for target in info.symbols.imports.values():
        if target == UNITS_MODULE or target.startswith(UNITS_MODULE + "."):
            return True
    return False


class DimensionRule(FlowRule):
    code: ClassVar[str] = "RL006"
    title: ClassVar[str] = "dimensional analysis"
    rationale: ClassVar[str] = (
        "unit-annotated QA math must be dimensionally consistent: adding, "
        "comparing, passing, or returning a B/s quantity where B or B/s^2 "
        "is expected corrupts buffer targets silently"
    )

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        out: list[Violation] = []
        summaries = project.summaries()
        for name in sorted(project.modules):
            if only is not None and name not in only:
                continue
            if not _uses_units(project, name):
                continue
            ctx = project.modules[name].ctx
            for func, problem in analyze_module(project, name, summaries):
                out.append(
                    ctx.violation(
                        problem.node,
                        self.code,
                        f"in {func.name}(): {problem.message}",
                    )
                )
        return out
