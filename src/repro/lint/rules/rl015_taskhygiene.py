"""RL015: task lifecycle hygiene.

asyncio only keeps *weak* references to running tasks: a task created
with ``create_task`` and not retained anywhere can be garbage-collected
mid-flight, silently dropping its work and swallowing its exception --
the "fire-and-forget that actually forgot" failure. Separately, a
coroutine *called* but never awaited does nothing at all except emit a
``RuntimeWarning`` long after the fact, and a task stored on an object
that no teardown path ever cancels leaks across session shutdown until
the loop closes.

From the async graph's spawn table and ownership classification:

- a spawn whose result is **dropped** (bare expression statement) or
  **discarded** (bound to a local that is never read) is flagged at the
  spawn site; retained spawns -- awaited, passed to a tracking
  collection, stored on an attribute -- are fine;
- a spawn **stored** on an attribute is flagged when neither the
  storing class nor the attribute's owning class ever calls
  ``.cancel()`` anywhere: there is no cancellation path from shutdown,
  so the task leaks past teardown (the runtime sanitizer's task census
  is the dynamic counterpart of this check);
- a bare expression statement calling a **coroutine** is flagged: the
  coroutine object is created and immediately dropped, never scheduled.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Optional

from repro.lint.flow.asyncgraph import AsyncGraph
from repro.lint.flow.project import Project
from repro.lint.rules.base import FlowRule
from repro.lint.violations import Violation


class AsyncTaskHygieneRule(FlowRule):
    code: ClassVar[str] = "RL015"
    title: ClassVar[str] = "task lifecycle hygiene"
    rationale: ClassVar[str] = (
        "asyncio holds only weak refs to tasks: an untracked task can "
        "be collected mid-flight and its exception swallowed; a stored "
        "task with no cancellation path leaks past session teardown"
    )

    uses_async_facts: ClassVar[bool] = True

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        graph = project.asyncgraph()
        out: list[Violation] = []
        for spawn in graph.spawns:
            if only is not None and spawn.module not in only:
                continue
            ctx = project.modules[spawn.module].ctx
            spawner = spawn.spawner.rsplit(".", 1)[-1]
            if spawn.ownership == "dropped":
                out.append(ctx.violation(
                    spawn.node, self.code,
                    f"task spawned in {spawner}() and dropped; asyncio "
                    f"keeps only a weak ref, so the task can be "
                    f"garbage-collected mid-flight -- store it and "
                    f"discard on completion",
                ))
            elif spawn.ownership == "discarded":
                out.append(ctx.violation(
                    spawn.node, self.code,
                    f"task handle assigned in {spawner}() but never "
                    f"read; retain it (and cancel it at teardown) or "
                    f"await it",
                ))
            elif spawn.ownership == "stored" and not spawn.cancelled:
                attr = spawn.stored_attr[1] if spawn.stored_attr else "?"
                out.append(ctx.violation(
                    spawn.node, self.code,
                    f"task stored on .{attr} in {spawner}() but no "
                    f"method of the owning class ever cancels it; the "
                    f"task leaks past teardown",
                ))
        out.extend(self._unawaited_coroutines(project, graph, only))
        return out

    def _unawaited_coroutines(
        self,
        project: Project,
        graph: AsyncGraph,
        only: Optional[frozenset[str]],
    ) -> list[Violation]:
        out: list[Violation] = []
        for qualname in sorted(graph.functions):
            facts = graph.functions[qualname]
            if only is not None and facts.module not in only:
                continue
            node = graph.graph.nodes[qualname]
            ctx = project.modules[facts.module].ctx
            for stmt in ast.walk(node.func.node):
                if not (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)
                ):
                    continue
                for call, target in facts.calls:
                    if call is not stmt.value:
                        continue
                    sub = graph.functions.get(target)
                    if sub is not None and sub.is_coroutine:
                        out.append(ctx.violation(
                            stmt, self.code,
                            f"coroutine {target.rsplit('.', 1)[-1]}() "
                            f"called but never awaited: the coroutine "
                            f"object is created and immediately "
                            f"dropped",
                        ))
        return out
