"""RL012: numpy dtype and shape discipline for the fluid batch engine.

The vectorized fluid engine (:mod:`repro.sim.fluid_batch`) must agree
with the scalar solver to ~1e-9 -- that is what the packet-vs-fluid
differential harness asserts. Numpy defaults quietly break that
contract:

- **float32 narrows.** A ``float32``/``float16`` dtype anywhere in the
  pipeline caps agreement at ~1e-7 and the differential test's margin
  evaporates. All batch state is float64.
- **Dtype-unstable constructors.** ``np.zeros``/``ones``/``empty``/
  ``full``/``arange`` *without an explicit dtype* infer from arguments:
  ``np.arange(n)`` is int64 until someone passes a float bound, at
  which point every downstream accumulation changes type. Constructors
  must pin their dtype. (``np.array``/``asarray`` are exempt -- they
  exist to adopt their input's type.)
- **NaN padding.** The batch engine pads inactive lanes with ``np.inf``
  so ``min``-reductions ignore them; a ``np.full(..., np.nan)`` pad
  poisons every reduction it touches (``min(nan, x) = nan``).
- **Int accumulators fed floats.** ``counts += dt * rate`` on an int64
  array truncates silently per step.
- **Mask-shape mismatches.** Indexing a 2-D array with a 1-D boolean
  mask (or vice versa) selects rows instead of elements; with matching
  lane counts it runs without error and returns the wrong slice.

The rule tracks locals assigned from numpy constructors (dtype kind and
ndim, from literal shape arguments) through each function; findings are
definite-only, so unknown dtypes and shapes stay silent.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Optional

from repro.lint.flow.project import Project
from repro.lint.rules.base import FileContext, FlowRule, import_aliases
from repro.lint.violations import Violation

_NARROW_DTYPES = frozenset({"float32", "float16", "half", "single"})
_DTYPE_REQUIRED = frozenset({"zeros", "ones", "empty", "full", "arange"})
_INT_DTYPES = frozenset({
    "int8", "int16", "int32", "int64", "intp", "uint8", "uint16",
    "uint32", "uint64", "int_",
})
_FLOAT_DTYPES = frozenset({"float64", "double", "float_", "longdouble"})


class _ArrayFact:
    """What we definitely know about one local ndarray."""

    __slots__ = ("dtype_kind", "ndim")

    def __init__(
        self, dtype_kind: Optional[str], ndim: Optional[int]
    ) -> None:
        self.dtype_kind = dtype_kind  # "int" | "float" | "bool" | None
        self.ndim = ndim


class NumpyDisciplineRule(FlowRule):
    code: ClassVar[str] = "RL012"
    title: ClassVar[str] = "numpy dtype/shape discipline"
    rationale: ClassVar[str] = (
        "the batch fluid engine must match the scalar solver to 1e-9: "
        "float32 narrows, dtype-less constructors are type-unstable, "
        "NaN pads poison reductions, int accumulators truncate floats, "
        "and mismatched mask shapes select the wrong axis"
    )

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        out: list[Violation] = []
        for name in sorted(project.modules):
            if only is not None and name not in only:
                continue
            info = project.modules[name]
            aliases = import_aliases(info.ctx.tree)
            np_names = {
                local for local, target in aliases.items()
                if target == "numpy"
            }
            if not np_names:
                continue
            checker = _ModuleChecker(self, info.ctx, np_names)
            out.extend(checker.run())
        return out


class _ModuleChecker:
    def __init__(
        self, rule: NumpyDisciplineRule, ctx: FileContext, np_names: set[str]
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.np = np_names
        self.out: list[Violation] = []

    def run(self) -> list[Violation]:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
        self._check_global_patterns()
        return self.out

    # ------------------------------------------------- module-wide checks

    def _check_global_patterns(self) -> None:
        """Checks that need no local state: narrowing dtypes, NaN pads."""
        for node in ast.walk(self.ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in self.np
                and node.attr in _NARROW_DTYPES
            ):
                self.out.append(self.ctx.violation(
                    node, self.rule.code,
                    f"np.{node.attr} narrows the batch state below the "
                    f"1e-9 solver-agreement budget; use float64",
                ))
            if isinstance(node, ast.Call):
                self._check_constructor_call(node)

    def _check_constructor_call(self, node: ast.Call) -> None:
        ctor = self._np_ctor(node)
        if ctor is None:
            return
        if ctor in _DTYPE_REQUIRED and not any(
            kw.arg == "dtype" for kw in node.keywords
        ):
            self.out.append(self.ctx.violation(
                node, self.rule.code,
                f"np.{ctor}() without an explicit dtype infers from its "
                f"arguments and is type-unstable; pin dtype=",
            ))
        if ctor == "full" and len(node.args) >= 2:
            fill = node.args[1]
            if (
                isinstance(fill, ast.Attribute)
                and isinstance(fill.value, ast.Name)
                and fill.value.id in self.np
                and fill.attr == "nan"
            ):
                self.out.append(self.ctx.violation(
                    node, self.rule.code,
                    "np.full(..., np.nan) pad poisons min/argmin "
                    "reductions; inactive lanes are padded with np.inf",
                ))

    def _np_ctor(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.np
        ):
            return func.attr
        return None

    # --------------------------------------------------- per-function flow

    def _check_function(self, func: ast.FunctionDef) -> None:
        facts: dict[str, _ArrayFact] = {}
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            fact = self._fact_of(value, facts)
            if fact is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    facts[target.id] = fact
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.AugAssign):
                self._check_aug(stmt, facts)
            elif isinstance(stmt, ast.Subscript):
                self._check_mask(stmt, facts)

    def _fact_of(
        self, value: ast.expr, facts: dict[str, _ArrayFact]
    ) -> Optional[_ArrayFact]:
        if isinstance(value, ast.Call):
            ctor = self._np_ctor(value)
            if ctor in ("zeros", "ones", "empty", "full", "arange"):
                return _ArrayFact(
                    self._dtype_kind(value), self._ctor_ndim(ctor, value)
                )
            return None
        if isinstance(value, ast.Compare) and len(value.ops) == 1:
            # arr < x: a boolean mask with arr's shape.
            base = value.left
            if isinstance(base, ast.Name) and base.id in facts:
                return _ArrayFact("bool", facts[base.id].ndim)
        return None

    def _dtype_kind(self, call: ast.Call) -> Optional[str]:
        for kw in call.keywords:
            if kw.arg != "dtype":
                continue
            leaf: Optional[str] = None
            if (
                isinstance(kw.value, ast.Attribute)
                and isinstance(kw.value.value, ast.Name)
                and kw.value.value.id in self.np
            ):
                leaf = kw.value.attr
            elif isinstance(kw.value, ast.Name):
                leaf = kw.value.id
            if leaf in _INT_DTYPES or leaf == "int":
                return "int"
            if leaf in _FLOAT_DTYPES or leaf == "float":
                return "float"
            if leaf == "bool_" or leaf == "bool":
                return "bool"
        return None

    @staticmethod
    def _ctor_ndim(ctor: str, call: ast.Call) -> Optional[int]:
        if ctor == "arange":
            return 1
        if not call.args:
            return None
        shape = call.args[0]
        if isinstance(shape, (ast.Tuple, ast.List)):
            return len(shape.elts)
        if isinstance(shape, (ast.Constant, ast.Name)):
            return 1
        return None

    def _check_aug(
        self, stmt: ast.AugAssign, facts: dict[str, _ArrayFact]
    ) -> None:
        if not isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mult)):
            return
        target = stmt.target
        if not (isinstance(target, ast.Name) and target.id in facts):
            return
        if facts[target.id].dtype_kind != "int":
            return
        if self._definitely_float(stmt.value, facts):
            self.out.append(self.ctx.violation(
                stmt, self.rule.code,
                f"int-dtype accumulator '{target.id}' updated in place "
                f"with a float value; the fraction truncates silently "
                f"every step",
            ))

    def _definitely_float(
        self, value: ast.expr, facts: dict[str, _ArrayFact]
    ) -> bool:
        if isinstance(value, ast.Constant):
            return isinstance(value.value, float)
        if isinstance(value, ast.Name):
            fact = facts.get(value.id)
            return fact is not None and fact.dtype_kind == "float"
        if isinstance(value, ast.BinOp):
            return self._definitely_float(
                value.left, facts
            ) or self._definitely_float(value.right, facts)
        return False

    def _check_mask(
        self, node: ast.Subscript, facts: dict[str, _ArrayFact]
    ) -> None:
        base = node.value
        index = node.slice
        if not (
            isinstance(base, ast.Name)
            and base.id in facts
            and isinstance(index, ast.Name)
            and index.id in facts
        ):
            return
        arr, mask = facts[base.id], facts[index.id]
        if mask.dtype_kind != "bool":
            return
        if arr.ndim is None or mask.ndim is None:
            return
        if mask.ndim != arr.ndim:
            self.out.append(self.ctx.violation(
                node, self.rule.code,
                f"boolean mask '{index.id}' ({mask.ndim}-D) indexes "
                f"'{base.id}' ({arr.ndim}-D); a rank-mismatched mask "
                f"selects along the wrong axis",
            ))
