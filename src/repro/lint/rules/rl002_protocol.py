"""RL002: experiment modules must obey the runner protocol.

``repro-experiments`` discovers experiments through the ``EXPERIMENTS``
registry in ``experiments/__init__.py``, invokes each module's ``run``
with keyword overrides only, threads ``--seed`` into stochastic
experiments, and renders the result through a small protocol. A module
that drifts from any of these conventions fails at dispatch time -- or
worse, silently runs unseeded. This rule checks the contract statically:

- every ``fig*``/``table*``/``ablation*``/``multiflow*`` module in an
  experiments directory appears in the sibling registry;
- a top-level ``def run`` exists and every parameter has a default (the
  runner calls ``run(**overrides)`` with possibly-empty overrides);
- a module that imports the stochastic toolkit
  (``repro.experiments.common`` or ``repro.sim.rng``) must let the
  runner thread the seed: ``run`` accepts ``seed``, ``seeds``, or
  ``**kwargs``;
- the result is renderable: a module-level ``def render`` or a class
  with a ``render`` method.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Optional

from repro.lint.rules.base import FileContext, Rule
from repro.lint.violations import Violation

_EXPERIMENT_STEM = re.compile(r"^(fig|table|ablation|multiflow)")

#: Infrastructure modules an experiments directory may contain that are
#: not themselves experiments.
_NON_EXPERIMENTS = frozenset({"__init__", "__main__", "runner", "cache", "common"})

_STOCHASTIC_IMPORTS = ("repro.experiments.common", "repro.sim.rng")


def _registry_names(init_path: pathlib.Path) -> Optional[frozenset[str]]:
    """Module stems registered in ``EXPERIMENTS`` in ``init_path``.

    Values in the registry are dotted module paths; the stem is the last
    component. Returns None when the file is missing or unparsable, or
    has no ``EXPERIMENTS`` assignment.
    """
    try:
        source = init_path.read_text(encoding="utf-8")
        tree = ast.parse(source)
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "EXPERIMENTS":
                if not isinstance(value, ast.Dict):
                    return None
                stems = set()
                for item in value.values:
                    if isinstance(item, ast.Constant) and isinstance(
                        item.value, str
                    ):
                        stems.add(item.value.rsplit(".", 1)[-1])
                return frozenset(stems)
    return None


def _imports_stochastic_toolkit(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _STOCHASTIC_IMPORTS:
                    return True
        elif isinstance(node, ast.ImportFrom):
            if node.module in _STOCHASTIC_IMPORTS:
                return True
    return False


def _find_run(tree: ast.Module) -> Optional[ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "run":
            return node
    return None


def _all_params_defaulted(fn: ast.FunctionDef) -> bool:
    args = fn.args
    positional = args.posonlyargs + args.args
    if len(args.defaults) < len(positional):
        return False
    if len(args.kw_defaults) < len(args.kwonlyargs) or any(
        default is None for default in args.kw_defaults
    ):
        return False
    return True


def _accepts_seed(fn: ast.FunctionDef) -> bool:
    args = fn.args
    if args.kwarg is not None:
        return True
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    return bool(names & {"seed", "seeds"})


def _has_render(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "render":
            return True
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "render"
                ):
                    return True
    return False


class ExperimentProtocolRule(Rule):
    code = "RL002"
    title = "experiment protocol"
    rationale = (
        "The runner dispatches through the EXPERIMENTS registry, calls "
        "run(**overrides), threads --seed, and renders results through a "
        "fixed protocol; modules that drift fail at dispatch time or run "
        "unseeded."
    )

    def __init__(self) -> None:
        self._registry_cache: dict[pathlib.Path, Optional[frozenset[str]]] = {}

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            ctx.path.parent.name == "experiments"
            and ctx.stem not in _NON_EXPERIMENTS
            and _EXPERIMENT_STEM.match(ctx.stem) is not None
        )

    def check(self, ctx: FileContext) -> list[Violation]:
        out: list[Violation] = []
        self._check_registered(ctx, out)

        run = _find_run(ctx.tree)
        if run is None:
            out.append(
                ctx.violation(
                    ctx.tree,
                    self.code,
                    "experiment module has no top-level run() entry "
                    "point; the runner cannot dispatch it",
                )
            )
        else:
            if not _all_params_defaulted(run):
                out.append(
                    ctx.violation(
                        run,
                        self.code,
                        "run() has parameters without defaults; the "
                        "runner calls run(**overrides) with possibly "
                        "no overrides",
                    )
                )
            if _imports_stochastic_toolkit(ctx.tree) and not _accepts_seed(run):
                out.append(
                    ctx.violation(
                        run,
                        self.code,
                        "stochastic experiment (imports the seeded "
                        "toolkit) but run() accepts no seed/seeds/"
                        "**kwargs; --seed cannot be threaded through",
                    )
                )

        if not _has_render(ctx.tree):
            out.append(
                ctx.violation(
                    ctx.tree,
                    self.code,
                    "no render protocol: define module-level render() "
                    "or return an object with a .render() method",
                )
            )
        return out

    def _check_registered(self, ctx: FileContext, out: list[Violation]) -> None:
        init_path = ctx.path.parent / "__init__.py"
        if init_path not in self._registry_cache:
            self._registry_cache[init_path] = _registry_names(init_path)
        registered = self._registry_cache[init_path]
        if registered is None:
            out.append(
                ctx.violation(
                    ctx.tree,
                    self.code,
                    "no parsable EXPERIMENTS registry found in sibling "
                    "__init__.py; experiments must be registered",
                )
            )
        elif ctx.stem not in registered:
            out.append(
                ctx.violation(
                    ctx.tree,
                    self.code,
                    f"module '{ctx.stem}' is not registered in "
                    "EXPERIMENTS in its package __init__.py; the "
                    "runner cannot discover it",
                )
            )
