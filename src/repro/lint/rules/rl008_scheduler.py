"""RL008: scheduler determinism at equal timestamps.

The event core orders equal-time events by ``(priority, seq)`` -- PR 3's
hand-written ``Event.__lt__``. A call site that schedules at a
potentially-equal timestamp (periodic ticks, zero-delay forwards,
simultaneous session starts) and *omits* the priority leans on whatever
the default happens to be; if a refactor of ``__lt__`` or of the default
ever reorders ties, every golden trace shifts silently. Requiring the
tiebreaker to be explicit at the call site turns that silent
reordering into a loud diff.

Every ``schedule``/``schedule_at``/``schedule_many`` call must therefore
pass ``priority`` explicitly -- unless the timestamp expression flows an
RNG draw (``rng.jittered(...)``, ``rng.uniform(...)`` or a local bound
from one), which makes an exact tie measure-zero. ``repro.sim.engine``
itself is exempt: it is the implementation, not a call site.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Optional

from repro.lint.flow.project import Project
from repro.lint.rules.base import FileContext, FlowRule
from repro.lint.violations import Violation

_ENGINE_MODULE = "repro.sim.engine"
_SCHEDULE_METHODS = {
    "schedule": (2, 3),  # (args before priority, priority position)
    "schedule_at": (2, 3),
    "schedule_many": (1, 2),
}
_RNG_DRAW_METHODS = frozenset(
    {
        "jittered",
        "uniform",
        "random",
        "expovariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "triangular",
        "betavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
        "randint",
        "randrange",
        "choice",
    }
)


class SchedulerTiebreakRule(FlowRule):
    code: ClassVar[str] = "RL008"
    title: ClassVar[str] = "scheduler determinism"
    rationale: ClassVar[str] = (
        "events scheduled at potentially-equal timestamps must pass an "
        "explicit priority tiebreaker; relying on the implicit default "
        "makes golden traces hostage to the event core's tie order"
    )

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        out: list[Violation] = []
        for name in sorted(project.modules):
            if only is not None and name not in only:
                continue
            if name == _ENGINE_MODULE:
                continue
            info = project.modules[name]
            tree = info.ctx.tree
            for scope in ast.walk(tree):
                if not isinstance(scope, ast.FunctionDef):
                    continue
                jittered = _rng_assigned_names(scope)
                for node in ast.walk(scope):
                    if not isinstance(node, ast.Call):
                        continue
                    violation = self._check_call(
                        info.ctx, node, jittered
                    )
                    if violation is not None:
                        out.append(violation)
        return out

    def _check_call(
        self, ctx: FileContext, node: ast.Call, jittered: set[str]
    ) -> Optional[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        spec = _SCHEDULE_METHODS.get(func.attr)
        if spec is None:
            return None
        _, priority_pos = spec
        if any(kw.arg == "priority" for kw in node.keywords):
            return None
        if len(node.args) > priority_pos - 1:
            return None  # explicit positional priority
        if node.args and _flows_rng_draw(node.args[0], jittered):
            return None  # jittered timestamp: ties are measure-zero
        return ctx.violation(
            node,
            self.code,
            f"{func.attr}() without an explicit priority tiebreaker; "
            f"pass priority=... (equal-time events otherwise depend on "
            f"the event core's default tie order)",
        )


def _rng_assigned_names(scope: ast.FunctionDef) -> set[str]:
    """Locals bound (anywhere in the function) from an RNG draw."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        elif isinstance(node, ast.NamedExpr):
            value, targets = node.value, [node.target]
        else:
            continue
        if not _is_rng_draw(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_rng_draw(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _RNG_DRAW_METHODS
    )


def _flows_rng_draw(expr: ast.expr, jittered: set[str]) -> bool:
    for node in ast.walk(expr):
        if _is_rng_draw(node):
            return True
        if isinstance(node, ast.Name) and node.id in jittered:
            return True
    return False
