"""RL003: no unit-mixing arithmetic in the core QA math.

The paper's buffer math (Section 4) works in three unit systems at once:
bandwidth in kilobits/s, buffered data in bytes, time in seconds.
``repro.core.units`` provides the conversion helpers (``kbps_to_bytes``,
``ms``, ...) precisely so that conversions happen at construction, not
mid-expression. Adding or comparing a helper-constructed value against a
bare numeric literal is the signature of a units bug (a raw ``1000``
that should have been ``KILOBYTE``, a raw ``0.1`` that should have been
``ms(100)``).

The rule runs a shallow taint pass per expression: a value is *unitful*
if it is a call to a units helper, a reference to ``KILOBYTE``, or an
arithmetic expression containing a unitful operand. An ``Add``/``Sub``
binop or a comparison that mixes a unitful operand with a raw numeric
literal is flagged. Multiplication and division are exempt -- scaling a
unitful value by a dimensionless factor is exactly how the helpers are
meant to be used.

Annotate intentional mixing with ``# repro-lint: disable=RL003`` on the
offending line.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import FileContext, Rule, import_aliases
from repro.lint.violations import Violation

#: Unit-constructing helpers exported by repro.core.units.
UNIT_HELPERS = frozenset(
    {"kbps_to_bytes", "kBps_to_bytes", "bytes_to_kBps", "ms"}
)
UNIT_CONSTANTS = frozenset({"KILOBYTE"})

#: Core modules always checked, even before they adopt the helpers.
CORE_MATH_STEMS = frozenset({"formulas", "add_drop", "draining", "filling"})

_UNITS_MODULE = "repro.core.units"


def _imports_units(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == _UNITS_MODULE for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == _UNITS_MODULE:
                return True
    return False


def _is_raw_number(node: ast.AST) -> bool:
    """A non-zero bare numeric literal (zero is dimensionless-safe)."""
    if isinstance(node, ast.Constant) and type(node.value) in (int, float):
        return node.value != 0
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_raw_number(node.operand)
    )


class UnitsDisciplineRule(Rule):
    code = "RL003"
    title = "units discipline"
    rationale = (
        "Buffer math mixes kilobits, bytes and seconds; adding or "
        "comparing a units-helper value against a bare literal is the "
        "signature of a conversion bug."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.stem == "units":
            return False
        if ctx.in_dirs(("core",)) and ctx.stem in CORE_MATH_STEMS:
            return True
        return _imports_units(ctx.tree)

    def check(self, ctx: FileContext) -> list[Violation]:
        aliases = import_aliases(ctx.tree)
        unit_names = {
            local
            for local, canonical in aliases.items()
            if canonical.rsplit(".", 1)[-1] in (UNIT_HELPERS | UNIT_CONSTANTS)
            and canonical.startswith(_UNITS_MODULE)
        }
        # Helpers referenced through the module object (units.ms(...))
        # count too; collect module aliases for repro.core.units.
        module_names = {
            local
            for local, canonical in aliases.items()
            if canonical in (_UNITS_MODULE, "repro.core")
        }
        finder = _MixFinder(ctx, self.code, unit_names, module_names)
        finder.visit(ctx.tree)
        return finder.out


class _MixFinder(ast.NodeVisitor):
    def __init__(
        self,
        ctx: FileContext,
        code: str,
        unit_names: set[str],
        module_names: set[str],
    ) -> None:
        self.ctx = ctx
        self.code = code
        self.unit_names = unit_names
        self.module_names = module_names
        self.out: list[Violation] = []

    # ------------------------------------------------------------- taint

    def _is_unitful(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self.unit_names:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in UNIT_HELPERS
                and isinstance(func.value, ast.Name)
                and func.value.id in self.module_names
            ):
                return True
            return False
        if isinstance(node, ast.Name) and node.id in self.unit_names:
            return True
        if (
            isinstance(node, ast.Attribute)
            and node.attr in UNIT_CONSTANTS
            and isinstance(node.value, ast.Name)
            and node.value.id in self.module_names
        ):
            return True
        if isinstance(node, ast.BinOp):
            return self._is_unitful(node.left) or self._is_unitful(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_unitful(node.operand)
        return False

    # ----------------------------------------------------------- visitors

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            pairs = ((node.left, node.right), (node.right, node.left))
            for unitful, other in pairs:
                if self._is_unitful(unitful) and _is_raw_number(other):
                    self.out.append(
                        self.ctx.violation(
                            node,
                            self.code,
                            "adds/subtracts a units-helper value and a "
                            "raw numeric literal; construct the literal "
                            "with the matching repro.core.units helper",
                        )
                    )
                    break
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        has_unitful = any(self._is_unitful(op) for op in operands)
        has_raw = any(_is_raw_number(op) for op in operands)
        if has_unitful and has_raw:
            self.out.append(
                self.ctx.violation(
                    node,
                    self.code,
                    "compares a units-helper value against a raw numeric "
                    "literal; construct the literal with the matching "
                    "repro.core.units helper",
                )
            )
        self.generic_visit(node)
