"""RL010: process-safety of worker-executed code.

The experiment runner fans cache misses out to a
``ProcessPoolExecutor``; the determinism contract is that ``jobs > 1``
and ``jobs = 1`` produce byte-identical results. Two classes of bug
silently break it:

- **Unpicklable tasks.** A lambda or nested ``def`` handed to
  ``submit``/``map`` raises ``PicklingError`` at runtime -- but only on
  the parallel path, which the fast unit-test configuration never
  takes.
- **Mutable module globals written from worker-executed code.** A
  worker process mutates its *own copy* of the module global; the
  parent never sees the write. Cache registries, memo dicts, and
  counters filled in a worker evaporate when the pool joins, so the
  parallel run diverges from the serial one.

The rule finds executor/pool construction sites, takes every
module-level function passed to ``submit``/``map`` as a worker entry
point, and walks the project call graph (bounded depth) from each
entry. Any function reached whose summary records a write to a module
global -- a ``global`` rebind or an in-place mutation of a module-level
container -- is flagged at the write site.

Unlike the other flow rules, a finding here ties *two* modules
together: the submitter and the (possibly unrelated) module containing
the write. Findings therefore do not respect import-cone locality, and
the incremental cache stores this rule's results under a whole-project
key (``cone_cacheable = False``) instead of per-module cones.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Optional

from repro.lint.flow.project import Project
from repro.lint.rules.base import FlowRule, import_aliases, resolve_dotted
from repro.lint.violations import Violation

#: Call targets that construct a process pool.
_POOL_CTORS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.get_context",
})

#: Executor methods that take a callable to run in a worker.
_SUBMIT_METHODS = frozenset({
    "submit", "map", "apply", "apply_async", "map_async", "imap",
    "imap_unordered", "starmap",
})

#: Call-graph depth walked from each worker entry point.
_REACH_DEPTH = 6


class ProcessSafetyRule(FlowRule):
    code: ClassVar[str] = "RL010"
    title: ClassVar[str] = "process safety"
    rationale: ClassVar[str] = (
        "code executed in ProcessPoolExecutor workers must pickle and "
        "must not write module globals: a worker mutates its own copy, "
        "so parallel runs silently diverge from serial ones"
    )

    #: Findings depend on submitter->worker edges that cross import
    #: cones; cached under a whole-project key (see module docstring).
    cone_cacheable: ClassVar[bool] = False

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        del only  # findings are not cone-local; always whole-project
        out: list[Violation] = []
        entries: list[str] = []
        for name in sorted(project.modules):
            info = project.modules[name]
            aliases = import_aliases(info.ctx.tree)
            pools = _pool_locals(info.ctx.tree, aliases)
            if not pools:
                continue
            for node in ast.walk(info.ctx.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SUBMIT_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pools
                    and node.args
                ):
                    continue
                task = node.args[0]
                if isinstance(task, ast.Lambda):
                    out.append(info.ctx.violation(
                        task, self.code,
                        f"lambda passed to {node.func.attr}(); lambdas "
                        f"do not pickle into worker processes",
                    ))
                    continue
                if isinstance(task, ast.Name):
                    if task.id in _nested_defs(info.ctx.tree, node):
                        out.append(info.ctx.violation(
                            task, self.code,
                            f"nested function '{task.id}' passed to "
                            f"{node.func.attr}(); closures do not pickle "
                            f"into worker processes",
                        ))
                        continue
                    entry = self._entry_qualname(project, name, task.id)
                    if entry is not None:
                        entries.append(entry)
        out.extend(self._global_write_findings(project, entries))
        return out

    def _entry_qualname(
        self, project: Project, module: str, name: str
    ) -> Optional[str]:
        info = project.modules[module]
        if name in info.symbols.functions:
            return f"{module}.{name}"
        target = info.symbols.imports.get(name)
        if target is not None:
            resolved = project.resolve_function(target)
            if resolved is not None:
                owner, fn = resolved
                return f"{owner}.{fn.name}"
        return None

    def _global_write_findings(
        self, project: Project, entries: list[str]
    ) -> list[Violation]:
        if not entries:
            return []
        graph = project.call_graph()
        summaries = project.summaries()
        reached: set[str] = set()
        for entry in entries:
            reached |= graph.reachable(entry, max_depth=_REACH_DEPTH)
        out: list[Violation] = []
        seen: set[tuple[str, int, int, str]] = set()
        for qualname in sorted(reached):
            summary = summaries.get(qualname)
            node = graph.nodes.get(qualname)
            if summary is None or node is None:
                continue
            ctx = project.modules[node.module].ctx
            for write in summary.global_writes:
                key = (
                    node.module,
                    getattr(write.node, "lineno", 0),
                    getattr(write.node, "col_offset", 0),
                    write.name,
                )
                if key in seen:
                    continue
                seen.add(key)
                verb = (
                    "rebound" if write.kind == "rebind" else "mutated"
                )
                out.append(ctx.violation(
                    write.node, self.code,
                    f"module global '{write.name}' {verb} in "
                    f"{node.func.name}(), which runs in worker "
                    f"processes; the write is lost when the pool joins",
                ))
        return out


def _pool_locals(tree: ast.Module, aliases: dict[str, str]) -> set[str]:
    """Names bound (assignment or ``with ... as``) to a process pool."""
    pools: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            if not _is_pool_ctor(node.value, aliases):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    pools.add(target.id)
        elif isinstance(node, ast.With):
            for item in node.items:
                if (
                    _is_pool_ctor(item.context_expr, aliases)
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    pools.add(item.optional_vars.id)
    return pools


def _is_pool_ctor(node: ast.expr, aliases: dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = resolve_dotted(node.func, aliases)
    return target in _POOL_CTORS


def _nested_defs(tree: ast.Module, site: ast.AST) -> set[str]:
    """Function names defined inside the function enclosing ``site``."""
    enclosing: Optional[ast.FunctionDef] = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is site:
                    enclosing = node  # innermost wins: keep walking
    if enclosing is None:
        return set()
    out: set[str] = set()
    for node in ast.walk(enclosing):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not enclosing
        ):
            out.add(node.name)
    return out
