"""RL014: shared mutable state written across an ``await``.

Single-threaded asyncio removes data races but not *interleaving*
races: every ``await`` is a point where any other task or callback can
run. A coroutine that reads shared state, suspends, and then writes it
back has re-ordered itself against every other writer of that state --
the classic read-modify-write lost update, just with ``await`` instead
of a thread switch.

The rule consumes the async graph's span analysis and task contexts:

- a *spanning write* is a write to a ``self`` attribute (or mutable
  module global) in a coroutine where the same attribute was accessed
  earlier in the body with an ``await`` in between. Loops containing an
  ``await`` are unrolled once, so iteration N's access pairs with
  iteration N+1's write. A single read-modify-write statement
  (``self.n += 1``) never spans -- statements are atomic between
  awaits;
- the write is only a finding when the attribute is *shared*: accessed
  from at least two concurrently-live contexts (two different spawn
  targets, or a spawn target and the event-loop callback context);
- accesses whose every occurrence sits inside ``async with`` on an
  ``asyncio.Lock``/``Semaphore``/``Condition`` attribute are exempt,
  as is state written only during ``__init__`` (construction handoff
  happens-before any sharing).

Fix patterns: make the update a single statement, take the shared
object local before the first ``await``, or guard the span with an
``asyncio.Lock``.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from repro.lint.flow.project import Project
from repro.lint.rules.base import FlowRule
from repro.lint.violations import Violation


class AsyncSharedStateRule(FlowRule):
    code: ClassVar[str] = "RL014"
    title: ClassVar[str] = "cross-task state written across an await"
    rationale: ClassVar[str] = (
        "an await between reading and writing shared state is a lost-"
        "update window: another task or callback can mutate the same "
        "attribute while this coroutine is suspended"
    )

    uses_async_facts: ClassVar[bool] = True

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        graph = project.asyncgraph()
        key_contexts = graph.access_contexts()
        guarded = graph.guarded_keys()
        out: list[Violation] = []
        for qualname in sorted(graph.spans):
            facts = graph.functions[qualname]
            if only is not None and facts.module not in only:
                continue
            ctx = project.modules[facts.module].ctx
            for span in graph.spans[qualname]:
                key = (span.owner, span.attr)
                contexts = key_contexts.get(key, set())
                if len(contexts) < 2 or key in guarded:
                    continue
                what = (
                    f"{_leaf(span.owner)}.{span.attr}"
                    if span.owner
                    else f"module global '{span.attr}'"
                )
                others = sorted(
                    _leaf(c) for c in contexts if qualname not in
                    graph.contexts.get(c, frozenset())
                )
                shared_with = (
                    f"also touched from {', '.join(others)}"
                    if others
                    else f"shared across {len(contexts)} task contexts"
                )
                out.append(ctx.violation(
                    span.node, self.code,
                    f"{what} written after an await in "
                    f"{_leaf(qualname)}() but {shared_with}; the "
                    f"suspension is a lost-update window -- update in "
                    f"one statement or guard with asyncio.Lock",
                ))
        return out


def _leaf(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]
