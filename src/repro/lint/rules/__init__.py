"""Rule registry: one place that knows every rule class."""

from __future__ import annotations

from repro.lint.rules.base import FileContext, Rule
from repro.lint.rules.rl001_determinism import DeterminismRule
from repro.lint.rules.rl002_protocol import ExperimentProtocolRule
from repro.lint.rules.rl003_units import UnitsDisciplineRule
from repro.lint.rules.rl004_cache import CacheKeyHygieneRule

__all__ = [
    "CacheKeyHygieneRule",
    "DeterminismRule",
    "ExperimentProtocolRule",
    "FileContext",
    "Rule",
    "UnitsDisciplineRule",
    "default_rules",
]


def default_rules() -> tuple[Rule, ...]:
    """Fresh instances of every rule, in code order.

    A factory (not a module-level tuple) because rules may memoize
    per-run state -- RL002 caches each experiments directory's registry
    -- and invocations must not see each other's caches.
    """
    return (
        DeterminismRule(),
        ExperimentProtocolRule(),
        UnitsDisciplineRule(),
        CacheKeyHygieneRule(),
    )
