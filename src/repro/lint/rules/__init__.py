"""Rule registry: one place that knows every rule class."""

from __future__ import annotations

from repro.lint.rules.base import FileContext, FlowRule, Rule
from repro.lint.rules.rl001_determinism import DeterminismRule
from repro.lint.rules.rl002_protocol import ExperimentProtocolRule
from repro.lint.rules.rl003_units import UnitsDisciplineRule
from repro.lint.rules.rl004_cache import CacheKeyHygieneRule
from repro.lint.rules.rl005_seedflow import SeedFlowRule
from repro.lint.rules.rl006_dimensions import DimensionRule
from repro.lint.rules.rl007_telemetry import TelemetryCostRule
from repro.lint.rules.rl008_scheduler import SchedulerTiebreakRule
from repro.lint.rules.rl009_tolerances import ToleranceRule
from repro.lint.rules.rl010_process import ProcessSafetyRule
from repro.lint.rules.rl011_simtime import SimTimeRule
from repro.lint.rules.rl012_numpy import NumpyDisciplineRule
from repro.lint.rules.rl013_blocking import AsyncBlockingRule
from repro.lint.rules.rl014_races import AsyncSharedStateRule
from repro.lint.rules.rl015_taskhygiene import AsyncTaskHygieneRule
from repro.lint.rules.rl016_typestate import SessionTypestateRule

__all__ = [
    "AsyncBlockingRule",
    "AsyncSharedStateRule",
    "AsyncTaskHygieneRule",
    "CacheKeyHygieneRule",
    "DeterminismRule",
    "DimensionRule",
    "ExperimentProtocolRule",
    "FileContext",
    "FlowRule",
    "NumpyDisciplineRule",
    "ProcessSafetyRule",
    "Rule",
    "SchedulerTiebreakRule",
    "SeedFlowRule",
    "SessionTypestateRule",
    "SimTimeRule",
    "TelemetryCostRule",
    "ToleranceRule",
    "UnitsDisciplineRule",
    "default_rules",
]


def default_rules() -> tuple[Rule, ...]:
    """Fresh instances of every rule, in code order.

    A factory (not a module-level tuple) because rules may memoize
    per-run state -- RL002 caches each experiments directory's registry
    -- and invocations must not see each other's caches. RL005-RL012 are
    :class:`FlowRule` subclasses: they run once per invocation over the
    whole-program :class:`~repro.lint.flow.project.Project` instead of
    file by file.
    """
    return (
        DeterminismRule(),
        ExperimentProtocolRule(),
        UnitsDisciplineRule(),
        CacheKeyHygieneRule(),
        SeedFlowRule(),
        DimensionRule(),
        TelemetryCostRule(),
        SchedulerTiebreakRule(),
        ToleranceRule(),
        ProcessSafetyRule(),
        SimTimeRule(),
        NumpyDisciplineRule(),
        AsyncBlockingRule(),
        AsyncSharedStateRule(),
        AsyncTaskHygieneRule(),
        SessionTypestateRule(),
    )
