"""Rule plumbing: per-file context, the rule base class, AST helpers."""

from __future__ import annotations

import abc
import ast
import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterable, Optional

from repro.lint.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.flow.project import Project


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one source file.

    ``display_path`` is the path as the user spelled it (relative paths
    stay relative so output is stable across machines); ``path`` is the
    resolved location used for sibling lookups (RL002's registry).
    """

    path: pathlib.Path
    display_path: str
    source: str
    tree: ast.Module

    @property
    def stem(self) -> str:
        return self.path.stem

    def dir_parts(self) -> tuple[str, ...]:
        """Directory components of the path (the filename excluded)."""
        return self.path.parent.parts

    def in_dirs(self, names: Iterable[str]) -> bool:
        """Does any directory component match one of ``names``?"""
        wanted = set(names)
        return any(part in wanted for part in self.dir_parts())

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        """A violation anchored at ``node``'s location."""
        return Violation(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


class Rule(abc.ABC):
    """One named check with a stable code.

    Rules are stateless between runs except for per-run memoization
    (RL002 caches each experiments directory's registry); the CLI builds
    a fresh rule set per invocation via :func:`repro.lint.rules.
    default_rules`.
    """

    code: ClassVar[str]
    title: ClassVar[str]
    rationale: ClassVar[str]

    @abc.abstractmethod
    def applies_to(self, ctx: FileContext) -> bool:
        """Should this rule inspect ``ctx`` at all?"""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> list[Violation]:
        """All violations of this rule in ``ctx``."""


class FlowRule(Rule):
    """A rule that runs once over the whole-program :class:`Project`.

    Flow rules never run through the per-file ``check`` path -- the CLI
    builds one Project from every parsed file in the run and calls
    :meth:`check_project` once. Findings are still per-file
    :class:`Violation` objects, so suppressions and report formats apply
    unchanged.
    """

    #: Whether per-module findings depend only on the module's import
    #: closure. True for every flow rule except RL010, whose findings in
    #: module B can depend on a *caller* in module A -- outside B's
    #: closure -- so its results are cached under a whole-project key
    #: instead of per-module cones.
    cone_cacheable: ClassVar[bool] = True

    #: Whether findings consume the async fact layer
    #: (:meth:`repro.lint.flow.project.Project.asyncgraph`). Async facts
    #: flow both ways along call edges (a spawner types its target's
    #: context; a callee's blocking site surfaces at the caller), so the
    #: cache keys these rules on the *bidirectional* import closure --
    #: :func:`repro.lint.cache.async_digests` -- instead of the forward
    #: cone alone.
    uses_async_facts: ClassVar[bool] = False

    def applies_to(self, ctx: FileContext) -> bool:
        return False

    def check(self, ctx: FileContext) -> list[Violation]:
        return []

    @abc.abstractmethod
    def check_project(
        self,
        project: "Project",
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        """All violations of this rule across the project.

        When ``only`` is given, restrict reporting to findings whose
        *attribution module* (the module a finding's path belongs to) is
        in the set -- the incremental cache supplies the dirty cone and
        merges cached findings for the clean remainder.
        """


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted path they import.

    ``import numpy as np`` maps ``np -> numpy``; ``import numpy.random``
    maps ``numpy -> numpy``; ``from datetime import datetime as dt``
    maps ``dt -> datetime.datetime``. Relative imports are skipped (the
    repo uses absolute imports throughout).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: dict[str, str]) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute use, through imports.

    ``np.random.rand`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``; a chain whose head is not an imported name
    resolves to None (locals never alias banned modules in this
    analysis -- an accepted imprecision).
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical = aliases.get(head)
    if canonical is None:
        return None
    return f"{canonical}.{rest}" if rest else canonical
