"""RL011: simulation-time discipline at scheduling call sites.

The event engine's clock only moves forward; an event scheduled in the
past (``schedule`` with a negative delay, ``schedule_at`` earlier than
``sim.now``) executes *immediately but out of order* relative to the
events that put the clock where it is -- a silent causality inversion
that shifts every subsequent golden trace. The engine cannot reject
such events without taking a branch on the per-event hot path, so the
discipline is enforced statically at every call site instead:

- **Delays are seconds.** The first argument of ``schedule``/
  ``schedule_at``/``schedule_many`` is typed by the dataflow engine
  (summaries included, so a delay computed by a helper is still seen);
  a value that definitely carries a non-time dimension (bytes, a rate)
  is a transposed-argument bug.
- **No negative literal delays.** ``schedule(-0.1, ...)`` is flagged
  outright.
- **Anchor arithmetic must be clamped.** ``schedule(start - sim.now,
  ...)`` goes negative whenever the anchor has passed; the repo idiom
  is ``schedule(max(0.0, start - sim.now), ...)`` and the unclamped
  subtraction is flagged. Likewise ``schedule_at(sim.now - x, ...)``
  is in the past for any positive ``x``.

``repro.sim.engine`` itself is exempt: it implements the clock.
"""

from __future__ import annotations

import ast
from typing import Any, ClassVar, Optional

from repro.lint.flow.dataflow import FunctionAnalysis
from repro.lint.flow.project import Project
from repro.lint.flow.summaries import SummaryTable
from repro.lint.flow.symbols import ClassInfo, FunctionInfo, TypeRef
from repro.lint.rules.base import FlowRule
from repro.lint.violations import Violation

_ENGINE_MODULE = "repro.sim.engine"

#: Scheduling methods and whether their first argument is a delay
#: (relative, must be >= 0) or an absolute timestamp.
_SCHEDULE_METHODS = {
    "schedule": "delay",
    "schedule_at": "absolute",
    "schedule_many": "delay",
}


class _Finding:
    __slots__ = ("node", "message")

    def __init__(self, node: ast.AST, message: str) -> None:
        self.node = node
        self.message = message


class _TimeAnalysis(FunctionAnalysis):
    """The dataflow engine, intercepting scheduling call sites."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.findings: list[_Finding] = []

    def _infer_Call(self, node: ast.Call, env: dict[str, TypeRef]) -> TypeRef:
        func = node.func
        if isinstance(func, ast.Attribute):
            mode = _SCHEDULE_METHODS.get(func.attr)
            if mode is not None and node.args:
                self._check_time_arg(node, func.attr, mode, env)
        return super()._infer_Call(node, env)

    def _check_time_arg(
        self, node: ast.Call, method: str, mode: str, env: dict[str, TypeRef]
    ) -> None:
        arg = node.args[0]
        if isinstance(arg, ast.Starred):
            return
        val = self.infer(arg, env)
        if (
            val.kind == "num"
            and val.dim is not None
            and (val.dim.data != 0 or val.dim.time not in (0, 1))
        ):
            self.findings.append(_Finding(
                node,
                f"{method}() given a {val.dim.render()} quantity as its "
                f"time argument; delays and timestamps are seconds",
            ))
            return
        literal = _negative_literal(arg)
        if literal is not None and mode == "delay":
            self.findings.append(_Finding(
                node,
                f"{method}() with negative delay {literal}; the clock "
                f"only moves forward",
            ))
            return
        if mode == "delay" and _is_unclamped_anchor_sub(arg):
            self.findings.append(_Finding(
                node,
                f"{method}() delay 'anchor - now' goes negative once the "
                f"anchor has passed; clamp with max(0.0, ...)",
            ))
        elif mode == "absolute" and _is_now_minus(arg):
            self.findings.append(_Finding(
                node,
                f"{method}() at 'now - ...' schedules in the past; "
                f"events must land at or after the current time",
            ))


def _negative_literal(node: ast.expr) -> Optional[float]:
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
        and not isinstance(node.operand.value, bool)
        and node.operand.value > 0
    ):
        return -float(node.operand.value)
    return None


def _is_now_attr(node: ast.expr) -> bool:
    """``sim.now`` / ``self.sim.now`` / a bare ``now`` local."""
    if isinstance(node, ast.Attribute):
        return node.attr == "now"
    return isinstance(node, ast.Name) and node.id == "now"


def _is_unclamped_anchor_sub(arg: ast.expr) -> bool:
    """``anchor - ...now`` not wrapped in ``max(...)``."""
    return (
        isinstance(arg, ast.BinOp)
        and isinstance(arg.op, ast.Sub)
        and _is_now_attr(arg.right)
        and not _is_now_attr(arg.left)
    )


def _is_now_minus(arg: ast.expr) -> bool:
    """``...now - positive-something``."""
    return (
        isinstance(arg, ast.BinOp)
        and isinstance(arg.op, ast.Sub)
        and _is_now_attr(arg.left)
    )


class SimTimeRule(FlowRule):
    code: ClassVar[str] = "RL011"
    title: ClassVar[str] = "simulation-time discipline"
    rationale: ClassVar[str] = (
        "events scheduled before the current simulation time execute "
        "out of causal order and shift every later golden trace; delays "
        "must be nonnegative seconds and anchor arithmetic clamped"
    )

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        out: list[Violation] = []
        summaries = project.summaries()
        for name in sorted(project.modules):
            if only is not None and name not in only:
                continue
            if name == _ENGINE_MODULE:
                continue
            info = project.modules[name]
            if not _has_schedule_call(info.ctx.tree):
                continue
            jobs: list[tuple[FunctionInfo, Optional[ClassInfo]]] = [
                (fn, None) for fn in info.symbols.functions.values()
            ]
            for cls in info.symbols.classes.values():
                jobs.extend((method, cls) for method in cls.methods.values())
            for func, cls in jobs:
                analysis = _TimeAnalysis(
                    project, name, func, cls, summaries=summaries
                )
                try:
                    analysis.run()
                except RecursionError:  # pragma: no cover - pathological
                    continue
                for finding in analysis.findings:
                    out.append(info.ctx.violation(
                        finding.node,
                        self.code,
                        f"in {func.name}(): {finding.message}",
                    ))
        return out


def _has_schedule_call(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCHEDULE_METHODS
        ):
            return True
    return False
