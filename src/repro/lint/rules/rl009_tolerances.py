"""RL009: float-comparison discipline.

The QA math runs on floats whose exact bit patterns depend on operation
order -- ``first_crossing`` scans, ramp integrals, fluid residuals. Raw
``==``/``!=`` on such quantities encodes an accident of evaluation order
as a behavioural switch: the comparison flips when a refactor reorders
arithmetic that is mathematically identical. Every tolerance the repo
relies on therefore lives in :mod:`repro.core.tolerances`, and
unit-bearing floats must be compared through its helpers (``close``,
``is_zero``, ``at_least``) or an explicit tolerance from that module.

Two checks:

- **Exact equality on unit-bearing floats.** The dataflow engine (the
  same one RL006 uses, summaries included, so facts survive helper
  extraction) types both operands of every ``==``/``!=``; when either
  side definitely carries a float-backed unit (``Seconds``, ``Bytes``,
  ``B/s``...), the comparison is flagged. Int-backed quantities
  (``int``, ``bool``, ``ByteCount``) compare exactly by construction
  and stay silent, as do unannotated floats (unknown, not definite).

- **Decentralized tolerance constants.** A module-level ``EPS``/
  ``*_TOL``/``*_SLACK``-style constant bound to a small nonzero float
  literal outside ``repro.core.tolerances`` is a fork of the central
  table waiting to drift; it is flagged wherever it is defined.
"""

from __future__ import annotations

import ast
import re
from typing import Any, ClassVar, Optional

from repro.lint.flow.dataflow import FunctionAnalysis
from repro.lint.flow.project import ModuleInfo, Project
from repro.lint.flow.summaries import SummaryTable
from repro.lint.flow.symbols import ClassInfo, FunctionInfo, TypeRef
from repro.lint.flow.units import UNITS_MODULE
from repro.lint.rules.base import FlowRule
from repro.lint.violations import Violation

#: The sanctioned home of tolerance constants and comparison helpers.
TOLERANCES_MODULE = "repro.core.tolerances"

#: Module-level names that look like a tolerance definition.
_TOLERANCE_NAME = re.compile(r"(?i)(eps|tol|slack)")

#: Literals this small (and nonzero) read as comparison tolerances, not
#: as physical quantities or configuration defaults.
_TOLERANCE_CEILING = 0.01


class _ExactCompare:
    """One flagged ``==``/``!=`` with the offending operand's rendering."""

    __slots__ = ("node", "op", "rendered")

    def __init__(self, node: ast.Compare, op: str, rendered: str) -> None:
        self.node = node
        self.op = op
        self.rendered = rendered


class _CompareAnalysis(FunctionAnalysis):
    """RL006's engine, additionally recording exact float equality."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.exact: list[_ExactCompare] = []

    def _infer_Compare(
        self, node: ast.Compare, env: dict[str, TypeRef]
    ) -> TypeRef:
        prev = self.infer(node.left, env)
        for op, comparator in zip(node.ops, node.comparators):
            current = self.infer(comparator, env)
            if isinstance(op, (ast.Eq, ast.NotEq)):
                offender = _float_operand(prev, current)
                if offender is not None:
                    self.exact.append(_ExactCompare(
                        node,
                        "==" if isinstance(op, ast.Eq) else "!=",
                        offender,
                    ))
            prev = current
        return super()._infer_Compare(node, env)


def _float_operand(a: TypeRef, b: TypeRef) -> Optional[str]:
    """Rendering of the unit-bearing float side of an exact comparison.

    Fires only on a *definite* float-backed unit: a known, non-empty
    dimension that is not int-backed, compared against a number or a
    literal. Unknown values and int-backed scalars never flag.
    """
    for side, other in ((a, b), (b, a)):
        if (
            side.kind == "num"
            and side.dim is not None
            and not side.dim.dimensionless
            and not side.integral
            and other.kind in ("num", "lit")
        ):
            return side.dim.render()
    return None


class ToleranceRule(FlowRule):
    code: ClassVar[str] = "RL009"
    title: ClassVar[str] = "float comparison discipline"
    rationale: ClassVar[str] = (
        "unit-bearing floats must be compared through repro.core."
        "tolerances (close/is_zero/at_least); raw ==/!= flips with "
        "operation order, and per-module tolerance constants drift "
        "apart from the central table"
    )

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        out: list[Violation] = []
        summaries = project.summaries()
        for name in sorted(project.modules):
            if only is not None and name not in only:
                continue
            info = project.modules[name]
            if name != TOLERANCES_MODULE and not name.endswith(".tolerances"):
                out.extend(self._decentralized_constants(info))
            if _uses_units(project, name):
                out.extend(self._exact_compares(project, name, summaries))
        return out

    # ------------------------------------------------- tolerance constants

    def _decentralized_constants(self, info: ModuleInfo) -> list[Violation]:
        out: list[Violation] = []
        for stmt in info.ctx.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name):
                continue
            if not _TOLERANCE_NAME.search(target.id):
                continue
            literal = _float_literal(value)
            if literal is None or not 0 < abs(literal) < _TOLERANCE_CEILING:
                continue
            out.append(info.ctx.violation(
                stmt,
                self.code,
                f"tolerance constant '{target.id}' defined outside "
                f"{TOLERANCES_MODULE}; centralize it there (per-module "
                f"tolerances drift independently)",
            ))
        return out

    # --------------------------------------------------- exact comparisons

    def _exact_compares(
        self, project: Project, module: str, summaries: SummaryTable
    ) -> list[Violation]:
        info = project.modules[module]
        out: list[Violation] = []
        jobs: list[tuple[FunctionInfo, Optional[ClassInfo]]] = [
            (fn, None) for fn in info.symbols.functions.values()
        ]
        for cls in info.symbols.classes.values():
            jobs.extend((method, cls) for method in cls.methods.values())
        for func, cls in jobs:
            analysis = _CompareAnalysis(
                project, module, func, cls, summaries=summaries
            )
            try:
                analysis.run()
            except RecursionError:  # pragma: no cover - pathological
                continue
            for found in analysis.exact:
                out.append(info.ctx.violation(
                    found.node,
                    self.code,
                    f"in {func.name}(): exact '{found.op}' on a "
                    f"{found.rendered} float; use "
                    f"{TOLERANCES_MODULE}.close()/is_zero() "
                    f"(bit-exact equality flips with operation order)",
                ))
        return out


def _uses_units(project: Project, module: str) -> bool:
    info = project.modules[module]
    if info.name == UNITS_MODULE:
        return False
    for target in info.symbols.imports.values():
        if target == UNITS_MODULE or target.startswith(UNITS_MODULE + "."):
            return True
    return False


def _float_literal(node: Optional[ast.expr]) -> Optional[float]:
    """Value of a (possibly negated) int/float literal, else None."""
    negate = False
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
        negate = True
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return -float(node.value) if negate else float(node.value)
    return None
