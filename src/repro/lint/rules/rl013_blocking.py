"""RL013: blocking calls reachable from event-loop code.

The streaming service multiplexes every session onto one asyncio event
loop. Anything that blocks that loop -- ``time.sleep``, sync file or
socket I/O, ``subprocess``, an unbounded CPU loop -- stalls *all*
sessions at once, and worse, silently corrupts the experiment: ACKs
queue up during the stall, so ``RapPacer`` sees an inflated SRTT and a
compressed ACK clock, and the §2.2 adaptation decisions under test are
made from measurement artifacts rather than network state.

The rule consumes :class:`repro.lint.flow.asyncgraph.AsyncGraph`:

- a **direct blocking site** in a coroutine or loop-scheduled callback
  is flagged where it stands;
- a call from loop code into a *sync* helper that may block is flagged
  at the call site, with the witness chain down to the blocking call in
  the message (the helper itself may be legitimately called from
  non-loop code, so the helper is not flagged);
- ``json.dumps``/``loads`` reachable within a few hops of a per-packet
  protocol callback (``datagram_received``/``data_received``) is
  flagged at the JSON site: per-datagram text codec work is the hot
  path tax the struct DATA/ACK framing exists to avoid.

Work handed to ``run_in_executor``/``asyncio.to_thread`` is exempt --
that is the sanctioned escape hatch, and the runtime sanitizer
(``repro.service.sanitizer``) verifies the remaining loop really does
stay responsive.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from repro.lint.flow.asyncgraph import AsyncGraph
from repro.lint.flow.project import Project
from repro.lint.rules.base import FlowRule
from repro.lint.violations import Violation

#: Hops from a per-packet callback within which JSON work counts as
#: hot-path (one dispatch layer plus the codec helper).
_HOT_PATH_DEPTH = 4


class AsyncBlockingRule(FlowRule):
    code: ClassVar[str] = "RL013"
    title: ClassVar[str] = "blocking call on the event loop"
    rationale: ClassVar[str] = (
        "a blocked event loop stalls every session and inflates the "
        "SRTT/rate signals RapPacer feeds into the drop rule, so "
        "adaptation decisions are made from measurement artifacts"
    )

    uses_async_facts: ClassVar[bool] = True

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        graph = project.asyncgraph()
        out: list[Violation] = []
        for qualname in sorted(graph.functions):
            facts = graph.functions[qualname]
            if not facts.on_loop:
                continue
            if only is not None and facts.module not in only:
                continue
            ctx = project.modules[facts.module].ctx
            where = "coroutine" if facts.is_coroutine else "loop callback"
            name = qualname.rsplit(".", 1)[-1]
            for site in facts.blocking:
                out.append(ctx.violation(
                    site.node, self.code,
                    f"blocking {site.what} in {where} {name}(); hand it "
                    f"to run_in_executor() or an async equivalent",
                ))
            for call, target in facts.calls:
                sub = graph.functions.get(target)
                if sub is None or sub.may_block is None:
                    continue
                if sub.is_coroutine or sub.blocking:
                    # The coroutine (or the helper with the direct
                    # site, when it is loop code itself) owns the
                    # finding; don't double-report at every caller.
                    if not sub.on_loop and sub.blocking:
                        out.append(ctx.violation(
                            call, self.code,
                            f"{where} {name}() calls {_leaf(target)}(), "
                            f"which blocks via "
                            f"{sub.may_block.describe()}",
                        ))
                    continue
                out.append(ctx.violation(
                    call, self.code,
                    f"{where} {name}() calls {_leaf(target)}(), which "
                    f"blocks via {sub.may_block.describe()}",
                ))
        out.extend(self._hot_path_json(project, graph, only))
        return out

    def _hot_path_json(
        self,
        project: Project,
        graph: AsyncGraph,
        only: Optional[frozenset[str]],
    ) -> list[Violation]:
        hot: set[str] = set()
        callbacks: dict[str, str] = {}
        for qualname, facts in graph.functions.items():
            if facts.packet_callback:
                for reached in graph.reachable(qualname, _HOT_PATH_DEPTH):
                    hot.add(reached)
                    callbacks.setdefault(reached, qualname)
        out: list[Violation] = []
        for qualname in sorted(hot):
            facts = graph.functions.get(qualname)
            if facts is None or not facts.json_sites:
                continue
            if only is not None and facts.module not in only:
                continue
            ctx = project.modules[facts.module].ctx
            origin = _leaf(callbacks[qualname])
            for site in facts.json_sites:
                out.append(ctx.violation(
                    site.node, self.code,
                    f"{site.what} on the per-packet path from "
                    f"{origin}(); JSON codec work belongs on control "
                    f"frames only, not the datagram hot path",
                ))
        return out


def _leaf(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]
