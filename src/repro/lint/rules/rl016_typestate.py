"""RL016: SessionCore/SessionTransport typestate.

The transport-agnostic session core has an implicit protocol automaton:
a session *starts* (core constructed, transport bound), *streams*
(driver calls ``pick_payload``/``on_ack``/``on_loss``/``on_backoff``/
``tick`` interleaved with live ``rate``/``slope`` reads), and *ends*
(FIN handling tears the session down). Two classes of bug violate the
automaton without failing any unit test:

- **Driver calls or transport reads after teardown.** Once a session's
  ``finish()``/``close()`` has run, the pacer stops being fed: a
  ``rate``/``slope`` read observes a frozen controller and a driver
  call mutates adapter state nobody will ship. The FIN summary must be
  built *before* teardown, not after.
- **Replaying a tape that was never recorded.** ``SessionCore.replay``
  re-drives a fresh core from a :class:`~repro.server.core.SessionTape`;
  handing it a tape that no recording core ever filled replays zero
  events and silently "passes".

The check is a per-function *must* analysis in source order: a teardown
call (``X.finish()``, ``X.close()``, ...) kills the receiver name on
the paths that executed it (both branches of an ``if`` must tear down
for the state to persist past it), and any later statement in the body
that (a) calls a driver method rooted at the dead name, (b) reads
``rate``/``slope`` rooted at it, or (c) passes an expression rooted at
it into a function that transitively reads a transport (propagated
through annotated parameters to a bounded fixed point -- the same
summary style as the PR 7 machinery) is flagged. Interprocedural
transport reads mean ``session_summary(session.core, session.pacer)``
after ``session.finish()`` is caught even though the reads happen two
calls away.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Optional

from repro.lint.flow.asyncgraph import ReceiverTyper
from repro.lint.flow.callgraph import CallResolver, FunctionNode, iter_functions
from repro.lint.flow.project import Project
from repro.lint.rules.base import FlowRule
from repro.lint.violations import Violation

#: Method names that end a session's streaming lifetime.
_TEARDOWN_METHODS = frozenset(
    {"finish", "close", "stop", "shutdown", "teardown", "aclose"}
)

#: SessionCore's transport-facing driver surface.
_DRIVER_METHODS = frozenset(
    {"pick_payload", "on_ack", "on_loss", "on_backoff", "tick"}
)

#: The live transport reads the adapter makes between feedback events.
_TRANSPORT_PROPS = frozenset({"rate", "slope"})

#: Fixed-point passes propagating "reads a transport" through calls.
_SUMMARY_PASSES = 3


class SessionTypestateRule(FlowRule):
    code: ClassVar[str] = "RL016"
    title: ClassVar[str] = "session typestate"
    rationale: ClassVar[str] = (
        "after teardown the pacer is no longer fed: rate/slope reads "
        "observe a frozen controller and driver calls mutate state "
        "nobody ships -- build the FIN summary before finish(), and "
        "never replay a tape no recording core filled"
    )

    def check_project(
        self,
        project: Project,
        only: Optional[frozenset[str]] = None,
    ) -> list[Violation]:
        readers = _transport_readers(project)
        out: list[Violation] = []
        for node in iter_functions(project):
            if only is not None and node.module not in only:
                continue
            ctx = project.modules[node.module].ctx
            scan = _FunctionScan(project, node, readers)
            for violation_node, message in scan.findings():
                out.append(ctx.violation(violation_node, self.code, message))
        return out


def _transport_classes(project: Project) -> set[str]:
    """Qualnames of classes exposing both ``rate`` and ``slope``."""
    out: set[str] = set()
    for name in project.modules:
        for cls in project.modules[name].symbols.classes.values():
            props = {
                m.name
                for m in cls.methods.values()
                if m.is_property or _is_protocol_member(m.node)
            }
            if _TRANSPORT_PROPS <= props:
                out.add(cls.qualname)
    return out


def _is_protocol_member(node: ast.AST) -> bool:
    """Protocol bodies declare properties too; accept ellipsis bodies."""
    return isinstance(node, ast.FunctionDef) and any(
        isinstance(d, ast.Name) and d.id == "property"
        for d in node.decorator_list
    )


def _transport_readers(project: Project) -> set[str]:
    """Functions that (transitively) read a transport's rate/slope.

    Pass 0 marks direct readers: a ``p.rate``/``p.slope`` load where
    ``p`` types to a transport class. Later passes mark callers that
    forward a typed argument into a known reader, to a bounded fixed
    point -- enough for the summary-through-helper chains the service
    actually has.
    """
    transports = _transport_classes(project)
    readers: set[str] = set()
    nodes = list(iter_functions(project))
    typers = {n.qualname: ReceiverTyper(project, n) for n in nodes}
    for node in nodes:
        typer = typers[node.qualname]
        for sub in ast.walk(node.func.node):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr in _TRANSPORT_PROPS
                and isinstance(sub.ctx, ast.Load)
            ):
                owner = typer.class_of(sub.value)
                if owner is not None and owner.qualname in transports:
                    readers.add(node.qualname)
                    break
    for _ in range(_SUMMARY_PASSES):
        changed = False
        for node in nodes:
            if node.qualname in readers:
                continue
            resolver = CallResolver(project, node)
            for sub in ast.walk(node.func.node):
                if not isinstance(sub, ast.Call):
                    continue
                target = resolver.resolve(sub)
                if target in readers and (sub.args or sub.keywords):
                    readers.add(node.qualname)
                    changed = True
                    break
        if not changed:
            break
    return readers


def _root_name(expr: ast.expr) -> Optional[str]:
    """The base ``Name`` of an attribute chain (``x`` for ``x.a.b``)."""
    current = expr
    while isinstance(current, ast.Attribute):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


class _FunctionScan:
    """Source-order must-analysis of one function body."""

    def __init__(
        self,
        project: Project,
        node: FunctionNode,
        readers: set[str],
    ) -> None:
        self.project = project
        self.node = node
        self.readers = readers
        self.resolver = CallResolver(project, node)
        self._out: list[tuple[ast.AST, str]] = []
        self._fresh_tapes: set[str] = set()

    def findings(self) -> list[tuple[ast.AST, str]]:
        self._collect_fresh_tapes()
        self._scan_block(self.node.func.node.body, set())
        return self._out

    # ---------------------------------------------------- teardown scan

    def _scan_block(self, body: list[ast.stmt], dead: set[str]) -> set[str]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.If):
                self._check_uses(stmt.test, dead)
                then_dead = self._scan_block(stmt.body, set(dead))
                else_dead = self._scan_block(stmt.orelse, set(dead))
                if _block_exits(stmt.body):
                    dead = else_dead
                elif _block_exits(stmt.orelse):
                    dead = then_dead
                else:
                    dead = then_dead & else_dead
                continue
            if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
                # May-execute bodies: a teardown inside does not kill
                # the name for code after the loop (zero iterations are
                # possible), but uses inside still see prior deaths.
                header = (
                    stmt.test if isinstance(stmt, ast.While) else stmt.iter
                )
                self._check_uses(header, dead)
                self._scan_block(stmt.body, set(dead))
                self._scan_block(stmt.orelse, set(dead))
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._check_uses(item.context_expr, dead)
                dead = self._scan_block(stmt.body, dead)
                continue
            if isinstance(stmt, ast.Try):
                dead = self._scan_block(stmt.body, dead)
                for handler in stmt.handlers:
                    self._scan_block(handler.body, set(dead))
                dead = self._scan_block(stmt.orelse, dead)
                dead = self._scan_block(stmt.finalbody, dead)
                continue
            self._check_uses(stmt, dead)
            for name in self._teardowns_in(stmt):
                dead.add(name)
            self._track_rebinds(stmt, dead)
        return dead

    def _teardowns_in(self, stmt: ast.stmt) -> list[str]:
        out: list[str] = []
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _TEARDOWN_METHODS
                and not sub.args
                and not sub.keywords
            ):
                root = _root_name(sub.func.value)
                if root is not None:
                    out.append(root)
        return out

    def _track_rebinds(self, stmt: ast.stmt, dead: set[str]) -> None:
        """Re-assigning a name resurrects it (a fresh session object)."""
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    dead.discard(target.id)

    def _check_uses(self, stmt: ast.AST, dead: set[str]) -> None:
        if not dead:
            return
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                self._check_call(sub, dead)
            elif (
                isinstance(sub, ast.Attribute)
                and sub.attr in _TRANSPORT_PROPS
                and isinstance(sub.ctx, ast.Load)
            ):
                root = _root_name(sub.value)
                if root in dead:
                    self._out.append((
                        sub,
                        f"transport .{sub.attr} read on '{root}' after "
                        f"its teardown; the controller is frozen -- "
                        f"read before finish()/close()",
                    ))

    def _check_call(self, call: ast.Call, dead: set[str]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            root = _root_name(func.value)
            if root in dead and func.attr in _DRIVER_METHODS:
                self._out.append((
                    call,
                    f"driver call .{func.attr}() on '{root}' after its "
                    f"teardown; the session automaton has already "
                    f"ended",
                ))
                return
        target = self.resolver.resolve(call)
        if target in self.readers:
            for arg in [*call.args, *[kw.value for kw in call.keywords]]:
                root = _root_name(arg)
                if root in dead:
                    callee = target.rsplit(".", 1)[-1] if target else "?"
                    self._out.append((
                        call,
                        f"'{root}' passed to {callee}() after its "
                        f"teardown, and {callee}() reads the transport "
                        f"rate/slope; build the summary before "
                        f"finish()",
                    ))
                    return

    # -------------------------------------------------------- tape scan

    def _collect_fresh_tapes(self) -> None:
        """Locals holding a ``SessionTape()`` used only by ``replay``."""
        func = self.node.func.node
        candidates: dict[str, ast.Call] = {}
        for stmt in ast.walk(func):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            ref = self.project.resolve_annotation(
                self.node.module, stmt.value.func
            )
            if ref.kind == "cls" and ref.qualname.endswith(".SessionTape"):
                candidates[stmt.targets[0].id] = stmt.value
        if not candidates:
            return
        replay_args: set[str] = set()
        for sub in ast.walk(func):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "replay"
                and sub.args
                and isinstance(sub.args[0], ast.Name)
                and sub.args[0].id in candidates
            ):
                replay_args.add(sub.args[0].id)
        unrecorded: set[str] = set()
        for name in candidates:
            uses = 0
            for sub in ast.walk(func):
                if (
                    isinstance(sub, ast.Name)
                    and sub.id == name
                    and isinstance(sub.ctx, ast.Load)
                ):
                    uses += 1
            # One load = the replay argument itself; more = the tape
            # was handed to a recorder or inspected, so it may be real.
            if name in replay_args and uses <= 1:
                unrecorded.add(name)
        for name in sorted(unrecorded):
            self._out.append((
                candidates[name],
                f"SessionTape '{name}' is replayed but never recorded "
                f"into: no core ever filled it, so the replay re-drives "
                f"zero events and vacuously passes",
            ))


def _block_exits(body: list[ast.stmt]) -> bool:
    """Does the block unconditionally leave the function?"""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )
