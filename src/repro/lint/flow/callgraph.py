"""Project call graph: who calls whom, resolved across modules.

Each function or method in the project becomes a node named by its
qualname (``module.func`` or ``module.Class.method``). Edges are the
call sites the resolver can pin down *definitely*:

- ``f(...)`` where ``f`` is a module-level function or class of the
  enclosing module, or an imported project function/class;
- ``mod.f(...)`` through an imported project module;
- ``self.m(...)`` through the enclosing class's MRO;
- ``obj.m(...)`` where ``obj`` is a parameter or ``self`` attribute
  whose annotation resolves to a project class.

Calls to classes resolve to their ``__init__`` (when one exists in the
MRO) so constructor bodies participate in reachability. Unresolvable
calls are dropped, matching the linter's definite-facts-only bias: the
graph under-approximates, so reachability-based rules (RL010) miss
rather than cry wolf.

Nested ``def``s are attributed to their enclosing function -- their
calls execute (at the latest) when the closure runs, and for process-
safety reachability the enclosing function is the submission unit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lint.flow.project import Project
from repro.lint.flow.symbols import ClassInfo, FunctionInfo


@dataclass(frozen=True)
class FunctionNode:
    """One function or method definition in the project."""

    qualname: str
    module: str
    func: FunctionInfo
    cls: Optional[ClassInfo] = None


@dataclass
class CallGraph:
    """Forward and reverse adjacency over resolved project calls."""

    nodes: dict[str, FunctionNode] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)
    reverse: dict[str, set[str]] = field(default_factory=dict)

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())

    def callers(self, qualname: str) -> set[str]:
        return self.reverse.get(qualname, set())

    def reachable(self, entry: str, max_depth: int = 6) -> set[str]:
        """Nodes reachable from ``entry`` within ``max_depth`` edges.

        The depth bound keeps the analysis a bounded-summary one: facts
        propagate through wrapper chains, not through unbounded
        recursion over pathological graphs.
        """
        seen = {entry}
        frontier = [entry]
        for _ in range(max_depth):
            nxt: list[str] = []
            for name in frontier:
                for callee in self.edges.get(name, ()):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.append(callee)
            if not nxt:
                break
            frontier = nxt
        return seen

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.reverse.setdefault(callee, set()).add(caller)


def iter_functions(project: Project) -> Iterator[FunctionNode]:
    """Every function and method of every module, with its qualname."""
    for name in sorted(project.modules):
        info = project.modules[name]
        for fn in info.symbols.functions.values():
            yield FunctionNode(f"{name}.{fn.name}", name, fn)
        for cls in info.symbols.classes.values():
            for method in cls.methods.values():
                yield FunctionNode(
                    f"{cls.qualname}.{method.name}", name, method, cls
                )


def build_call_graph(project: Project) -> CallGraph:
    graph = CallGraph()
    for node in iter_functions(project):
        graph.nodes[node.qualname] = node
        graph.edges.setdefault(node.qualname, set())
    for node in graph.nodes.values():
        resolver = CallResolver(project, node)
        for call in ast.walk(node.func.node):
            if isinstance(call, ast.Call):
                target = resolver.resolve(call)
                if target is not None and target in graph.nodes:
                    graph.add_edge(node.qualname, target)
    return graph


class CallResolver:
    """Resolve one function's call expressions to project qualnames."""

    def __init__(self, project: Project, node: FunctionNode) -> None:
        self.project = project
        self.node = node
        self.symbols = project.modules[node.module].symbols
        self._param_classes = self._annotated_param_classes()

    def _annotated_param_classes(self) -> dict[str, ClassInfo]:
        out: dict[str, ClassInfo] = {}
        for param in self.node.func.params:
            ref = self.project.resolve_annotation(
                self.node.module, param.annotation
            )
            if ref.kind == "cls":
                info = self.project.resolve_class(ref.qualname)
                if info is not None:
                    out[param.name] = info
        return out

    def resolve(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func)
        return None

    def _resolve_name(self, name: str) -> Optional[str]:
        if name in self.symbols.functions:
            return f"{self.symbols.name}.{name}"
        if name in self.symbols.classes:
            return self._class_init(self.symbols.classes[name])
        target = self.symbols.imports.get(name)
        if target is not None:
            return self._resolve_dotted(target)
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        owner, _, leaf = dotted.rpartition(".")
        info = self.project.modules.get(owner)
        if info is None or not leaf:
            return None
        if leaf in info.symbols.functions:
            return dotted
        if leaf in info.symbols.classes:
            return self._class_init(info.symbols.classes[leaf])
        return None

    def _resolve_attribute(self, func: ast.Attribute) -> Optional[str]:
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self" and self.node.cls is not None:
                return self._method_on(self.node.cls, func.attr)
            owner_cls = self._param_classes.get(base.id)
            if owner_cls is not None:
                return self._method_on(owner_cls, func.attr)
            target = self.symbols.imports.get(base.id)
            if target is not None:
                return self._resolve_dotted(f"{target}.{func.attr}")
            return None
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and self.node.cls is not None
        ):
            # self.attr.m(): follow the attribute's resolved class type.
            ref = self.project.attr_type(self.node.cls, base.attr)
            if ref.kind == "cls":
                info = self.project.resolve_class(ref.qualname)
                if info is not None:
                    return self._method_on(info, func.attr)
        return None

    def _method_on(self, cls: ClassInfo, name: str) -> Optional[str]:
        found = self.project.find_method(cls, name)
        if found is None:
            return None
        owner, method = found
        return f"{owner.qualname}.{method.name}"

    def _class_init(self, cls: ClassInfo) -> Optional[str]:
        found = self.project.find_method(cls, "__init__")
        if found is None:
            return None
        owner, _ = found
        return f"{owner.qualname}.__init__"
