"""Whole-program view: modules, imports, and cross-module resolution.

A :class:`Project` is built once per lint run from every parsed file.
It names each file as a dotted module (walking ``__init__.py`` packages
upward), builds the project-internal import graph, and answers the
questions flow rules ask: "what does this name refer to?", "what is the
type of this annotation?", "what type does this attribute hold?".

Resolution is deliberately conservative: anything that cannot be pinned
down resolves to :data:`~repro.lint.flow.symbols.ANY`, and rules only
flag facts that are definitely wrong.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Optional

from repro.lint.flow.symbols import (
    ANY,
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    TypeRef,
    build_module_symbols,
)
from repro.lint.flow.units import (
    BUILTIN_SCALARS,
    INT_ALIASES,
    UNIT_ALIASES,
    UNITS_MODULE,
    Dim,
)
from repro.lint.rules.base import FileContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.flow.asyncgraph import AsyncGraph
    from repro.lint.flow.callgraph import CallGraph
    from repro.lint.flow.summaries import SummaryTable

_SEQUENCE_NAMES = frozenset(
    {
        "Sequence",
        "Iterable",
        "Iterator",
        "List",
        "list",
        "FrozenSet",
        "frozenset",
        "Set",
        "set",
        "Collection",
    }
)
_MAPPING_NAMES = frozenset({"dict", "Dict", "Mapping", "MutableMapping"})
_WRAPPER_NAMES = frozenset({"Optional", "ClassVar", "Final", "Annotated"})


@dataclass
class ModuleInfo:
    name: str
    ctx: FileContext
    symbols: ModuleSymbols


class Project:
    """All modules of one lint run plus cross-module resolution."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        for info in modules:
            # First spelling wins; duplicate stems outside packages are
            # fixture-only and never cross-reference each other.
            self.modules.setdefault(info.name, info)
        self._ann_cache: dict[tuple[str, int], TypeRef] = {}
        self._attr_cache: dict[tuple[str, str], TypeRef] = {}
        self._call_graph: Optional["CallGraph"] = None
        self._summaries: Optional["SummaryTable"] = None
        self._asyncgraph: Optional["AsyncGraph"] = None

    @classmethod
    def build(cls, contexts: list[FileContext]) -> "Project":
        infos = []
        for ctx in contexts:
            name = _module_name(ctx)
            infos.append(
                ModuleInfo(
                    name=name,
                    ctx=ctx,
                    symbols=build_module_symbols(name, ctx.tree),
                )
            )
        return cls(infos)

    def call_graph(self) -> "CallGraph":
        """The project call graph, built once per run on first use."""
        if self._call_graph is None:
            from repro.lint.flow.callgraph import build_call_graph

            self._call_graph = build_call_graph(self)
        return self._call_graph

    def summaries(self) -> "SummaryTable":
        """Bounded-depth function summaries, built once per run."""
        if self._summaries is None:
            from repro.lint.flow.summaries import SummaryTable

            self._summaries = SummaryTable.build(self)
        return self._summaries

    def asyncgraph(self) -> "AsyncGraph":
        """Asyncio facts (coroutines, spawns, contexts), built once."""
        if self._asyncgraph is None:
            from repro.lint.flow.asyncgraph import AsyncGraph

            self._asyncgraph = AsyncGraph.build(self)
        return self._asyncgraph

    # ------------------------------------------------------------ imports

    def import_graph(self) -> dict[str, set[str]]:
        """Module -> set of *project-internal* modules it imports."""
        graph: dict[str, set[str]] = {}
        for name, info in self.modules.items():
            edges: set[str] = set()
            for target in info.symbols.imports.values():
                owner = self._owning_module(target)
                if owner is not None and owner != name:
                    edges.add(owner)
            graph[name] = edges
        return graph

    def _owning_module(self, dotted: str) -> Optional[str]:
        """The project module a dotted import target lives in, if any."""
        if dotted in self.modules:
            return dotted
        head, _, _ = dotted.rpartition(".")
        if head and head in self.modules:
            return head
        return None

    def resolve_class(self, qualname: str) -> Optional[ClassInfo]:
        module, _, name = qualname.rpartition(".")
        info = self.modules.get(module)
        if info is None:
            return None
        return info.symbols.classes.get(name)

    def resolve_function(
        self, qualname: str
    ) -> Optional[tuple[str, FunctionInfo]]:
        module, _, name = qualname.rpartition(".")
        info = self.modules.get(module)
        if info is None:
            return None
        func = info.symbols.functions.get(name)
        if func is None:
            return None
        return module, func

    def canonical(self, module: str, local: str) -> Optional[str]:
        """Dotted import target of a local name, if it is an import."""
        info = self.modules.get(module)
        if info is None:
            return None
        return info.symbols.imports.get(local)

    # -------------------------------------------------------- annotations

    def resolve_annotation(
        self, module: str, node: Optional[ast.expr]
    ) -> TypeRef:
        if node is None:
            return ANY
        key = (module, id(node))
        cached = self._ann_cache.get(key)
        if cached is None:
            cached = self._resolve_ann(module, node, frozenset())
            self._ann_cache[key] = cached
        return cached

    def _resolve_ann(
        self, module: str, node: ast.expr, seen: frozenset[tuple[str, str]]
    ) -> TypeRef:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                try:
                    parsed = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return ANY
                return self._resolve_ann(module, parsed, seen)
            return ANY
        if isinstance(node, ast.Name):
            return self._resolve_ann_name(module, node.id, seen)
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                return ANY
            return self._resolve_ann_dotted(module, dotted, seen)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            halves = [
                self._resolve_ann(module, part, seen)
                for part in (node.left, node.right)
                if not (isinstance(part, ast.Constant) and part.value is None)
            ]
            if len(halves) == 1:
                return halves[0]
            return ANY
        if isinstance(node, ast.Subscript):
            return self._resolve_ann_subscript(module, node, seen)
        return ANY

    def _resolve_ann_name(
        self, module: str, name: str, seen: frozenset[tuple[str, str]]
    ) -> TypeRef:
        if name in BUILTIN_SCALARS:
            return TypeRef("num", dim=BUILTIN_SCALARS[name], integral=True)
        if (module, name) in seen:
            return ANY
        info = self.modules.get(module)
        if info is not None:
            if name in info.symbols.classes:
                return TypeRef(
                    "cls", qualname=info.symbols.classes[name].qualname
                )
            alias = info.symbols.assigns.get(name)
            if alias is not None:
                return self._resolve_ann(
                    module, alias, seen | {(module, name)}
                )
            target = info.symbols.imports.get(name)
            if target is not None:
                return self._resolve_ann_dotted(module, target, seen)
        return ANY

    def _resolve_ann_dotted(
        self, module: str, dotted: str, seen: frozenset[tuple[str, str]]
    ) -> TypeRef:
        head, _, rest = dotted.partition(".")
        canonical = self.canonical(module, head)
        if canonical is not None:
            dotted = f"{canonical}.{rest}" if rest else canonical
        owner, _, leaf = dotted.rpartition(".")
        if owner == UNITS_MODULE and leaf in UNIT_ALIASES:
            return TypeRef(
                "num",
                dim=UNIT_ALIASES[leaf],
                integral=leaf in INT_ALIASES,
            )
        target = self.modules.get(owner)
        if target is not None and leaf:
            if leaf in target.symbols.classes:
                return TypeRef(
                    "cls", qualname=target.symbols.classes[leaf].qualname
                )
            if (owner, leaf) not in seen:
                alias = target.symbols.assigns.get(leaf)
                if alias is not None:
                    return self._resolve_ann(
                        owner, alias, seen | {(owner, leaf)}
                    )
        return ANY

    def _resolve_ann_subscript(
        self, module: str, node: ast.Subscript, seen: frozenset[tuple[str, str]]
    ) -> TypeRef:
        base = node.value
        base_name = (
            base.id
            if isinstance(base, ast.Name)
            else base.attr
            if isinstance(base, ast.Attribute)
            else None
        )
        if base_name is None:
            return ANY
        args: list[ast.expr]
        if isinstance(node.slice, ast.Tuple):
            args = list(node.slice.elts)
        else:
            args = [node.slice]
        if base_name in _WRAPPER_NAMES:
            if base_name == "Annotated" and args:
                return self._resolve_ann(module, args[0], seen)
            kept = [
                part
                for part in args
                if not (isinstance(part, ast.Constant) and part.value is None)
            ]
            if len(kept) == 1:
                return self._resolve_ann(module, kept[0], seen)
            return ANY
        if base_name == "Union":
            kept = [
                part
                for part in args
                if not (isinstance(part, ast.Constant) and part.value is None)
            ]
            if len(kept) == 1:
                return self._resolve_ann(module, kept[0], seen)
            return ANY
        if base_name in ("tuple", "Tuple"):
            if len(args) == 2 and (
                isinstance(args[1], ast.Constant) and args[1].value is Ellipsis
            ):
                return TypeRef(
                    "seq", elem=self._resolve_ann(module, args[0], seen)
                )
            return TypeRef(
                "tup",
                elems=tuple(
                    self._resolve_ann(module, part, seen) for part in args
                ),
            )
        if base_name in _SEQUENCE_NAMES:
            elem = self._resolve_ann(module, args[0], seen) if args else ANY
            return TypeRef("seq", elem=elem)
        if base_name in _MAPPING_NAMES:
            value = (
                self._resolve_ann(module, args[1], seen)
                if len(args) > 1
                else ANY
            )
            return TypeRef("map", elem=value)
        if base_name == "Callable":
            ret = self._resolve_ann(module, args[-1], seen) if args else ANY
            return TypeRef("fn", elem=ret)
        return ANY

    # --------------------------------------------------- class attributes

    def class_mro(self, info: ClassInfo) -> list[ClassInfo]:
        """The class plus every project-resolvable base, depth-first."""
        out: list[ClassInfo] = []
        stack = [info]
        seen: set[str] = set()
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out.append(current)
            for base in current.bases:
                ref = self._resolve_ann(current.module, base, frozenset())
                if ref.kind == "cls":
                    resolved = self.resolve_class(ref.qualname)
                    if resolved is not None:
                        stack.append(resolved)
        return out

    def find_method(
        self, info: ClassInfo, name: str
    ) -> Optional[tuple[ClassInfo, FunctionInfo]]:
        for owner in self.class_mro(info):
            method = owner.methods.get(name)
            if method is not None:
                return owner, method
        return None

    def attr_type(self, info: ClassInfo, attr: str) -> TypeRef:
        key = (info.qualname, attr)
        cached = self._attr_cache.get(key)
        if cached is not None:
            return cached
        self._attr_cache[key] = ANY  # cycle guard
        result = self._attr_type(info, attr)
        self._attr_cache[key] = result
        return result

    def _attr_type(self, info: ClassInfo, attr: str) -> TypeRef:
        for owner in self.class_mro(info):
            found = self._own_attr_type(owner, attr)
            if found is not None:
                return found
        return ANY

    def _own_attr_type(self, owner: ClassInfo, attr: str) -> Optional[TypeRef]:
        ann = owner.body_fields.get(attr)
        if ann is None:
            ann = owner.attr_ann.get(attr)
        if ann is not None:
            return self.resolve_annotation(owner.module, ann)
        method = owner.methods.get(attr)
        if method is not None:
            if method.is_property:
                return self.resolve_annotation(owner.module, method.returns)
            return TypeRef("fn", elem=ANY)
        assign = owner.attr_assigns.get(attr)
        if assign is None:
            return None
        value = self._init_expr_type(owner, assign.value)
        if assign.tuple_index is not None:
            if (
                value.kind == "tup"
                and assign.tuple_index < len(value.elems)
            ):
                return value.elems[assign.tuple_index]
            if value.kind == "seq" and value.elem is not None:
                return value.elem
            return ANY
        return value

    def _init_expr_type(self, owner: ClassInfo, expr: ast.expr) -> TypeRef:
        """Type of an expression assigned to ``self.X`` in ``__init__``."""
        init = owner.methods.get("__init__")
        if isinstance(expr, ast.Name) and init is not None:
            for param in init.params:
                if param.name == expr.id:
                    return self.resolve_annotation(
                        owner.module, param.annotation
                    )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                if func.value.id == "self":
                    found = self.find_method(owner, func.attr)
                    if found is not None:
                        method_owner, method = found
                        return self.resolve_annotation(
                            method_owner.module, method.returns
                        )
            ref = self._resolve_ann(owner.module, func, frozenset())
            if ref.kind == "cls":
                return ref
            if isinstance(func, ast.Name):
                info = self.modules.get(owner.module)
                if info is not None and func.id in info.symbols.functions:
                    return self.resolve_annotation(
                        owner.module,
                        info.symbols.functions[func.id].returns,
                    )
                target = self.canonical(owner.module, func.id)
                if target is not None:
                    resolved = self.resolve_function(target)
                    if resolved is not None:
                        mod, fn = resolved
                        return self.resolve_annotation(mod, fn.returns)
        return ANY

    def sqrt_dim(self, dim: Dim) -> Dim:
        return dim ** Fraction(1, 2)


def _dotted(node: ast.expr) -> Optional[str]:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _module_name(ctx: FileContext) -> str:
    return module_name_for_path(ctx.path)


def module_name_for_path(path: "pathlib.Path") -> str:
    """Dotted module name of ``path``, walking ``__init__.py`` packages.

    Purely filesystem-based (no parsing), so the incremental cache can
    name modules on the warm path without touching their ASTs.
    """
    if path.stem == "__init__":
        parts: list[str] = []
        directory = path.parent
    else:
        parts = [path.stem]
        directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem
