"""Bounded-depth function summaries for interprocedural analysis.

Each project function gets one :class:`FunctionSummary` of the abstract
facts the flow rules propagate across call boundaries:

- ``rng_origin`` -- does the function return a ``SeededRNG``, and is it
  a sanctioned one (``spawn``/``make_rng``/``derive_seed`` provenance or
  a ``SeededRNG`` return annotation) or a raw reseed? RL005 uses this to
  see through factory wrappers instead of giving up at them.
- ``rng_fanout`` -- how many stochastic consumers an ``rng`` parameter
  feeds inside the body (transitively, to a bounded depth). A caller
  handing its stream to a fanning-out helper shares it just as surely as
  calling two constructors itself.
- ``returns_hook`` -- does the function return a maybe-``None``
  telemetry hook (RL007's contract), directly or through a wrapper?
- ``global_writes`` -- module globals the function rebinds or mutates
  (RL010's process-safety reachability walks these).
- :meth:`SummaryTable.return_ref` -- the inferred return
  :class:`~repro.lint.flow.symbols.TypeRef` of an *unannotated*
  function, computed lazily by running the dataflow engine over its
  body (recursion-guarded, depth-bounded). RL006/RL011 call through it
  so dimension facts survive helper extraction.

Syntactic facts are computed in one pass; call-transported facts
(wrapped origins, transitive fanout) run a bounded fixed point over the
:mod:`~repro.lint.flow.callgraph` -- ``_PROPAGATION_PASSES`` passes, so
chains up to that depth resolve and deeper ones conservatively stay
unknown.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.lint.flow.callgraph import CallGraph, CallResolver, FunctionNode
from repro.lint.flow.project import Project
from repro.lint.flow.symbols import AnyFunctionDef, TypeRef

#: Canonical RNG factory module and class (shared with RL005).
RNG_MODULE = "repro.sim.rng"
RNG_CLASS = f"{RNG_MODULE}.SeededRNG"

#: Factory methods whose result is "None when disabled, else a bound
#: sample method" (shared with RL007). ``span_hook`` is the tracing
#: recorder's factory — same None-when-disabled contract.
HOOK_FACTORY_METHODS = frozenset({
    "event_hook", "counter_hook", "gauge_hook", "histogram_hook", "hook",
    "span_hook",
})

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "appendleft",
})

#: Fixed-point passes for call-transported facts; also the wrapper
#: depth through which they propagate.
_PROPAGATION_PASSES = 3

#: Maximum helper-chain depth for lazy return-type inference.
_RETURN_DEPTH = 5


@dataclass(frozen=True)
class GlobalWrite:
    """One write to a module global inside a function body."""

    name: str
    node: ast.AST
    kind: str  # "rebind" | "mutate"


@dataclass
class FunctionSummary:
    qualname: str
    rng_origin: Optional[str] = None  # "sanctioned" | "raw" | None
    rng_fanout: dict[str, int] = field(default_factory=dict)
    returns_hook: bool = False
    global_writes: tuple[GlobalWrite, ...] = ()


class SummaryTable:
    """Per-function summaries plus lazy return-type inference."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.by_qualname: dict[str, FunctionSummary] = {}
        self._ref_memo: dict[str, Optional[TypeRef]] = {}
        self._ref_active: set[str] = set()

    @classmethod
    def build(cls, project: Project) -> "SummaryTable":
        table = cls(project, project.call_graph())
        builders = {
            qualname: _SummaryBuilder(project, node)
            for qualname, node in table.graph.nodes.items()
        }
        for qualname, builder in builders.items():
            table.by_qualname[qualname] = builder.syntactic_summary()
        for _ in range(_PROPAGATION_PASSES):
            changed = False
            for qualname, builder in builders.items():
                if builder.propagate(table.by_qualname[qualname], table):
                    changed = True
            if not changed:
                break
        return table

    def get(self, qualname: str) -> Optional[FunctionSummary]:
        return self.by_qualname.get(qualname)

    def rng_origin(self, qualname: str) -> Optional[str]:
        summary = self.by_qualname.get(qualname)
        return summary.rng_origin if summary is not None else None

    def returns_hook(self, qualname: str) -> bool:
        summary = self.by_qualname.get(qualname)
        return summary is not None and summary.returns_hook

    def rng_weight(self, qualname: Optional[str], param: str) -> int:
        """Consumers one pass to ``param`` of ``qualname`` stands for."""
        if qualname is None:
            return 1
        summary = self.by_qualname.get(qualname)
        if summary is None:
            return 1
        return max(1, summary.rng_fanout.get(param, 0))

    def return_ref(self, qualname: str) -> Optional[TypeRef]:
        """Inferred return type of an unannotated project function.

        Runs the dataflow engine over the body on first use; recursion
        and chains deeper than ``_RETURN_DEPTH`` resolve to None (the
        caller keeps treating the result as unknown).
        """
        if qualname in self._ref_memo:
            return self._ref_memo[qualname]
        node = self.graph.nodes.get(qualname)
        if node is None:
            return None
        declared = self.project.resolve_annotation(
            node.module, node.func.returns
        )
        if declared.kind != "any":
            self._ref_memo[qualname] = declared
            return declared
        if (
            qualname in self._ref_active
            or len(self._ref_active) >= _RETURN_DEPTH
        ):
            return None
        from repro.lint.flow.dataflow import FunctionAnalysis

        self._ref_active.add(qualname)
        try:
            analysis = FunctionAnalysis(
                self.project, node.module, node.func, node.cls,
                summaries=self,
            )
            try:
                analysis.run()
            except RecursionError:  # pragma: no cover - pathological
                self._ref_memo[qualname] = None
                return None
            inferred = analysis.return_value
        finally:
            self._ref_active.discard(qualname)
        if inferred is not None and inferred.kind in ("any", "lit"):
            inferred = None
        self._ref_memo[qualname] = inferred
        return inferred


def _own_statements(func: AnyFunctionDef) -> list[ast.stmt]:
    """Statements of ``func``'s body, nested ``def`` bodies excluded."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                stack.extend(
                    sub
                    for sub in ast.iter_child_nodes(child)
                    if isinstance(sub, ast.stmt)
                )
    return out


class _SummaryBuilder:
    """Computes one function's summary facts."""

    def __init__(self, project: Project, node: FunctionNode) -> None:
        self.project = project
        self.node = node
        self.symbols = project.modules[node.module].symbols
        self.statements = _own_statements(node.func.node)
        self._resolver: Optional[CallResolver] = None  # built lazily

    # ---------------------------------------------------------- resolution

    def _resolve_call(self, call: ast.Call) -> Optional[str]:
        if self._resolver is None:
            self._resolver = CallResolver(self.project, self.node)
        return self._resolver.resolve(call)

    def _dotted_target(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            target = self.symbols.imports.get(func.id)
            if target is not None:
                return target
            if func.id in self.symbols.functions:
                return f"{self.symbols.name}.{func.id}"
            if func.id in self.symbols.classes:
                return f"{self.symbols.name}.{func.id}"
            return None
        if isinstance(func, ast.Attribute):
            parts: list[str] = [func.attr]
            current: ast.expr = func.value
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if not isinstance(current, ast.Name):
                return None
            head = self.symbols.imports.get(current.id)
            if head is None:
                return None
            parts.append(head)
            return ".".join(reversed(parts))
        return None

    # ------------------------------------------------------ pass 0 (local)

    def syntactic_summary(self) -> FunctionSummary:
        summary = FunctionSummary(self.node.qualname)
        declared = self.project.resolve_annotation(
            self.node.module, self.node.func.returns
        )
        if declared.kind == "cls" and declared.qualname == RNG_CLASS:
            summary.rng_origin = "sanctioned"
        else:
            returns = self.node.func.returns
            if (
                isinstance(returns, ast.Name)
                and self.symbols.imports.get(returns.id) == RNG_CLASS
            ):
                summary.rng_origin = "sanctioned"
        for value in self._return_values():
            if summary.rng_origin is None and isinstance(value, ast.Call):
                summary.rng_origin = self._direct_rng_origin(value)
            if not summary.returns_hook:
                summary.returns_hook = _is_hook_factory_call(value)
        summary.rng_fanout = self._fanout(None)
        summary.global_writes = tuple(self._global_writes())
        return summary

    def _return_values(self) -> list[ast.expr]:
        """Returned expressions, locals traced one assignment deep."""
        assigned: dict[str, ast.expr] = {}
        for stmt in self.statements:
            value: Optional[ast.expr] = None
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    assigned[target.id] = value
        out: list[ast.expr] = []
        for stmt in self.statements:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                value = stmt.value
                if isinstance(value, ast.Name) and value.id in assigned:
                    value = assigned[value.id]
                out.append(value)
        return out

    def _direct_rng_origin(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "spawn":
            return "sanctioned"
        target = self._dotted_target(func)
        if target is None:
            return None
        if target == f"{RNG_MODULE}.make_rng":
            return "sanctioned"
        if target in ("random.Random", "random.SystemRandom"):
            return "raw"
        if target == RNG_CLASS:
            if call.args and isinstance(call.args[0], ast.Call):
                seed_func = call.args[0].func
                seed_target = self._dotted_target(seed_func)
                seed_name = (
                    seed_func.id if isinstance(seed_func, ast.Name) else None
                )
                if (
                    seed_target == f"{RNG_MODULE}.derive_seed"
                    or seed_name == "derive_seed"
                ):
                    return "sanctioned"
            return "raw"
        return None

    def _rng_params(self) -> list[str]:
        return [p.name for p in self.node.func.params if p.name == "rng"]

    def _rng_args_of(
        self, call: ast.Call, rng_params: set[str]
    ) -> list[str]:
        """Names of own rng params this call binds to a callee ``rng``."""
        out: list[str] = []
        for kw in call.keywords:
            if (
                kw.arg == "rng"
                and isinstance(kw.value, ast.Name)
                and kw.value.id in rng_params
            ):
                out.append(kw.value.id)
        params = self._callee_param_names(call)
        if params is not None:
            for name, arg in zip(params, call.args):
                if (
                    name == "rng"
                    and isinstance(arg, ast.Name)
                    and arg.id in rng_params
                ):
                    out.append(arg.id)
        return out

    def _callee_param_names(self, call: ast.Call) -> Optional[list[str]]:
        qualname = self._resolve_call(call)
        if qualname is None:
            return None
        node = self.project.call_graph().nodes.get(qualname)
        if node is None:
            return None
        params = node.func.params
        if node.cls is not None and not node.func.is_staticmethod and params:
            params = params[1:]
        return [p.name for p in params]

    def _fanout(self, table: Optional["SummaryTable"]) -> dict[str, int]:
        """Consumers each ``rng`` param feeds along the worst-case path.

        Branch-aware, matching RL005's intraprocedural rule: exclusive
        ``if``/``else`` arms take the per-name maximum (a dispatch chain
        hands the stream to exactly one consumer per execution), a
        terminated arm (``if ...: return use(rng)``) never rejoins the
        fall-through, and loop bodies count double (a second iteration
        is a second consumer). With ``table`` given, each hand-off
        weighs as many consumers as the callee itself fans out to.
        """
        rng_params = set(self._rng_params())
        if not rng_params:
            return {}
        counts = self._count_block(
            list(self.node.func.node.body), rng_params, table
        )
        return {name: n for name, n in counts.items() if n}

    def _count_block(
        self,
        stmts: list[ast.stmt],
        rng_params: set[str],
        table: Optional["SummaryTable"],
    ) -> dict[str, int]:
        totals: dict[str, int] = {}
        #: Counts along paths that left the block early (return/raise):
        #: the block's fanout is the max of the fall-through and each of
        #: these, never their sum.
        alternatives: list[dict[str, int]] = []

        def branch(
            block: list[ast.stmt], loop: bool = False
        ) -> dict[str, int]:
            counted = self._count_block(block, rng_params, table)
            if loop:  # a second iteration is a second consumer
                counted = {name: n * 2 for name, n in counted.items()}
            return counted

        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.If):
                _add(totals, self._count_exprs(stmt.test, rng_params, table))
                arms = [(stmt.body, _terminates(stmt.body))]
                if stmt.orelse:
                    arms.append((stmt.orelse, _terminates(stmt.orelse)))
                rejoining: dict[str, int] = {}
                for block, terminated in arms:
                    counted = branch(block)
                    if terminated:
                        merged = dict(totals)
                        _add(merged, counted)
                        alternatives.append(merged)
                    else:
                        rejoining = _peak(rejoining, counted)
                _add(totals, rejoining)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                head = stmt.iter if isinstance(
                    stmt, (ast.For, ast.AsyncFor)) else stmt.test
                _add(totals, self._count_exprs(head, rng_params, table))
                _add(totals, branch(stmt.body, loop=True))
                _add(totals, branch(stmt.orelse))
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    _add(totals, self._count_exprs(
                        item.context_expr, rng_params, table))
                _add(totals, branch(stmt.body))
            elif isinstance(stmt, ast.Try):
                _add(totals, branch(stmt.body))
                handler_peak: dict[str, int] = {}
                for handler in stmt.handlers:
                    handler_peak = _peak(handler_peak, branch(handler.body))
                _add(totals, handler_peak)
                _add(totals, branch(stmt.orelse))
                _add(totals, branch(stmt.finalbody))
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        _add(totals, self._count_exprs(
                            child, rng_params, table))
        for alt in alternatives:
            totals = _peak(totals, alt)
        return totals

    def _count_exprs(
        self,
        expr: ast.expr,
        rng_params: set[str],
        table: Optional["SummaryTable"],
    ) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda) or not isinstance(node, ast.Call):
                continue
            passed = self._rng_args_of(node, rng_params)
            if not passed:
                continue
            weight = 1
            if table is not None:
                weight = table.rng_weight(self._resolve_call(node), "rng")
            for name in passed:
                counts[name] = counts.get(name, 0) + weight
        return counts

    def _global_writes(self) -> list[GlobalWrite]:
        declared: set[str] = set()
        for stmt in self.statements:
            if isinstance(stmt, ast.Global):
                declared.update(stmt.names)
        module_mutables = self._module_mutables()
        locals_bound = self._locally_bound_names()
        out: list[GlobalWrite] = []
        for stmt in self.statements:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    out.append(GlobalWrite(target.id, stmt, "rebind"))
                elif isinstance(target, ast.Subscript):
                    base = target.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module_mutables
                        and base.id not in locals_bound
                    ):
                        out.append(GlobalWrite(base.id, stmt, "mutate"))
            for expr in ast.walk(stmt):
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in _MUTATOR_METHODS
                    and isinstance(expr.func.value, ast.Name)
                    and expr.func.value.id in module_mutables
                    and expr.func.value.id not in locals_bound
                ):
                    out.append(
                        GlobalWrite(expr.func.value.id, expr, "mutate")
                    )
        return out

    def _module_mutables(self) -> set[str]:
        """Module-level names bound to mutable containers."""
        out: set[str] = set()
        for name, value in self.symbols.assigns.items():
            if isinstance(value, (ast.List, ast.Dict, ast.Set)):
                out.add(name)
            elif isinstance(value, ast.Call):
                target = self._dotted_target(value.func)
                leaf = (target or "").rpartition(".")[2] or (
                    value.func.id if isinstance(value.func, ast.Name) else ""
                )
                if leaf in (
                    "list", "dict", "set", "defaultdict", "OrderedDict",
                    "Counter", "deque",
                ):
                    out.add(name)
        return out

    def _locally_bound_names(self) -> set[str]:
        bound = {p.name for p in self.node.func.params}
        for stmt in self.statements:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    bound.add(stmt.target.id)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(stmt.target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        return bound

    # ------------------------------------------------- fixed-point passes

    def propagate(
        self, summary: FunctionSummary, table: SummaryTable
    ) -> bool:
        """One pass of call-transported facts; True if anything changed."""
        changed = False
        for value in self._return_values():
            if not isinstance(value, ast.Call):
                continue
            callee = self._resolve_call(value)
            if callee is None:
                continue
            if summary.rng_origin is None:
                origin = table.rng_origin(callee)
                if origin is not None:
                    summary.rng_origin = origin
                    changed = True
            if not summary.returns_hook and table.returns_hook(callee):
                summary.returns_hook = True
                changed = True
        fanout = self._fanout(table)
        if fanout != summary.rng_fanout:
            summary.rng_fanout = fanout
            changed = True
        return changed


def _add(into: dict[str, int], more: dict[str, int]) -> None:
    for name, count in more.items():
        into[name] = into.get(name, 0) + count


def _peak(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
    out = dict(a)
    for name, count in b.items():
        out[name] = max(out.get(name, 0), count)
    return out


def _terminates(block: list[ast.stmt]) -> bool:
    return bool(block) and isinstance(
        block[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _is_hook_factory_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in HOOK_FACTORY_METHODS
    )
