"""Asyncio-aware whole-program facts layered on the call graph.

The synchronous flow analyses (call graph, summaries, dataflow) see a
program where every call completes before the caller's next statement.
The streaming service broke that assumption: coroutines interleave at
``await`` points, event-loop callbacks run between them, and a spawned
task outlives the statement that created it. This module computes the
facts the async rules (RL013-RL015) consume:

- **coroutine/sync classification** and the **runs-on-loop** set:
  every ``async def``, every protocol callback of an
  ``asyncio.*Protocol`` subclass, and every function registered with
  ``loop.call_soon``/``call_later``/``call_at``/``add_done_callback``.
- **may-block** propagation: direct blocking sites (``time.sleep``,
  ``subprocess``, sync socket/file I/O) flow caller-ward through *sync*
  wrapper chains to a fixed point, carrying a witness chain for the
  diagnostic. Blocking never propagates through a coroutine boundary:
  the coroutine itself is flagged, not its awaiters. References passed
  to ``run_in_executor``/``asyncio.to_thread`` are exempt -- they run
  off-loop by construction.
- **task spawns with ownership**: each ``asyncio.create_task``/
  ``ensure_future`` site is classified as dropped (bare expression),
  discarded (bound to a never-read local), or retained (awaited,
  tracked in a collection, stored on an attribute); attribute-stored
  tasks also record whether any method of the spawning or owning class
  ever calls ``.cancel()``.
- **task contexts and shared state**: each spawn target (and each
  coroutine handed to ``asyncio.run``) roots a *context* -- the set of
  functions reachable from it -- and all event-loop callbacks share the
  ``loop`` context. Attribute accesses are collected per function with
  receiver classes resolved through annotations (``self``, typed
  params, typed ``self.<attr>`` chains), and a per-coroutine scan finds
  writes that *span an await*: an access, an ``await``, then a write to
  the same attribute from a different statement. Single-statement
  updates (``self.n += 1``) are loop-atomic and never span.

Everything here keeps the linter's definite-facts bias: unresolvable
receivers, unbounded recursion, and dynamic registration are dropped,
so the rules under-approximate -- they miss rather than cry wolf.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.lint.flow.callgraph import CallResolver, FunctionNode
from repro.lint.flow.project import Project
from repro.lint.flow.symbols import AnyFunctionDef, ClassInfo

#: Dotted call targets that block the calling thread.
BLOCKING_CALLS = {
    "time.sleep": "time.sleep",
    "subprocess.run": "subprocess.run",
    "subprocess.call": "subprocess.call",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "subprocess.Popen": "subprocess.Popen",
    "subprocess.getoutput": "subprocess.getoutput",
    "os.system": "os.system",
    "os.popen": "os.popen",
    "os.waitpid": "os.waitpid",
    "socket.create_connection": "socket.create_connection",
    "socket.getaddrinfo": "socket.getaddrinfo",
    "socket.gethostbyname": "socket.gethostbyname",
    "urllib.request.urlopen": "urllib.request.urlopen",
    "requests.get": "requests.get",
    "requests.post": "requests.post",
    "requests.request": "requests.request",
    "shutil.copy": "shutil.copy",
    "shutil.copytree": "shutil.copytree",
    "shutil.move": "shutil.move",
}

#: Method names that perform sync file I/O on any receiver (the
#: ``pathlib.Path`` idiom); only meaningful when the enclosing function
#: runs on the loop, so reachability gates false positives.
BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: JSON (de)serialization: CPU work that does not belong on the
#: per-datagram hot path.
JSON_CALLS = frozenset({"json.dumps", "json.loads", "json.dump", "json.load"})

#: asyncio transport-protocol callback names, keyed for the loop set.
PROTOCOL_CALLBACKS = frozenset(
    {
        "connection_made",
        "connection_lost",
        "datagram_received",
        "error_received",
        "data_received",
        "eof_received",
        "pause_writing",
        "resume_writing",
    }
)

#: The per-packet subset: one invocation per received datagram.
PACKET_CALLBACKS = frozenset({"datagram_received", "data_received"})

_ASYNC_PROTO_BASES = frozenset(
    {
        "asyncio.BaseProtocol",
        "asyncio.Protocol",
        "asyncio.BufferedProtocol",
        "asyncio.DatagramProtocol",
        "asyncio.SubprocessProtocol",
    }
)

#: ``loop.<method>(...)`` callback registrations: method -> positional
#: index of the callback argument.
_SCHEDULE_CALLS = {
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "call_later": 1,
    "call_at": 1,
    "add_done_callback": 0,
}

_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})
_EXECUTOR_CALLS = frozenset({"asyncio.to_thread"})
_EXECUTOR_ATTRS = frozenset({"run_in_executor"})

#: Container/receiver mutators treated as writes to the receiver attr.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
    }
)

#: Fixed-point passes for may-block propagation (wrapper-chain depth).
_PROPAGATION_PASSES = 4

#: Interprocedural attr-access attribution depth (call-edge hops).
_ACCESS_HOPS = 2

#: Context reachability bound.
_CONTEXT_DEPTH = 8

#: The shared context id for event-loop callbacks.
LOOP_CONTEXT = "loop"

#: asyncio primitives whose ``async with`` serializes the guarded body.
_LOCK_TYPES = ("asyncio.Lock", "asyncio.Semaphore", "asyncio.Condition")


def _is_lock_expr(node: "FunctionNode", expr: ast.expr) -> bool:
    """``self.<attr>`` initialized to ``asyncio.Lock()`` (or kin)."""
    if not isinstance(expr, ast.Attribute):
        return False
    cls = node.cls
    if cls is None or not (
        isinstance(expr.value, ast.Name) and expr.value.id == "self"
    ):
        return False
    assign = cls.attr_assigns.get(expr.attr)
    if assign is None or not isinstance(assign.value, ast.Call):
        return False
    return _dotted(assign.value.func) in _LOCK_TYPES


@dataclass(frozen=True)
class BlockingSite:
    """One direct blocking (or hot-path JSON) call site."""

    node: ast.AST
    what: str


@dataclass(frozen=True)
class MayBlock:
    """Witness that calling a function may block the loop."""

    what: str
    chain: tuple[str, ...]  # callee qualnames walked to the site

    def describe(self) -> str:
        if not self.chain:
            return self.what
        return " -> ".join((*self.chain, self.what))


@dataclass(frozen=True)
class AttrAccess:
    """One attribute (or module-global) access with a resolved owner.

    ``owner`` is a class qualname, or ``""`` with ``attr`` a dotted
    module-global name. ``node`` anchors diagnostics; for accesses
    attributed interprocedurally it is the *call site* in the function
    being scanned, not the far-away load/store.
    """

    owner: str
    attr: str
    node: ast.AST
    write: bool
    guarded: bool = False

    @property
    def key(self) -> tuple[str, str]:
        return (self.owner, self.attr)


@dataclass(frozen=True)
class SpanningWrite:
    """A write paired with an earlier access across an ``await``."""

    owner: str
    attr: str
    node: ast.AST
    function: str  # coroutine qualname the span occurs in


@dataclass
class TaskSpawn:
    """One ``create_task``/``ensure_future`` site, with ownership."""

    node: ast.Call
    module: str
    spawner: str
    target: Optional[str]
    #: "dropped" | "discarded" | "stored" | "retained"
    ownership: str
    stored_attr: Optional[tuple[str, str]] = None
    cancelled: bool = True


@dataclass
class FunctionFacts:
    """Per-function async facts."""

    qualname: str
    module: str
    is_coroutine: bool = False
    on_loop: bool = False
    packet_callback: bool = False
    blocking: list[BlockingSite] = field(default_factory=list)
    json_sites: list[BlockingSite] = field(default_factory=list)
    calls: list[tuple[ast.Call, str]] = field(default_factory=list)
    accesses: list[AttrAccess] = field(default_factory=list)
    may_block: Optional[MayBlock] = None


class AsyncGraph:
    """All async facts for one project, built once per run."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = project.call_graph()
        self.functions: dict[str, FunctionFacts] = {}
        self.spawns: list[TaskSpawn] = []
        #: context id -> member function qualnames.
        self.contexts: dict[str, frozenset[str]] = {}
        #: coroutine qualname -> spanning writes found in its body.
        self.spans: dict[str, list[SpanningWrite]] = {}
        self._edges: Optional[dict[str, set[str]]] = None

    @classmethod
    def build(cls, project: Project) -> "AsyncGraph":
        self = cls(project)
        run_roots: list[str] = []
        scheduled: set[str] = set()
        for node in self.graph.nodes.values():
            collector = _FunctionCollector(self, node)
            facts = collector.collect()
            self.functions[facts.qualname] = facts
            run_roots.extend(collector.run_roots)
            scheduled.update(collector.scheduled)
        self._mark_loop_callbacks(scheduled)
        self._propagate_may_block()
        self._build_contexts(run_roots)
        for qualname, facts in self.functions.items():
            if facts.is_coroutine:
                node = self.graph.nodes[qualname]
                self.spans[qualname] = _SpanScanner(self, node).scan()
        self._classify_spawn_cancellation()
        return self

    # ------------------------------------------------------------ loop set

    def _bases_of(self, cls: ClassInfo) -> set[str]:
        module = self.project.modules.get(cls.module)
        if module is None:
            return set()
        imports = module.symbols.imports
        out: set[str] = set()
        for base in cls.bases:
            dotted = _dotted(base)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            canonical = imports.get(head, head)
            out.add(f"{canonical}.{rest}" if rest else canonical)
        return out

    def _is_protocol_class(self, cls: ClassInfo) -> bool:
        if self._bases_of(cls) & _ASYNC_PROTO_BASES:
            return True
        # One inheritance hop through a project class is enough for the
        # codebase's idiom; deeper towers stay unclassified (miss, not
        # cry wolf).
        for base in cls.bases:
            ref = self.project.resolve_annotation(cls.module, base)
            parent = (
                self.project.resolve_class(ref.qualname)
                if ref.kind == "cls"
                else None
            )
            if parent is not None and self._bases_of(parent) & _ASYNC_PROTO_BASES:
                return True
        return False

    def _mark_loop_callbacks(self, scheduled: set[str]) -> None:
        for qualname, facts in self.functions.items():
            node = self.graph.nodes[qualname]
            if facts.is_coroutine:
                facts.on_loop = True
                continue
            if qualname in scheduled:
                facts.on_loop = True
            if (
                node.cls is not None
                and node.func.name in PROTOCOL_CALLBACKS
                and self._is_protocol_class(node.cls)
            ):
                facts.on_loop = True
                facts.packet_callback = node.func.name in PACKET_CALLBACKS

    # --------------------------------------------------------------- edges

    def edge_map(self) -> dict[str, set[str]]:
        """Call edges over collected facts (resolver + typed locals)."""
        if self._edges is None:
            self._edges = {
                qualname: {
                    target
                    for _, target in facts.calls
                    if target in self.functions
                }
                for qualname, facts in self.functions.items()
            }
        return self._edges

    def reachable(self, entry: str, max_depth: int) -> set[str]:
        edges = self.edge_map()
        seen = {entry}
        frontier = [entry]
        for _ in range(max_depth):
            nxt: list[str] = []
            for name in frontier:
                for callee in edges.get(name, ()):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.append(callee)
            if not nxt:
                break
            frontier = nxt
        return seen

    # ----------------------------------------------------------- may-block

    def _propagate_may_block(self) -> None:
        for facts in self.functions.values():
            if facts.blocking:
                site = facts.blocking[0]
                facts.may_block = MayBlock(site.what, ())
        edges = self.edge_map()
        for _ in range(_PROPAGATION_PASSES):
            changed = False
            for qualname, facts in self.functions.items():
                if facts.may_block is not None:
                    continue
                for callee in sorted(edges.get(qualname, ())):
                    sub = self.functions.get(callee)
                    if sub is None or sub.may_block is None:
                        continue
                    if sub.is_coroutine:
                        # Awaiting a blocking coroutine is *that*
                        # coroutine's finding, not the awaiter's.
                        continue
                    facts.may_block = MayBlock(
                        sub.may_block.what, (callee, *sub.may_block.chain)
                    )
                    changed = True
                    break
            if not changed:
                break

    # ------------------------------------------------------------ contexts

    def _build_contexts(self, run_roots: list[str]) -> None:
        roots: dict[str, set[str]] = {}
        for spawn in self.spawns:
            if spawn.target is not None:
                roots.setdefault(spawn.target, set()).add(spawn.target)
        for target in run_roots:
            roots.setdefault(target, set()).add(target)
        loop_roots = {
            qualname
            for qualname, facts in self.functions.items()
            if facts.on_loop and not facts.is_coroutine
        }
        if loop_roots:
            roots[LOOP_CONTEXT] = loop_roots
        for context_id, entries in roots.items():
            members: set[str] = set()
            for entry in entries:
                members |= self.reachable(entry, _CONTEXT_DEPTH)
            if context_id == LOOP_CONTEXT:
                # Reaching *into* a coroutine from a callback means the
                # callback created it, not that it runs there.
                members = {
                    m
                    for m in members
                    if not self.functions[m].is_coroutine
                    or m in entries
                }
            self.contexts[context_id] = frozenset(members)

    def contexts_of(self, qualname: str) -> frozenset[str]:
        return frozenset(
            context_id
            for context_id, members in self.contexts.items()
            if qualname in members
        )

    def access_contexts(self) -> dict[tuple[str, str], set[str]]:
        """Map each accessed (owner, attr) key to its context ids."""
        out: dict[tuple[str, str], set[str]] = {}
        for context_id, members in self.contexts.items():
            for member in members:
                facts = self.functions.get(member)
                if facts is None:
                    continue
                for access in facts.accesses:
                    out.setdefault(access.key, set()).add(context_id)
        return out

    def guarded_keys(self) -> set[tuple[str, str]]:
        """Keys whose every access sits under an ``asyncio.Lock``."""
        guarded: set[tuple[str, str]] = set()
        unguarded: set[tuple[str, str]] = set()
        for facts in self.functions.values():
            for access in facts.accesses:
                (guarded if access.guarded else unguarded).add(access.key)
        return guarded - unguarded

    # ------------------------------------------------------- spawn hygiene

    def _classify_spawn_cancellation(self) -> None:
        for spawn in self.spawns:
            if spawn.stored_attr is None:
                continue
            owner, _ = spawn.stored_attr
            spawner_cls = spawn.spawner.rsplit(".", 1)[0]
            candidates = {owner, spawner_cls}
            spawn.cancelled = any(
                self._class_cancels(qualname) for qualname in candidates
            )

    def _class_cancels(self, class_qualname: str) -> bool:
        info = self.project.resolve_class(class_qualname)
        if info is None:
            return False
        for method in info.methods.values():
            for node in ast.walk(method.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "cancel"
                ):
                    return True
        return False


def _dotted(node: ast.expr) -> Optional[str]:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class ReceiverTyper:
    """Resolve receiver expressions to project classes (best effort).

    Beyond the resolver's annotated-parameter typing this also types
    locals built by direct construction
    (``session = ServiceSession(...)``) -- the service idiom for
    per-connection state -- and annotated locals. A name with two
    *conflicting* class-resolvable assignments stays untyped;
    unresolvable re-assignments (dict lookups of the same object) do
    not clear an established type.
    """

    def __init__(self, project: Project, node: FunctionNode) -> None:
        self.project = project
        self.node = node
        self._params: dict[str, ClassInfo] = {}
        for param in node.func.params:
            ref = project.resolve_annotation(node.module, param.annotation)
            if ref.kind == "cls":
                info = project.resolve_class(ref.qualname)
                if info is not None:
                    self._params[param.name] = info
        self._locals = self._constructed_locals()

    def _constructed_locals(self) -> dict[str, ClassInfo]:
        classes: dict[str, ClassInfo] = {}
        conflicted: set[str] = set()
        for stmt in ast.walk(self.node.func.node):
            name: Optional[str] = None
            info: Optional[ClassInfo] = None
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                name = stmt.targets[0].id
                if isinstance(stmt.value, ast.Call):
                    info = self._resolved_class(stmt.value.func)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name = stmt.target.id
                info = self._resolved_class(stmt.annotation)
            if name is None or info is None:
                continue
            seen = classes.get(name)
            if seen is not None and seen.qualname != info.qualname:
                conflicted.add(name)
            classes[name] = info
        return {
            name: info
            for name, info in classes.items()
            if name not in conflicted
        }

    def _resolved_class(self, expr: ast.expr) -> Optional[ClassInfo]:
        ref = self.project.resolve_annotation(self.node.module, expr)
        if ref.kind != "cls":
            return None
        return self.project.resolve_class(ref.qualname)

    def class_of(self, expr: ast.expr) -> Optional[ClassInfo]:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.node.cls
            found = self._params.get(expr.id)
            if found is not None:
                return found
            return self._locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.class_of(expr.value)
            if base is None:
                return None
            ref = self.project.attr_type(base, expr.attr)
            if ref.kind == "cls":
                return self.project.resolve_class(ref.qualname)
        return None


class _FunctionCollector:
    """One pass over a function body: sites, calls, accesses, spawns."""

    def __init__(self, owner: AsyncGraph, node: FunctionNode) -> None:
        self.owner = owner
        self.project = owner.project
        self.node = node
        self.symbols = self.project.modules[node.module].symbols
        self.resolver = CallResolver(self.project, node)
        self.typer = ReceiverTyper(self.project, node)
        self.facts = FunctionFacts(
            qualname=node.qualname,
            module=node.module,
            is_coroutine=node.func.is_async,
        )
        self.run_roots: list[str] = []
        self.scheduled: list[str] = []
        self._exempt: set[int] = set()
        self._seen_attrs: set[int] = set()
        self._guarded_ids: set[int] = set()
        #: Attribute writes recorded in ``__init__`` are construction
        #: handoff -- they happen-before any sharing -- and never count
        #: as cross-task accesses.
        self._handoff = node.func.name in ("__init__", "__post_init__")

    # --------------------------------------------------------------- main

    def collect(self) -> FunctionFacts:
        func = self.node.func.node
        self._mark_executor_exemptions(func)
        self._mark_lock_guards(func)
        for stmt in ast.walk(func):
            self._visit(stmt)
        return self.facts

    def _mark_lock_guards(self, func: AnyFunctionDef) -> None:
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.AsyncWith):
                continue
            if not any(
                _is_lock_expr(self.node, item.context_expr)
                for item in stmt.items
            ):
                continue
            for body_stmt in stmt.body:
                for sub in ast.walk(body_stmt):
                    self._guarded_ids.add(id(sub))

    def _mark_executor_exemptions(self, func: AnyFunctionDef) -> None:
        for call in ast.walk(func):
            if not isinstance(call, ast.Call):
                continue
            dotted = self._dotted_target(call)
            is_executor = dotted in _EXECUTOR_CALLS or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _EXECUTOR_ATTRS
            )
            if not is_executor:
                continue
            for arg in [*call.args, *[kw.value for kw in call.keywords]]:
                for sub in ast.walk(arg):
                    self._exempt.add(id(sub))

    def _dotted_target(self, call: ast.Call) -> Optional[str]:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        canonical = self.symbols.imports.get(head)
        if canonical is None:
            return dotted
        return f"{canonical}.{rest}" if rest else canonical

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._visit_store(node)
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Load
        ):
            self._record_attr(node, write=False)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._record_global(node, write=False)
        elif isinstance(node, ast.While):
            self._check_cpu_loop(node)

    # -------------------------------------------------------------- calls

    def _visit_call(self, call: ast.Call) -> None:
        dotted = self._dotted_target(call)
        if dotted is not None and id(call) not in self._exempt:
            what = BLOCKING_CALLS.get(dotted)
            if what is not None:
                self.facts.blocking.append(BlockingSite(call, what))
            elif dotted in JSON_CALLS:
                self.facts.json_sites.append(BlockingSite(call, dotted))
            elif dotted == "open":
                if "open" not in self.symbols.imports:
                    self.facts.blocking.append(BlockingSite(call, "open"))
            elif dotted == "input":
                self.facts.blocking.append(BlockingSite(call, "input"))
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in BLOCKING_METHODS
            and id(call) not in self._exempt
        ):
            self.facts.blocking.append(
                BlockingSite(call, f"<receiver>.{call.func.attr}")
            )
        target = self._resolve_call(call)
        if target is not None:
            self.facts.calls.append((call, target))
        self._visit_spawn(call, dotted)
        self._visit_schedule(call)
        if dotted == "asyncio.run" and call.args:
            root = self._callback_target(call.args[0])
            if root is not None:
                self.run_roots.append(root)
        # Mutator method on an attribute chain: a write to the receiver.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATOR_METHODS
        ):
            self._record_attr(call.func.value, write=True, anchor=call)

    def _visit_schedule(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        position = _SCHEDULE_CALLS.get(func.attr)
        if position is None or len(call.args) <= position:
            return
        target = self._callback_target(call.args[position])
        if target is not None:
            self.scheduled.append(target)

    def _resolve_call(self, call: ast.Call) -> Optional[str]:
        """Resolver result, widened by typed-local receiver lookup."""
        target = self.resolver.resolve(call)
        if target is not None:
            return target
        func = call.func
        if isinstance(func, ast.Attribute):
            owner = self.typer.class_of(func.value)
            if owner is not None:
                found = self.project.find_method(owner, func.attr)
                if found is not None:
                    cls_info, method = found
                    return f"{cls_info.qualname}.{method.name}"
        return None

    def _callback_target(self, expr: ast.expr) -> Optional[str]:
        """Qualname of a function referenced (or called) by ``expr``."""
        reference = expr.func if isinstance(expr, ast.Call) else expr
        if not isinstance(reference, (ast.Name, ast.Attribute)):
            return None
        fake = ast.Call(func=reference, args=[], keywords=[])
        return self._resolve_call(fake)

    # ------------------------------------------------------------- spawns

    def _is_spawn(self, call: ast.Call, dotted: Optional[str]) -> bool:
        if dotted in ("asyncio.create_task", "asyncio.ensure_future"):
            return True
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _SPAWN_ATTRS
        )

    def _visit_spawn(self, call: ast.Call, dotted: Optional[str]) -> None:
        if not self._is_spawn(call, dotted):
            return
        target = None
        if call.args:
            target = self._callback_target(call.args[0])
        spawn = TaskSpawn(
            node=call,
            module=self.node.module,
            spawner=self.node.qualname,
            target=target,
            ownership="retained",
        )
        self._classify_ownership(call, spawn)
        self.owner.spawns.append(spawn)

    def _classify_ownership(self, call: ast.Call, spawn: TaskSpawn) -> None:
        parents = _parent_chain(self.node.func.node, call)
        if not parents:
            return
        parent = parents[-1]
        if isinstance(parent, ast.Expr) and parent.value is call:
            spawn.ownership = "dropped"
            return
        if isinstance(parent, ast.Assign) and parent.value is call:
            targets = parent.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                name = targets[0].id
                if not self._local_used_after(parent, name):
                    spawn.ownership = "discarded"
                return
            if len(targets) == 1 and isinstance(targets[0], ast.Attribute):
                attr_node = targets[0]
                owner_cls = self.typer.class_of(attr_node.value)
                spawn.ownership = "stored"
                spawn.stored_attr = (
                    owner_cls.qualname if owner_cls is not None else "",
                    attr_node.attr,
                )
                return

    def _local_used_after(self, assign: ast.stmt, name: str) -> bool:
        # Lexical position stands in for execution order here: a load
        # of the name anywhere in the function counts as a use.
        for node in ast.walk(self.node.func.node):
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False

    # ----------------------------------------------------------- accesses

    def _visit_store(self, stmt: ast.stmt) -> None:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        else:
            assert isinstance(stmt, ast.AnnAssign)
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Attribute):
                self._record_attr(target, write=True)
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Attribute
            ):
                self._record_attr(target.value, write=True, anchor=stmt)
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                self._record_global(target.value, write=True, anchor=stmt)
            elif isinstance(target, ast.Name):
                self._record_global(target, write=True, anchor=stmt)
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Attribute):
                        self._record_attr(element, write=True)

    def _record_attr(
        self,
        node: ast.expr,
        write: bool,
        anchor: Optional[ast.AST] = None,
    ) -> None:
        if not isinstance(node, ast.Attribute):
            return
        if id(node) in self._seen_attrs:
            return
        self._seen_attrs.add(id(node))
        if self._handoff:
            return
        owner = self.typer.class_of(node.value)
        if owner is None:
            return
        self.facts.accesses.append(
            AttrAccess(
                owner=owner.qualname,
                attr=node.attr,
                node=anchor if anchor is not None else node,
                write=write,
                guarded=id(node) in self._guarded_ids,
            )
        )

    def _record_global(
        self,
        node: ast.Name,
        write: bool,
        anchor: Optional[ast.AST] = None,
    ) -> None:
        if self._handoff:
            return
        if node.id not in self.symbols.assigns:
            return
        if not write:
            return  # global reads are collected only where written
        value = self.symbols.assigns.get(node.id)
        if not isinstance(value, (ast.Dict, ast.List, ast.Set, ast.Call)):
            return
        self.facts.accesses.append(
            AttrAccess(
                owner="",
                attr=f"{self.node.module}.{node.id}",
                node=anchor if anchor is not None else node,
                write=True,
                guarded=id(node) in self._guarded_ids,
            )
        )

    # ------------------------------------------------------------ cpu loop

    def _check_cpu_loop(self, node: ast.While) -> None:
        """``while True`` with no suspension or exit never yields."""
        if not _is_constant_true(node.test):
            return
        for sub in ast.walk(node):
            if isinstance(
                sub,
                (
                    ast.Await,
                    ast.AsyncFor,
                    ast.AsyncWith,
                    ast.Break,
                    ast.Return,
                    ast.Raise,
                    ast.Yield,
                    ast.YieldFrom,
                ),
            ):
                return
        self.facts.blocking.append(BlockingSite(node, "unbounded loop"))


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _parent_chain(func: AnyFunctionDef, needle: ast.AST) -> list[ast.AST]:
    """Ancestor chain of ``needle`` within ``func`` (innermost last)."""
    out: list[ast.AST] = []

    def walk(node: ast.AST, trail: list[ast.AST]) -> bool:
        for child in ast.iter_child_nodes(node):
            if child is needle:
                out.extend(trail + [node])
                return True
            if walk(child, trail + [node]):
                return True
        return False

    walk(func, [])
    # Drop everything above the nearest statement: callers want the
    # enclosing statement, which is the last stmt in the chain.
    for index in range(len(out) - 1, -1, -1):
        if isinstance(out[index], ast.stmt):
            return out[: index + 1]
    return out


# ------------------------------------------------------------ span scanner


@dataclass(frozen=True)
class _Event:
    """One ordered event in a coroutine body."""

    kind: str  # "access" | "await"
    key: tuple[str, str] = ("", "")
    stmt_id: tuple[int, str] = (0, "")
    write: bool = False
    node: Optional[ast.AST] = None


class _SpanScanner:
    """Find writes spanning an await inside one coroutine body.

    Statements are walked in source order; branch bodies are walked
    sequentially (an over-approximation of path order that stays sound
    for *pairing* -- the pair must still straddle an ``await`` event
    that really sits between the two accesses on some path through a
    loop). Loops containing an await are unrolled once so an access in
    iteration N pairs with a write in iteration N+1.
    """

    def __init__(self, owner: AsyncGraph, node: FunctionNode) -> None:
        self.owner = owner
        self.project = owner.project
        self.node = node
        self.resolver = CallResolver(self.project, node)
        self.events: list[_Event] = []
        self._guard_depth = 0
        self._summary_memo: dict[str, list[AttrAccess]] = {}

    def scan(self) -> list[SpanningWrite]:
        for stmt in self.node.func.node.body:
            self._emit_stmt(stmt)
        return self._pair()

    # ------------------------------------------------------------ emission

    def _emit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(stmt, ast.If):
            self._emit_expr(stmt.test, stmt)
            self._emit_block(stmt.body)
            self._emit_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._emit_loop(stmt)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._emit_with(stmt)
            return
        if isinstance(stmt, ast.Try):
            self._emit_block(stmt.body)
            for handler in stmt.handlers:
                self._emit_block(handler.body)
            self._emit_block(stmt.orelse)
            self._emit_block(stmt.finalbody)
            return
        self._emit_simple(stmt)

    def _emit_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._emit_stmt(stmt)

    def _emit_loop(self, stmt: ast.While | ast.For | ast.AsyncFor) -> None:
        def once() -> None:
            if isinstance(stmt, ast.While):
                self._emit_expr(stmt.test, stmt)
            else:
                self._emit_expr(stmt.iter, stmt)
                if isinstance(stmt, ast.AsyncFor):
                    self.events.append(_Event("await"))
            self._emit_block(stmt.body)

        once()
        if _contains_await(stmt):
            once()
        self._emit_block(stmt.orelse)

    def _emit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        guarded = False
        for item in stmt.items:
            self._emit_expr(item.context_expr, stmt)
        if isinstance(stmt, ast.AsyncWith):
            self.events.append(_Event("await"))
            guarded = any(
                self._is_lock(item.context_expr) for item in stmt.items
            )
        if guarded:
            self._guard_depth += 1
        self._emit_block(stmt.body)
        if guarded:
            self._guard_depth -= 1
            self.events.append(_Event("await"))  # lock release point

    def _is_lock(self, expr: ast.expr) -> bool:
        return _is_lock_expr(self.node, expr)

    def _emit_simple(self, stmt: ast.stmt) -> None:
        accesses = self._stmt_accesses(stmt)
        has_await = _contains_await(stmt)
        if self._guard_depth > 0:
            return  # lock-protected: spans here are safe by design
        if not has_await:
            stmt_id = (id(stmt), "")
            for access in accesses:
                self.events.append(
                    _Event(
                        "access",
                        key=access.key,
                        stmt_id=stmt_id,
                        write=access.write,
                        node=access.node,
                    )
                )
            return
        # Reads happen before the await commits, writes after: an
        # ``x = await f() + self.n`` style statement is genuinely split.
        for access in accesses:
            if not access.write:
                self.events.append(
                    _Event(
                        "access",
                        key=access.key,
                        stmt_id=(id(stmt), "pre"),
                        write=False,
                        node=access.node,
                    )
                )
        self.events.append(_Event("await"))
        for access in accesses:
            if access.write:
                self.events.append(
                    _Event(
                        "access",
                        key=access.key,
                        stmt_id=(id(stmt), "post"),
                        write=True,
                        node=access.node,
                    )
                )

    def _emit_expr(self, expr: ast.expr, stmt: ast.stmt) -> None:
        accesses = self._expr_accesses(expr, stmt)
        if self._guard_depth > 0:
            return
        stmt_id = (id(stmt), "test")
        for access in accesses:
            self.events.append(
                _Event(
                    "access",
                    key=access.key,
                    stmt_id=stmt_id,
                    write=access.write,
                    node=access.node,
                )
            )

    # ---------------------------------------------------- access gathering

    def _stmt_accesses(self, stmt: ast.stmt) -> list[AttrAccess]:
        return self._subtree_accesses(stmt)

    def _expr_accesses(
        self, expr: ast.expr, stmt: ast.stmt
    ) -> list[AttrAccess]:
        del stmt  # anchoring is per access node
        return self._subtree_accesses(expr)

    def _subtree_accesses(self, root: ast.AST) -> list[AttrAccess]:
        shallow = _ShallowCollector(self.owner, self.node, root)
        accesses = shallow.collect()
        for call, target in shallow.calls:
            accesses.extend(
                replace(access, node=call)
                for access in self._callee_accesses(target, 0)
            )
        return accesses

    def _callee_accesses(self, qualname: str, hops: int) -> list[AttrAccess]:
        if hops >= _ACCESS_HOPS:
            return []
        memo = self._summary_memo.get(qualname)
        if memo is not None:
            return memo
        self._summary_memo[qualname] = []  # cycle guard
        facts = self.owner.functions.get(qualname)
        if facts is None or facts.is_coroutine:
            return []
        out = list(facts.accesses)
        for _, target in facts.calls:
            out.extend(self._callee_accesses(target, hops + 1))
        self._summary_memo[qualname] = out
        return out

    # ------------------------------------------------------------- pairing

    def _pair(self) -> list[SpanningWrite]:
        accessed: dict[tuple[str, str], set[tuple[int, str]]] = {}
        pending: dict[tuple[str, str], set[tuple[int, str]]] = {}
        found: dict[tuple[str, str], SpanningWrite] = {}
        for event in self.events:
            if event.kind == "await":
                for key, stmts in accessed.items():
                    pending.setdefault(key, set()).update(stmts)
                continue
            if event.write and event.key not in found:
                prior = pending.get(event.key, set())
                if prior - {event.stmt_id}:
                    assert event.node is not None
                    found[event.key] = SpanningWrite(
                        owner=event.key[0],
                        attr=event.key[1],
                        node=event.node,
                        function=self.node.qualname,
                    )
            accessed.setdefault(event.key, set()).add(event.stmt_id)
        return list(found.values())


class _ShallowCollector:
    """Direct attr accesses + resolved calls of one statement subtree."""

    def __init__(
        self,
        owner: AsyncGraph,
        node: FunctionNode,
        root: ast.AST,
    ) -> None:
        self.owner = owner
        self.node = node
        self.root = root
        self.resolver = CallResolver(owner.project, node)
        self.typer = ReceiverTyper(owner.project, node)
        self.calls: list[tuple[ast.Call, str]] = []
        self._out: list[AttrAccess] = []
        self._seen: set[int] = set()

    def collect(self) -> list[AttrAccess]:
        for sub in ast.walk(self.root):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(sub, ast.Call):
                target = self.resolver.resolve(sub)
                if target is None and isinstance(sub.func, ast.Attribute):
                    owner_cls = self.typer.class_of(sub.func.value)
                    if owner_cls is not None:
                        found = self.owner.project.find_method(
                            owner_cls, sub.func.attr
                        )
                        if found is not None:
                            cls_info, method = found
                            target = f"{cls_info.qualname}.{method.name}"
                if target is not None:
                    self.calls.append((sub, target))
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATOR_METHODS
                ):
                    self._add(sub.func.value, write=True, anchor=sub)
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    list(sub.targets)
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target_expr in targets:
                    if isinstance(target_expr, ast.Attribute):
                        self._add(target_expr, write=True)
                    elif isinstance(target_expr, ast.Subscript) and isinstance(
                        target_expr.value, ast.Attribute
                    ):
                        self._add(
                            target_expr.value, write=True, anchor=sub
                        )
            elif isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Load
            ):
                self._add(sub, write=False)
        return self._out

    def _add(
        self,
        node: ast.expr,
        write: bool,
        anchor: Optional[ast.AST] = None,
    ) -> None:
        if not isinstance(node, ast.Attribute):
            return
        if id(node) in self._seen:
            return
        self._seen.add(id(node))
        owner = self.typer.class_of(node.value)
        if owner is None:
            return
        self._out.append(
            AttrAccess(
                owner=owner.qualname,
                attr=node.attr,
                node=anchor if anchor is not None else node,
                write=write,
            )
        )


def _contains_await(node: ast.AST) -> bool:
    """True if executing ``node`` suspends (nested defs excluded)."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
        if (
            isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef))
            and current is not node
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False
