"""Whole-program analysis layer for repro-lint.

``repro.lint.flow`` gives rules a project-wide view that the per-file
visitor model cannot: dotted module names, the project-internal import
graph, per-module symbol tables with function/constructor summaries, and
an intraprocedural dataflow engine over a small abstract domain
(dimensions of the QA math, container shapes, project classes).

Rules that need these facts subclass
:class:`repro.lint.rules.base.FlowRule` and receive one shared
:class:`~repro.lint.flow.project.Project` per lint run.
"""

from repro.lint.flow.dataflow import FunctionAnalysis, analyze_module
from repro.lint.flow.project import ModuleInfo, Project
from repro.lint.flow.symbols import ModuleSymbols, TypeRef
from repro.lint.flow.units import Dim, UNIT_ALIASES, UNITS_MODULE

__all__ = [
    "Dim",
    "FunctionAnalysis",
    "ModuleInfo",
    "ModuleSymbols",
    "Project",
    "TypeRef",
    "UNIT_ALIASES",
    "UNITS_MODULE",
    "analyze_module",
]
