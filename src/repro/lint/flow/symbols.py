"""Per-module symbol tables for the flow analyses.

One :class:`ModuleSymbols` is built per file: the module's imports, its
top-level assignments (constants and type aliases), and a
:class:`FunctionInfo`/:class:`ClassInfo` entry per definition. These are
*syntactic* tables -- annotation expressions are kept as raw AST and only
resolved on demand by :class:`repro.lint.flow.project.Project`, which
can follow imports across modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.lint.flow.units import Dim


@dataclass(frozen=True)
class TypeRef:
    """A resolved annotation, reduced to what the dataflow cares about.

    ``kind`` is one of:

    - ``any`` -- unknown (plain ``float``, unannotated, unresolvable)
    - ``num`` -- scalar with dimension ``dim``
    - ``seq`` -- homogeneous sequence of ``elem``
    - ``tup`` -- fixed-shape tuple of ``elems``
    - ``map`` -- mapping onto values of type ``elem``
    - ``fn``  -- callable returning ``elem``
    - ``cls`` -- instance of the project class ``qualname``

    ``integral`` marks int-backed scalars (``int``, ``bool``,
    ``ByteCount``): exact-equality comparisons on them are legitimate,
    so RL009 only fires on the float-backed remainder.
    """

    kind: str
    dim: Optional[Dim] = None
    elem: Optional["TypeRef"] = None
    elems: tuple["TypeRef", ...] = ()
    qualname: str = ""
    integral: bool = False


ANY = TypeRef("any")

#: Sync and async definitions share every field the analyses read; the
#: tables record both and mark coroutines with ``is_async``.
AnyFunctionDef = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class Param:
    name: str
    annotation: Optional[ast.expr]


@dataclass
class FunctionInfo:
    name: str
    node: AnyFunctionDef
    params: list[Param]
    returns: Optional[ast.expr]
    is_property: bool = False
    is_staticmethod: bool = False
    is_classmethod: bool = False
    is_async: bool = False


@dataclass
class AttrAssign:
    """``self.<attr> = <value>`` seen in ``__init__``.

    ``tuple_index`` is set when the attribute was one target of a tuple
    unpacking (``self.a, self.b = expr``).
    """

    value: ast.expr
    tuple_index: Optional[int] = None


@dataclass
class ClassInfo:
    name: str
    qualname: str
    module: str
    node: ast.ClassDef
    bases: list[ast.expr]
    body_fields: dict[str, ast.expr] = field(default_factory=dict)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_ann: dict[str, ast.expr] = field(default_factory=dict)
    attr_assigns: dict[str, AttrAssign] = field(default_factory=dict)
    field_order: list[str] = field(default_factory=list)
    is_dataclass: bool = False


@dataclass
class ModuleSymbols:
    name: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Top-level ``NAME = <expr>`` assignments (constants, type aliases).
    assigns: dict[str, ast.expr] = field(default_factory=dict)


def _decorator_names(node: AnyFunctionDef | ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _function_info(node: AnyFunctionDef) -> FunctionInfo:
    decorators = _decorator_names(node)
    args = node.args
    params = [
        Param(arg.arg, arg.annotation)
        for arg in [*args.posonlyargs, *args.args]
    ]
    return FunctionInfo(
        name=node.name,
        node=node,
        params=params,
        returns=node.returns,
        is_property=("property" in decorators or "cached_property" in decorators),
        is_staticmethod="staticmethod" in decorators,
        is_classmethod="classmethod" in decorators,
        is_async=isinstance(node, ast.AsyncFunctionDef),
    )


def _self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` for a ``self.attr`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_init_attrs(info: ClassInfo, init: FunctionInfo) -> None:
    for stmt in ast.walk(init.node):
        if isinstance(stmt, ast.AnnAssign):
            attr = _self_attr(stmt.target)
            if attr is not None and attr not in info.attr_ann:
                info.attr_ann[attr] = stmt.annotation
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr is not None and attr not in info.attr_assigns:
                    info.attr_assigns[attr] = AttrAssign(stmt.value)
                elif isinstance(target, ast.Tuple):
                    for index, element in enumerate(target.elts):
                        attr = _self_attr(element)
                        if attr is not None and attr not in info.attr_assigns:
                            info.attr_assigns[attr] = AttrAssign(
                                stmt.value, tuple_index=index
                            )


def _class_info(node: ast.ClassDef, module: str) -> ClassInfo:
    info = ClassInfo(
        name=node.name,
        qualname=f"{module}.{node.name}",
        module=module,
        node=node,
        bases=list(node.bases),
        is_dataclass="dataclass" in _decorator_names(node),
    )
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.body_fields[stmt.target.id] = stmt.annotation
            info.field_order.append(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = _function_info(stmt)
    init = info.methods.get("__init__")
    if init is not None:
        _collect_init_attrs(info, init)
    return info


def _module_imports(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted import target (absolute only)."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports


def build_module_symbols(name: str, tree: ast.Module) -> ModuleSymbols:
    symbols = ModuleSymbols(name=name, imports=_module_imports(tree))
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions[stmt.name] = _function_info(stmt)
        elif isinstance(stmt, ast.ClassDef):
            symbols.classes[stmt.name] = _class_info(stmt, name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    symbols.assigns[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                symbols.assigns[stmt.target.id] = stmt.value
    return symbols
