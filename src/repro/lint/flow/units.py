"""Dimension algebra for RL006.

A :class:`Dim` is a pair of rational exponents over the two base
dimensions of the QA math -- data (bytes) and time (seconds). ``B/s`` is
``Dim(1, -1)``; the AIMD slope ``S`` is ``Dim(1, -2)``; ``sqrt`` halves
every exponent, which is why the exponents are :class:`~fractions.
Fraction` and not ``int`` (the paper's drop rule compares ``na*C - R``
against ``sqrt(2*S*total_buf)`` -- both sides must land on ``B/s``).

The table in :data:`UNIT_ALIASES` mirrors the ``Annotated`` aliases of
:mod:`repro.core.units`. It is duplicated here deliberately: lint
fixtures must resolve ``from repro.core.units import Bytes`` even when
the real module is not part of the linted project. A round-trip test
(``tests/lint/test_flow.py``) asserts the two tables agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

#: Canonical module holding the unit aliases.
UNITS_MODULE = "repro.core.units"


@dataclass(frozen=True)
class Dim:
    """Exponents of (bytes, seconds). ``Dim(0, 0)`` is dimensionless."""

    data: Fraction = Fraction(0)
    time: Fraction = Fraction(0)

    def __mul__(self, other: "Dim") -> "Dim":
        return Dim(self.data + other.data, self.time + other.time)

    def __truediv__(self, other: "Dim") -> "Dim":
        return Dim(self.data - other.data, self.time - other.time)

    def __pow__(self, exponent: Fraction) -> "Dim":
        return Dim(self.data * exponent, self.time * exponent)

    @property
    def dimensionless(self) -> bool:
        return self.data == 0 and self.time == 0

    def render(self) -> str:
        """Human form: ``B/s^2``, ``B^1/2``, ``s``, ``1``."""

        def factor(symbol: str, power: Fraction) -> Optional[str]:
            if power == 0:
                return None
            if power == 1:
                return symbol
            return f"{symbol}^{power}"

        num = [
            part
            for part in (
                factor("B", self.data) if self.data > 0 else None,
                factor("s", self.time) if self.time > 0 else None,
            )
            if part
        ]
        den = [
            part
            for part in (
                factor("B", -self.data) if self.data < 0 else None,
                factor("s", -self.time) if self.time < 0 else None,
            )
            if part
        ]
        if not num and not den:
            return "1"
        head = "*".join(num) if num else "1"
        if den:
            return f"{head}/{'*'.join(den)}"
        return head


DIMENSIONLESS = Dim()
BYTES = Dim(data=Fraction(1))
SECONDS = Dim(time=Fraction(1))
BYTES_PER_SEC = Dim(data=Fraction(1), time=Fraction(-1))
BYTES_PER_SEC2 = Dim(data=Fraction(1), time=Fraction(-2))

#: Alias name (as exported by ``repro.core.units``) -> dimension.
UNIT_ALIASES: dict[str, Dim] = {
    "Bytes": BYTES,
    "ByteCount": BYTES,
    "Seconds": SECONDS,
    "BytesPerSec": BYTES_PER_SEC,
    "BytesPerSec2": BYTES_PER_SEC2,
    "Scalar": DIMENSIONLESS,
}

#: Builtin scalar annotations with a known dimension. ``float`` is
#: deliberately absent: an unannotated/plain-float quantity may carry any
#: dimension, so it stays unknown rather than dimensionless.
BUILTIN_SCALARS: dict[str, Dim] = {
    "int": DIMENSIONLESS,
    "bool": DIMENSIONLESS,
}

#: Unit aliases that are int-backed (``Annotated[int, ...]``). Exact
#: equality on these is well-defined, so RL009 leaves them alone.
INT_ALIASES: frozenset[str] = frozenset({"ByteCount"})
