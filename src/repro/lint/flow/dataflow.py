"""Intraprocedural dataflow over a small abstract domain.

The engine walks one function at a time, mapping local names to abstract
values (:class:`~repro.lint.flow.symbols.TypeRef` plus a few
dataflow-only kinds) and propagating dimensions through ``+ - * / **``,
``sqrt``, ``min``/``max``, comparisons, calls, and container shapes.

The domain is deliberately coarse and the checks one-sided: a fact is
only reported when *both* sides of an operation carry a known dimension
and the dimensions disagree. Literals are wildcards for additive
operations and comparisons (``rate > 0`` is fine) but dimensionless
factors for multiplicative ones (``2 * slope`` keeps ``B/s^2``);
anything unannotated stays unknown and unifies with everything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Optional, Sequence

from repro.lint.flow.project import Project
from repro.lint.flow.symbols import ANY, ClassInfo, FunctionInfo, Param, TypeRef
from repro.lint.flow.units import (
    DIMENSIONLESS,
    INT_ALIASES,
    UNIT_ALIASES,
    UNITS_MODULE,
    Dim,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.flow.summaries import SummaryTable

LIT = TypeRef("lit")
BOOL = TypeRef("num", dim=DIMENSIONLESS, integral=True)

_ADDITIVE_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
}
_COMPARE_OPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}
_PASSTHROUGH_BUILTINS = frozenset({"abs", "float", "int", "round"})
_SUMMING_BUILTINS = frozenset({"sum"})


@dataclass(frozen=True)
class Mismatch:
    node: ast.AST
    message: str


def _render(val: TypeRef) -> str:
    if val.kind == "num" and val.dim is not None:
        return val.dim.render()
    if val.kind == "lit":
        return "literal"
    return "?"


def unify(a: TypeRef, b: TypeRef) -> TypeRef:
    """Join two abstract values without reporting anything."""
    if a is b:
        return a
    kinds = (a.kind, b.kind)
    if kinds == ("lit", "lit"):
        return LIT
    if a.kind == "num" and b.kind == "lit":
        return a
    if a.kind == "lit" and b.kind == "num":
        return b
    if kinds == ("num", "num"):
        return a if a.dim == b.dim else ANY
    if kinds == ("seq", "seq"):
        return TypeRef("seq", elem=unify(a.elem or ANY, b.elem or ANY))
    if kinds == ("tup", "tup") and len(a.elems) == len(b.elems):
        return TypeRef(
            "tup",
            elems=tuple(unify(x, y) for x, y in zip(a.elems, b.elems)),
        )
    if a.kind == "tup" and b.kind == "seq":
        return TypeRef("seq", elem=unify(_tuple_elem(a), b.elem or ANY))
    if a.kind == "seq" and b.kind == "tup":
        return TypeRef("seq", elem=unify(a.elem or ANY, _tuple_elem(b)))
    if kinds == ("map", "map"):
        return TypeRef("map", elem=unify(a.elem or ANY, b.elem or ANY))
    if kinds == ("cls", "cls") and a.qualname == b.qualname:
        return a
    return ANY


def _tuple_elem(val: TypeRef) -> TypeRef:
    elem = ANY
    first = True
    for part in val.elems:
        elem = part if first else unify(elem, part)
        first = False
    return elem


def elem_of(val: TypeRef) -> TypeRef:
    """Abstract element type when iterating ``val``."""
    if val.kind == "seq":
        return val.elem or ANY
    if val.kind == "tup":
        return _tuple_elem(val)
    return ANY


class FunctionAnalysis:
    """Infer dimensions through one function body, collecting mismatches."""

    def __init__(
        self,
        project: Project,
        module: str,
        func: FunctionInfo,
        cls: Optional[ClassInfo] = None,
        summaries: Optional["SummaryTable"] = None,
    ) -> None:
        self.project = project
        self.module = module
        self.func = func
        self.cls = cls
        self.summaries = summaries
        self.problems: list[Mismatch] = []
        #: Join of every ``return <expr>`` value (None before the first).
        self.return_value: Optional[TypeRef] = None

    # ------------------------------------------------------------- driver

    def run(self) -> list[Mismatch]:
        env = self._initial_env()
        self.exec_block(self.func.node.body, env)
        return self.problems

    def _initial_env(self) -> dict[str, TypeRef]:
        env: dict[str, TypeRef] = {}
        params = self.func.params
        if (
            self.cls is not None
            and not self.func.is_staticmethod
            and params
            and params[0].name in ("self", "cls")
        ):
            if params[0].name == "self":
                env["self"] = TypeRef("cls", qualname=self.cls.qualname)
            else:
                env["cls"] = ANY
            params = params[1:]
        for param in params:
            env[param.name] = self._ann(param.annotation)
        args = self.func.node.args
        if args.vararg is not None:
            env[args.vararg.arg] = TypeRef("seq", elem=ANY)
        if args.kwarg is not None:
            env[args.kwarg.arg] = TypeRef("map", elem=ANY)
        return env

    def _ann(self, node: Optional[ast.expr]) -> TypeRef:
        return self.project.resolve_annotation(self.module, node)

    def _flag(self, node: ast.AST, message: str) -> None:
        self.problems.append(Mismatch(node, message))

    # ----------------------------------------------------------- checking

    def check_assignable(
        self, node: ast.AST, actual: TypeRef, expected: TypeRef, what: str
    ) -> None:
        """Flag a definite dimension conflict between value and slot."""
        if expected.kind == "num" and actual.kind == "num":
            if expected.dim != actual.dim:
                self._flag(
                    node,
                    f"{what} expects {_render(expected)}, "
                    f"got {_render(actual)}",
                )
            return
        if expected.kind == "seq" and actual.kind in ("seq", "tup"):
            self.check_assignable(
                node,
                elem_of(actual),
                expected.elem or ANY,
                f"element of {what}",
            )
            return
        if expected.kind == "tup" and actual.kind == "tup":
            if len(expected.elems) == len(actual.elems):
                for exp, act in zip(expected.elems, actual.elems):
                    self.check_assignable(node, act, exp, f"element of {what}")

    def _additive(
        self, node: ast.AST, op: str, left: TypeRef, right: TypeRef
    ) -> TypeRef:
        """Check and join operands of ``+ - < <= > >= == != min max``."""
        if left.kind == "num" and right.kind == "num":
            if left.dim != right.dim:
                self._flag(
                    node,
                    f"dimension mismatch: {_render(left)} {op} "
                    f"{_render(right)}",
                )
                return ANY
            if left.integral and not right.integral:
                return right
            return left
        if left.kind == "seq" and right.kind in ("seq", "tup") and op == "+":
            return TypeRef(
                "seq", elem=unify(left.elem or ANY, elem_of(right))
            )
        if left.kind == "num" and right.kind == "lit":
            return left
        if left.kind == "lit" and right.kind == "num":
            return right
        if left.kind == "lit" and right.kind == "lit":
            return LIT
        return ANY

    def _multiplicative(self, left: TypeRef, right: TypeRef) -> TypeRef:
        if left.kind in ("seq", "tup") and right.kind in ("num", "lit"):
            return TypeRef("seq", elem=elem_of(left))  # list repetition
        if right.kind in ("seq", "tup") and left.kind in ("num", "lit"):
            return TypeRef("seq", elem=elem_of(right))
        ld = self._factor_dim(left)
        rd = self._factor_dim(right)
        if ld is None or rd is None:
            return ANY
        if left.kind == "lit" and right.kind == "lit":
            return LIT
        # A literal factor keeps the numeric side's int-ness: ``2 * n``.
        integral = (left.kind != "num" or left.integral) and (
            right.kind != "num" or right.integral
        )
        return TypeRef("num", dim=ld * rd, integral=integral)

    def _divide(self, left: TypeRef, right: TypeRef) -> TypeRef:
        ld = self._factor_dim(left)
        rd = self._factor_dim(right)
        if ld is None or rd is None:
            return ANY
        if left.kind == "lit" and right.kind == "lit":
            return LIT
        return TypeRef("num", dim=ld / rd)

    @staticmethod
    def _factor_dim(val: TypeRef) -> Optional[Dim]:
        """Dimension of a multiplicative factor; literals count as 1."""
        if val.kind == "num" and val.dim is not None:
            return val.dim
        if val.kind == "lit":
            return DIMENSIONLESS
        return None

    # ---------------------------------------------------------- expressions

    def infer(self, node: ast.expr, env: dict[str, TypeRef]) -> TypeRef:
        method = getattr(self, f"_infer_{type(node).__name__}", None)
        if method is not None:
            return method(node, env)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child, env)
        return ANY

    def _infer_Constant(self, node: ast.Constant, env: dict[str, TypeRef]) -> TypeRef:
        if isinstance(node.value, bool):
            return BOOL
        if isinstance(node.value, (int, float)):
            return LIT
        return ANY

    def _infer_Name(self, node: ast.Name, env: dict[str, TypeRef]) -> TypeRef:
        if node.id in env:
            return env[node.id]
        return self._global_value(node.id)

    def _global_value(self, name: str) -> TypeRef:
        info = self.project.modules.get(self.module)
        if info is None:
            return ANY
        return self._module_member(info.name, name)

    def _module_member(self, module: str, name: str) -> TypeRef:
        info = self.project.modules.get(module)
        if info is None:
            return ANY
        symbols = info.symbols
        if name in symbols.functions:
            return TypeRef("func", qualname=f"{module}.{name}")
        if name in symbols.classes:
            return TypeRef("ctor", qualname=f"{module}.{name}")
        if name in symbols.assigns:
            value = symbols.assigns[name]
            if isinstance(value, ast.Constant) and isinstance(
                value.value, (int, float)
            ):
                return LIT
            return ANY
        target = symbols.imports.get(name)
        if target is not None:
            return self._imported_value(target)
        return ANY

    def _imported_value(self, dotted: str) -> TypeRef:
        if dotted in self.project.modules or "." not in dotted:
            return TypeRef("mod", qualname=dotted)
        owner, _, leaf = dotted.rpartition(".")
        target = self.project.modules.get(owner)
        if target is None:
            return TypeRef("mod", qualname=dotted)
        return self._module_member(owner, leaf)

    def _infer_Attribute(self, node: ast.Attribute, env: dict[str, TypeRef]) -> TypeRef:
        base = self.infer(node.value, env)
        return self._attribute_on(base, node.attr)

    def _attribute_on(self, base: TypeRef, attr: str) -> TypeRef:
        if base.kind == "mod":
            if base.qualname == "math":
                return LIT if attr in ("pi", "e", "inf", "tau", "nan") else ANY
            return self._module_member(base.qualname, attr)
        if base.kind == "cls":
            info = self.project.resolve_class(base.qualname)
            if info is None:
                return ANY
            found = self.project.find_method(info, attr)
            if found is not None:
                owner, method = found
                if method.is_property:
                    return self.project.resolve_annotation(
                        owner.module, method.returns
                    )
                return TypeRef(
                    "method", qualname=f"{base.qualname}::{attr}"
                )
            return self.project.attr_type(info, attr)
        return ANY

    def _infer_Call(self, node: ast.Call, env: dict[str, TypeRef]) -> TypeRef:
        func = node.func
        arg_vals = [
            self.infer(arg.value, env)
            if isinstance(arg, ast.Starred)
            else self.infer(arg, env)
            for arg in node.args
        ]
        kw_vals = {
            kw.arg: self.infer(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value, env)
        has_star = any(isinstance(arg, ast.Starred) for arg in node.args)

        if isinstance(func, ast.Name) and func.id not in env:
            builtin = self._builtin_call(node, func.id, arg_vals, kw_vals)
            if builtin is not None:
                return builtin
            unit = self._unit_ctor(func.id)
            if unit is not None:
                return unit
        if isinstance(func, ast.Attribute):
            base = self.infer(func.value, env)
            handled = self._method_on_value(node, base, func.attr, arg_vals)
            if handled is not None:
                return handled
            callee = self._attribute_on(base, func.attr)
        else:
            callee = self.infer(func, env)
        return self._apply(node, callee, arg_vals, kw_vals, has_star)

    def _builtin_call(
        self,
        node: ast.Call,
        name: str,
        arg_vals: list[TypeRef],
        kw_vals: dict[str, TypeRef],
    ) -> Optional[TypeRef]:
        if name in ("min", "max"):
            candidates = list(arg_vals)
            if "default" in kw_vals:
                candidates.append(kw_vals["default"])
            if len(arg_vals) == 1 and arg_vals[0].kind in ("seq", "tup"):
                candidates = [elem_of(arg_vals[0])]
                if "default" in kw_vals:
                    candidates.append(kw_vals["default"])
            result = candidates[0] if candidates else ANY
            for val in candidates[1:]:
                result = self._additive(node, name, result, val)
            return result
        if name in _SUMMING_BUILTINS:
            if not arg_vals:
                return ANY
            result = elem_of(arg_vals[0])
            if len(arg_vals) > 1:
                result = self._additive(node, "sum", result, arg_vals[1])
            return result if result.kind != "any" else ANY
        if name in _PASSTHROUGH_BUILTINS:
            if len(node.args) == 1 and arg_vals:
                return arg_vals[0]
            return ANY
        if name == "len":
            return BOOL
        if name == "range":
            return TypeRef("seq", elem=BOOL)
        if name in ("sorted", "list", "tuple", "set", "frozenset", "reversed"):
            if arg_vals:
                return TypeRef("seq", elem=elem_of(arg_vals[0]))
            return TypeRef("seq", elem=ANY)
        if name == "enumerate":
            inner = elem_of(arg_vals[0]) if arg_vals else ANY
            return TypeRef("seq", elem=TypeRef("tup", elems=(BOOL, inner)))
        if name == "zip":
            return TypeRef(
                "seq",
                elem=TypeRef(
                    "tup", elems=tuple(elem_of(val) for val in arg_vals)
                ),
            )
        if name == "dict":
            return TypeRef("map", elem=ANY)
        return None

    def _method_on_value(
        self,
        node: ast.Call,
        base: TypeRef,
        attr: str,
        arg_vals: list[TypeRef],
    ) -> Optional[TypeRef]:
        """Calls on container values and the math module."""
        if base.kind == "mod" and base.qualname == "math":
            if attr == "sqrt" and arg_vals:
                val = arg_vals[0]
                if val.kind == "num" and val.dim is not None:
                    return TypeRef("num", dim=val.dim ** Fraction(1, 2))
                return LIT if val.kind == "lit" else ANY
            if attr in ("ceil", "floor", "fabs", "trunc") and arg_vals:
                return arg_vals[0]
            if attr == "fsum" and arg_vals:
                return elem_of(arg_vals[0])
            return ANY
        if base.kind == "map":
            value = base.elem or ANY
            if attr == "get":
                result = value
                if len(arg_vals) > 1:
                    result = unify(value, arg_vals[1])
                return result
            if attr == "values":
                return TypeRef("seq", elem=value)
            if attr == "items":
                return TypeRef(
                    "seq", elem=TypeRef("tup", elems=(ANY, value))
                )
            if attr == "keys":
                return TypeRef("seq", elem=ANY)
            if attr in ("copy", "pop"):
                return base if attr == "copy" else value
            return ANY
        if base.kind in ("seq", "tup"):
            if attr == "copy":
                return base
            if attr == "pop":
                return elem_of(base)
            if attr in ("index", "count"):
                return BOOL
            if attr == "append" and arg_vals and base.kind == "seq":
                return ANY
            return ANY
        return None

    def _apply(
        self,
        node: ast.Call,
        callee: TypeRef,
        arg_vals: list[TypeRef],
        kw_vals: dict[str, TypeRef],
        has_star: bool,
    ) -> TypeRef:
        if callee.kind == "fn":
            return callee.elem or ANY
        if callee.kind == "func":
            resolved = self.project.resolve_function(callee.qualname)
            if resolved is None:
                return ANY
            mod, fn = resolved
            if not has_star:
                self._check_args(node, mod, fn.params, arg_vals, kw_vals)
            declared = self.project.resolve_annotation(mod, fn.returns)
            return self._with_summary(declared, f"{mod}.{fn.name}")
        if callee.kind == "method":
            qual, _, name = callee.qualname.partition("::")
            info = self.project.resolve_class(qual)
            if info is None:
                return ANY
            found = self.project.find_method(info, name)
            if found is None:
                return ANY
            owner, method = found
            params = method.params
            if not method.is_staticmethod and params:
                params = params[1:]
            if not has_star:
                self._check_args(
                    node, owner.module, params, arg_vals, kw_vals
                )
            declared = self.project.resolve_annotation(
                owner.module, method.returns
            )
            return self._with_summary(
                declared, f"{owner.qualname}.{method.name}"
            )
        if callee.kind == "ctor":
            info = self.project.resolve_class(callee.qualname)
            if info is None:
                return ANY
            params = self._ctor_params(info)
            if params is not None and not has_star:
                self._check_args(node, info.module, params, arg_vals, kw_vals)
            return TypeRef("cls", qualname=callee.qualname)
        return ANY

    def _unit_ctor(self, name: str) -> Optional[TypeRef]:
        """``Bytes(1500.0)`` carries B, exactly like a ``Bytes``-annotated
        value -- the units module need not be part of the run."""
        target = self.project.canonical(self.module, name)
        if target is None:
            return None
        owner, _, leaf = target.rpartition(".")
        if owner == UNITS_MODULE and leaf in UNIT_ALIASES:
            return TypeRef(
                "num",
                dim=UNIT_ALIASES[leaf],
                integral=leaf in INT_ALIASES,
            )
        return None

    def _with_summary(self, declared: TypeRef, qualname: str) -> TypeRef:
        """Fall back to the callee's summarized return value.

        Only when the annotation says nothing: an explicit annotation
        always wins over what the body happens to compute.
        """
        if declared.kind != "any" or self.summaries is None:
            return declared
        inferred = self.summaries.return_ref(qualname)
        return inferred if inferred is not None else declared

    def _ctor_params(self, info: ClassInfo) -> Optional[Sequence[Param]]:
        found = self.project.find_method(info, "__init__")
        if found is not None:
            _, init = found
            return init.params[1:]
        if info.is_dataclass:
            return [
                Param(name, info.body_fields[name])
                for name in info.field_order
            ]
        return None

    def _check_args(
        self,
        node: ast.Call,
        module: str,
        params: Sequence[Param],
        arg_vals: list[TypeRef],
        kw_vals: dict[str, TypeRef],
    ) -> None:
        by_name = {param.name: param for param in params}
        for param, val in zip(params, arg_vals):
            expected = self.project.resolve_annotation(
                module, param.annotation
            )
            self.check_assignable(
                node, val, expected, f"argument '{param.name}'"
            )
        for name, val in kw_vals.items():
            param = by_name.get(name)
            if param is None:
                continue
            expected = self.project.resolve_annotation(
                module, param.annotation
            )
            self.check_assignable(node, val, expected, f"argument '{name}'")

    def _infer_BinOp(self, node: ast.BinOp, env: dict[str, TypeRef]) -> TypeRef:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        op_type = type(node.op)
        if op_type in _ADDITIVE_OPS:
            return self._additive(node, _ADDITIVE_OPS[op_type], left, right)
        if op_type is ast.Mult:
            return self._multiplicative(left, right)
        if op_type in (ast.Div, ast.FloorDiv):
            return self._divide(left, right)
        if op_type is ast.Pow:
            return self._power(node, left, right)
        if op_type is ast.Mod:
            if left.kind == "num":
                return left
            if left.kind == "lit" and right.kind in ("lit", "num"):
                return right if right.kind == "num" else LIT
            return ANY
        return ANY

    def _power(
        self, node: ast.BinOp, left: TypeRef, right: TypeRef
    ) -> TypeRef:
        exponent: Optional[Fraction] = None
        raw = node.right
        if isinstance(raw, ast.UnaryOp) and isinstance(raw.op, ast.USub):
            raw = raw.operand
            negate = True
        else:
            negate = False
        if isinstance(raw, ast.Constant) and isinstance(
            raw.value, (int, float)
        ):
            try:
                exponent = Fraction(str(raw.value))
            except (ValueError, ZeroDivisionError):
                exponent = None
            if exponent is not None and negate:
                exponent = -exponent
        if left.kind == "lit":
            return LIT
        if left.kind == "num" and left.dim is not None:
            if left.dim.dimensionless:
                return left
            if exponent is not None:
                return TypeRef("num", dim=left.dim**exponent)
        return ANY

    def _infer_UnaryOp(self, node: ast.UnaryOp, env: dict[str, TypeRef]) -> TypeRef:
        operand = self.infer(node.operand, env)
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return operand
        if isinstance(node.op, ast.Not):
            return BOOL
        return ANY

    def _infer_Compare(self, node: ast.Compare, env: dict[str, TypeRef]) -> TypeRef:
        prev = self.infer(node.left, env)
        for op, comparator in zip(node.ops, node.comparators):
            current = self.infer(comparator, env)
            op_type = type(op)
            if op_type in _COMPARE_OPS:
                self._additive(node, _COMPARE_OPS[op_type], prev, current)
            prev = current
        return BOOL

    def _infer_BoolOp(self, node: ast.BoolOp, env: dict[str, TypeRef]) -> TypeRef:
        result: Optional[TypeRef] = None
        for value in node.values:
            val = self.infer(value, env)
            result = val if result is None else unify(result, val)
        return result or ANY

    def _infer_IfExp(self, node: ast.IfExp, env: dict[str, TypeRef]) -> TypeRef:
        self.infer(node.test, env)
        return unify(self.infer(node.body, env), self.infer(node.orelse, env))

    def _infer_Lambda(self, node: ast.Lambda, env: dict[str, TypeRef]) -> TypeRef:
        return TypeRef("fn", elem=ANY)

    def _infer_NamedExpr(self, node: ast.NamedExpr, env: dict[str, TypeRef]) -> TypeRef:
        val = self.infer(node.value, env)
        if isinstance(node.target, ast.Name):
            env[node.target.id] = val
        return val

    def _infer_Subscript(self, node: ast.Subscript, env: dict[str, TypeRef]) -> TypeRef:
        base = self.infer(node.value, env)
        is_slice = isinstance(node.slice, ast.Slice)
        if not is_slice:
            self.infer(node.slice, env)
        if base.kind == "seq":
            return base if is_slice else (base.elem or ANY)
        if base.kind == "tup":
            if is_slice:
                return TypeRef("seq", elem=_tuple_elem(base))
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, int
            ):
                if -len(base.elems) <= index.value < len(base.elems):
                    return base.elems[index.value]
                return ANY
            return _tuple_elem(base)
        if base.kind == "map":
            return base.elem or ANY
        if base.kind == "cls":
            info = self.project.resolve_class(base.qualname)
            if info is not None:
                found = self.project.find_method(info, "__getitem__")
                if found is not None:
                    owner, method = found
                    return self.project.resolve_annotation(
                        owner.module, method.returns
                    )
        return ANY

    def _infer_Tuple(self, node: ast.Tuple, env: dict[str, TypeRef]) -> TypeRef:
        vals = []
        for elt in node.elts:
            if isinstance(elt, ast.Starred):
                self.infer(elt.value, env)
                return TypeRef("seq", elem=ANY)
            vals.append(self.infer(elt, env))
        return TypeRef("tup", elems=tuple(vals))

    def _infer_List(self, node: ast.List, env: dict[str, TypeRef]) -> TypeRef:
        elem: Optional[TypeRef] = None
        for elt in node.elts:
            if isinstance(elt, ast.Starred):
                val = elem_of(self.infer(elt.value, env))
            else:
                val = self.infer(elt, env)
            elem = val if elem is None else unify(elem, val)
        return TypeRef("seq", elem=elem or ANY)

    def _infer_Set(self, node: ast.Set, env: dict[str, TypeRef]) -> TypeRef:
        return self._infer_List(node, env)  # same shape rules

    def _infer_Dict(self, node: ast.Dict, env: dict[str, TypeRef]) -> TypeRef:
        value: Optional[TypeRef] = None
        for key in node.keys:
            if key is not None:
                self.infer(key, env)
        for val_node in node.values:
            val = self.infer(val_node, env)
            value = val if value is None else unify(value, val)
        return TypeRef("map", elem=value or ANY)

    def _comp_env(
        self, generators: list[ast.comprehension], env: dict[str, TypeRef]
    ) -> dict[str, TypeRef]:
        scope = dict(env)
        for gen in generators:
            iter_val = self.infer(gen.iter, scope)
            self._bind_target(gen.target, elem_of(iter_val), scope)
            for cond in gen.ifs:
                self.infer(cond, scope)
        return scope

    def _infer_ListComp(self, node: ast.ListComp, env: dict[str, TypeRef]) -> TypeRef:
        scope = self._comp_env(node.generators, env)
        return TypeRef("seq", elem=self.infer(node.elt, scope))

    def _infer_SetComp(self, node: ast.SetComp, env: dict[str, TypeRef]) -> TypeRef:
        scope = self._comp_env(node.generators, env)
        return TypeRef("seq", elem=self.infer(node.elt, scope))

    def _infer_GeneratorExp(
        self, node: ast.GeneratorExp, env: dict[str, TypeRef]
    ) -> TypeRef:
        scope = self._comp_env(node.generators, env)
        return TypeRef("seq", elem=self.infer(node.elt, scope))

    def _infer_DictComp(self, node: ast.DictComp, env: dict[str, TypeRef]) -> TypeRef:
        scope = self._comp_env(node.generators, env)
        self.infer(node.key, scope)
        return TypeRef("map", elem=self.infer(node.value, scope))

    def _infer_Starred(self, node: ast.Starred, env: dict[str, TypeRef]) -> TypeRef:
        self.infer(node.value, env)
        return ANY

    def _infer_JoinedStr(self, node: ast.JoinedStr, env: dict[str, TypeRef]) -> TypeRef:
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                self.infer(value.value, env)
        return ANY

    # ----------------------------------------------------------- statements

    def exec_block(self, stmts: Sequence[ast.stmt], env: dict[str, TypeRef]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, TypeRef]) -> None:
        if isinstance(stmt, ast.Expr):
            self.infer(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            val = self.infer(stmt.value, env)
            for target in stmt.targets:
                self._assign_target(target, val, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = self._ann(stmt.annotation)
            if stmt.value is not None:
                val = self.infer(stmt.value, env)
                self.check_assignable(
                    stmt, val, declared, "annotated assignment"
                )
            else:
                val = ANY
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = (
                    declared if declared.kind != "any" else val
                )
            else:
                self._store_check(stmt.target, declared, env, bind=False)
        elif isinstance(stmt, ast.AugAssign):
            current = self.infer(stmt.target, env)
            val = self.infer(stmt.value, env)
            op_type = type(stmt.op)
            if op_type in _ADDITIVE_OPS:
                result = self._additive(
                    stmt, _ADDITIVE_OPS[op_type] + "=", current, val
                )
            elif op_type is ast.Mult:
                result = self._multiplicative(current, val)
            elif op_type in (ast.Div, ast.FloorDiv):
                result = self._divide(current, val)
            else:
                result = ANY
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = result
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self.infer(stmt.value, env)
                declared = self._ann(self.func.returns)
                self.check_assignable(stmt, val, declared, "return value")
                self.return_value = (
                    val
                    if self.return_value is None
                    else unify(self.return_value, val)
                )
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test, env)
            self._branch_merge(env, [stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.For):
            iter_val = self.infer(stmt.iter, env)
            body_env = dict(env)
            self._bind_target(stmt.target, elem_of(iter_val), body_env)
            self.exec_block(stmt.body, body_env)
            self._merge_into(env, [body_env])
            if stmt.orelse:
                self._branch_merge(env, [stmt.orelse])
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test, env)
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            self._merge_into(env, [body_env])
            if stmt.orelse:
                self._branch_merge(env, [stmt.orelse])
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                val = self.infer(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, ANY, env)
                del val
            self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name is not None:
                    handler_env[handler.name] = ANY
                self.exec_block(handler.body, handler_env)
                self._merge_into(env, [handler_env])
            self.exec_block(stmt.orelse, env)
            self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Assert):
            self.infer(stmt.test, env)
            if stmt.msg is not None:
                self.infer(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.infer(stmt.exc, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = TypeRef("fn", elem=ANY)
        elif isinstance(stmt, ast.ClassDef):
            env[stmt.name] = ANY
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)

    def _branch_merge(
        self, env: dict[str, TypeRef], blocks: Sequence[Sequence[ast.stmt]]
    ) -> None:
        branch_envs = []
        for block in blocks:
            branch_env = dict(env)
            self.exec_block(block, branch_env)
            branch_envs.append(branch_env)
        self._merge_into(env, branch_envs)

    @staticmethod
    def _merge_into(
        env: dict[str, TypeRef], branch_envs: Sequence[dict[str, TypeRef]]
    ) -> None:
        keys: set[str] = set()
        for branch in branch_envs:
            keys.update(branch)
        for key in keys:
            vals = [branch[key] for branch in branch_envs if key in branch]
            merged = vals[0]
            for val in vals[1:]:
                merged = unify(merged, val)
            env[key] = merged

    def _assign_target(
        self, target: ast.expr, val: TypeRef, env: dict[str, TypeRef]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = val
        elif isinstance(target, (ast.Tuple, ast.List)):
            self._unpack(target, val, env)
        else:
            self._store_check(target, val, env, bind=True)

    def _bind_target(
        self, target: ast.expr, val: TypeRef, env: dict[str, TypeRef]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = val
        elif isinstance(target, (ast.Tuple, ast.List)):
            self._unpack(target, val, env)

    def _unpack(
        self, target: "ast.Tuple | ast.List", val: TypeRef, env: dict[str, TypeRef]
    ) -> None:
        elts = target.elts
        if val.kind == "tup" and len(val.elems) == len(elts):
            parts: Sequence[TypeRef] = val.elems
        else:
            part = elem_of(val)
            parts = [part] * len(elts)
        for elt, part in zip(elts, parts):
            if isinstance(elt, ast.Starred):
                if isinstance(elt.value, ast.Name):
                    env[elt.value.id] = TypeRef("seq", elem=part)
            else:
                self._bind_target(elt, part, env)

    def _store_check(
        self, target: ast.expr, val: TypeRef, env: dict[str, TypeRef], bind: bool
    ) -> None:
        """Check a store into ``obj.attr`` or ``container[i]``."""
        if isinstance(target, ast.Attribute):
            base = self.infer(target.value, env)
            if base.kind == "cls":
                info = self.project.resolve_class(base.qualname)
                if info is not None:
                    declared = self.project.attr_type(info, target.attr)
                    self.check_assignable(
                        target, val, declared, f"attribute '{target.attr}'"
                    )
        elif isinstance(target, ast.Subscript):
            base = self.infer(target.value, env)
            if not isinstance(target.slice, ast.Slice):
                self.infer(target.slice, env)
            if base.kind == "seq":
                self.check_assignable(
                    target, val, base.elem or ANY, "sequence element"
                )
            elif base.kind == "map":
                self.check_assignable(
                    target, val, base.elem or ANY, "mapping value"
                )


def analyze_module(
    project: Project,
    module: str,
    summaries: Optional["SummaryTable"] = None,
) -> list[tuple[FunctionInfo, Mismatch]]:
    """Run the engine over every function and method of ``module``."""
    info = project.modules.get(module)
    if info is None:
        return []
    out: list[tuple[FunctionInfo, Mismatch]] = []
    jobs: list[tuple[FunctionInfo, Optional[ClassInfo]]] = [
        (fn, None) for fn in info.symbols.functions.values()
    ]
    for cls in info.symbols.classes.values():
        jobs.extend((method, cls) for method in cls.methods.values())
    for func, cls in jobs:
        analysis = FunctionAnalysis(
            project, module, func, cls, summaries=summaries
        )
        try:
            found = analysis.run()
        except RecursionError:  # pathological nesting: skip, never crash
            continue
        out.extend((func, problem) for problem in found)
    return out
