"""Command-line entry point for repro-lint.

Exit codes follow the compiler convention the CI job keys on: 0 clean,
1 violations found, 2 usage error (unknown rule code, unreadable path).
Syntax errors in checked files are reported as RL000 -- a file the
analyzer cannot parse cannot be certified, so it fails the run.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys
from typing import Optional, Sequence

from repro.lint.rules import default_rules
from repro.lint.rules.base import FileContext, Rule
from repro.lint.suppressions import Suppressions
from repro.lint.violations import Violation, build_report

#: Pseudo-code for files the analyzer cannot parse.
SYNTAX_ERROR_CODE = "RL000"

_SKIP_DIR_NAMES = frozenset({"__pycache__"})


def iter_python_files(
    paths: Sequence[str],
) -> list[tuple[pathlib.Path, str]]:
    """(resolved path, display path) for every ``.py`` under ``paths``.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped. Display paths preserve the user's
    spelling so output is stable across machines.
    """
    out: list[tuple[pathlib.Path, str]] = []
    seen: set[pathlib.Path] = set()

    def add(resolved: pathlib.Path, display: str) -> None:
        if resolved not in seen:
            seen.add(resolved)
            out.append((resolved, display))

    for raw in paths:
        base = pathlib.Path(raw)
        if base.is_file():
            add(base.resolve(), raw)
            continue
        if not base.is_dir():
            raise FileNotFoundError(raw)
        for candidate in sorted(base.rglob("*.py")):
            relative = candidate.relative_to(base)
            parts = relative.parts
            if any(
                part in _SKIP_DIR_NAMES or part.startswith(".")
                for part in parts
            ):
                continue
            add(candidate.resolve(), str(base / relative))
    return out


def lint_file(
    path: pathlib.Path, display_path: str, rules: Sequence[Rule]
) -> list[Violation]:
    """All unsuppressed violations in one file."""
    source = path.read_text(encoding="utf-8")
    suppressions = Suppressions.scan(source)
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as exc:
        violation = Violation(
            path=display_path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=SYNTAX_ERROR_CODE,
            message=f"file does not parse: {exc.msg}",
        )
        if suppressions.covers(violation.code, violation.line):
            return []
        return [violation]
    ctx = FileContext(
        path=path, display_path=display_path, source=source, tree=tree
    )
    found: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not suppressions.covers(violation.code, violation.line):
                found.append(violation)
    return found


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> tuple[list[Violation], int]:
    """Lint every Python file under ``paths``.

    Returns (violations sorted by location, number of files checked).
    """
    active = tuple(rules) if rules is not None else default_rules()
    files = iter_python_files(paths)
    violations: list[Violation] = []
    for path, display in files:
        violations.extend(lint_file(path, display, active))
    return sorted(violations), len(files)


def _select_rules(spec: str) -> tuple[Rule, ...]:
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    rules = default_rules()
    known = {rule.code for rule in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return tuple(rule for rule in rules if rule.code in wanted)


def _list_rules() -> str:
    lines = [f"{SYNTAX_ERROR_CODE} syntax: file must parse"]
    for rule in default_rules():
        lines.append(f"{rule.code} {rule.title}: {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism and invariant checker for the repro "
            "codebase (rules RL001-RL004; see docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its rationale and exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    rules: Optional[tuple[Rule, ...]] = None
    if options.rules is not None:
        try:
            rules = _select_rules(options.rules)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    try:
        violations, files_checked = lint_paths(options.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}", file=sys.stderr)
        return 2

    if options.format == "json":
        report = build_report(violations, files_checked)
        if options.out is not None:
            # Stable-JSON conventions shared with the experiment
            # manifests: identical trees produce byte-identical reports.
            from repro.analysis.export import export_lint_report

            export_lint_report(report, options.out)
        else:
            sys.stdout.write(
                json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
    else:
        rendered = "".join(v.format() + "\n" for v in violations)
        if options.out is not None:
            pathlib.Path(options.out).write_text(rendered, encoding="utf-8")
        else:
            sys.stdout.write(rendered)

    noun = "file" if files_checked == 1 else "files"
    if violations:
        print(
            f"repro-lint: {len(violations)} violation(s) in "
            f"{files_checked} {noun}",
            file=sys.stderr,
        )
        return 1
    print(f"repro-lint: {files_checked} {noun} clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
