"""Command-line entry point for repro-lint.

Exit codes follow the compiler convention the CI job keys on: 0 clean,
1 violations found (or stale suppressions under ``--show-suppressed``),
2 usage error (unknown rule code, unreadable path), 3 when the given
paths match no Python files at all -- a misconfigured CI glob must not
masquerade as a clean run. ``--changed`` with an empty diff *is* a
legitimate clean state and exits 0.

Per-file rules (RL001-RL004) run file by file; flow rules (RL005-RL012)
run once over a whole-program :class:`~repro.lint.flow.project.Project`
built from every file in the run. ``--changed`` narrows the *report*,
never the analysis: the project is still built from the full path set so
cross-module reasoning stays sound, and only findings in files touched
since HEAD (or untracked) are emitted.

Runs are cached incrementally (see :mod:`repro.lint.cache`) under
``.repro-cache/lint`` by default: a warm run with no edits replays the
stored findings without parsing anything, and a run with edits
re-analyzes only the changed files' import cones. ``--no-cache``
disables it; the cache sits *beneath* ``--changed`` and
``--show-suppressed``, which filter the replayed results exactly as
they filter fresh ones.

Syntax errors in checked files are reported as RL000 -- a file the
analyzer cannot parse cannot be certified, so it fails the run.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import subprocess
import sys
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.lint import cache as _cache
from repro.lint.profile import Profiler
from repro.lint.rules import default_rules
from repro.lint.rules.base import FileContext, FlowRule, Rule
from repro.lint.suppressions import Directive, Suppressions
from repro.lint.violations import Violation, build_report

#: Pseudo-code for files the analyzer cannot parse.
SYNTAX_ERROR_CODE = "RL000"

#: Paths exist but match no ``.py`` files (distinct from "clean").
EXIT_NO_FILES = 3

_SKIP_DIR_NAMES = frozenset({"__pycache__"})


def iter_python_files(
    paths: Sequence[str],
) -> list[tuple[pathlib.Path, str]]:
    """(resolved path, display path) for every ``.py`` under ``paths``.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped. Display paths preserve the user's
    spelling so output is stable across machines.
    """
    out: list[tuple[pathlib.Path, str]] = []
    seen: set[pathlib.Path] = set()

    def add(resolved: pathlib.Path, display: str) -> None:
        if resolved not in seen:
            seen.add(resolved)
            out.append((resolved, display))

    for raw in paths:
        base = pathlib.Path(raw)
        if base.is_file():
            add(base.resolve(), raw)
            continue
        if not base.is_dir():
            raise FileNotFoundError(raw)
        for candidate in sorted(base.rglob("*.py")):
            relative = candidate.relative_to(base)
            parts = relative.parts
            if any(
                part in _SKIP_DIR_NAMES or part.startswith(".")
                for part in parts
            ):
                continue
            add(candidate.resolve(), str(base / relative))
    return out


@dataclass
class FileEntry:
    """One loaded source file: parse result plus its suppressions."""

    path: pathlib.Path
    display: str
    suppressions: Suppressions
    ctx: Optional[FileContext]  # None when the file does not parse
    syntax_violation: Optional[Violation]


def _make_entry(
    path: pathlib.Path, display: str, source: str
) -> FileEntry:
    suppressions = Suppressions.scan(source)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return FileEntry(
            path=path,
            display=display,
            suppressions=suppressions,
            ctx=None,
            syntax_violation=Violation(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=SYNTAX_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            ),
        )
    return FileEntry(
        path=path,
        display=display,
        suppressions=suppressions,
        ctx=FileContext(
            path=path, display_path=display, source=source, tree=tree
        ),
        syntax_violation=None,
    )


def _load_files(paths: Sequence[str]) -> list[FileEntry]:
    return [
        _make_entry(path, display, path.read_text(encoding="utf-8"))
        for path, display in iter_python_files(paths)
    ]


def _raw_violations(
    entries: Sequence[FileEntry],
    rules: Sequence[Rule],
    profiler: Optional[Profiler] = None,
) -> list[Violation]:
    """Every violation in the run, suppressions NOT yet applied."""
    from repro.lint.flow.project import Project

    prof = profiler if profiler is not None else Profiler()
    per_file = [r for r in rules if not isinstance(r, FlowRule)]
    flow = [r for r in rules if isinstance(r, FlowRule)]
    found: list[Violation] = []
    for entry in entries:
        if entry.syntax_violation is not None:
            found.append(entry.syntax_violation)
            continue
        assert entry.ctx is not None
        for rule in per_file:
            if rule.applies_to(entry.ctx):
                with prof.measure(rule.code):
                    found.extend(rule.check(entry.ctx))
    if flow:
        with prof.measure("project:build"):
            project = Project.build(
                [entry.ctx for entry in entries if entry.ctx is not None]
            )
        if any(rule.uses_async_facts for rule in flow):
            # Force the shared async graph under its own label so its
            # construction cost does not land on the first async rule.
            with prof.measure("project:asyncgraph"):
                project.asyncgraph()
        for rule in flow:
            with prof.measure(rule.code):
                found.extend(rule.check_project(project))
    return found


def _run_with_cache(
    paths: Sequence[str],
    rules: Sequence[Rule],
    store: _cache.LintCache,
    profiler: Optional[Profiler] = None,
) -> tuple[list[FileEntry], list[Violation]]:
    """Cache-aware equivalent of ``_load_files`` + ``_raw_violations``.

    Returns (entries, raw violations). On a full hit -- identical file
    set, every content digest matching -- nothing is parsed or
    tokenized: entries carry ``ctx=None`` and suppressions rebuilt from
    cached directives, and the stored raw findings are replayed. On a
    partial hit everything is re-parsed (flow rules need the whole
    project), but per-file rules re-run only where the environment
    digest missed and cone-cacheable flow rules re-run only over their
    dirty set: the dirty import cone for plain flow rules, the wider
    async-dirty set (forward union reverse closure -- see
    :func:`repro.lint.cache.async_digests`) for rules that consume the
    async graph. Raw findings are cached pre-suppression; the caller
    applies suppressions exactly as on the uncached path.
    """
    from repro.lint.flow.project import Project

    prof = profiler if profiler is not None else Profiler()

    files = iter_python_files(paths)
    ruleset_sha = _cache.ruleset_digest(rules)
    index = store.load(ruleset_sha)
    cached_files: dict[str, Any] = index.get("files", {}) if index else {}

    shas = {
        path: _cache.content_sha(path.read_bytes()) for path, _ in files
    }

    def _matches(path: pathlib.Path, display: str) -> bool:
        record = cached_files.get(str(path))
        return (
            record is not None
            and record.get("source_sha") == shas[path]
            and record.get("display") == display
        )

    if (
        index is not None
        and len(cached_files) == len(files)
        and all(_matches(path, display) for path, display in files)
    ):
        # Full hit: replay without parsing a single file.
        entries: list[FileEntry] = []
        raw: list[Violation] = []
        for path, display in files:
            record = cached_files[str(path)]
            syntax_violation = None
            if record.get("syntax") is not None:
                line, col, message = record["syntax"]
                syntax_violation = Violation(
                    path=display,
                    line=int(line),
                    col=int(col),
                    code=SYNTAX_ERROR_CODE,
                    message=message,
                )
                raw.append(syntax_violation)
            entries.append(
                FileEntry(
                    path=path,
                    display=display,
                    suppressions=_cache.unpack_suppressions(
                        record.get("directives", [])
                    ),
                    ctx=None,
                    syntax_violation=syntax_violation,
                )
            )
            for row in record.get("per_file", []):
                raw.append(_cache.unpack_violation(row))
            for row in record.get("flow", []):
                raw.append(_cache.unpack_violation(row))
            for row in record.get("flow_async", []):
                raw.append(_cache.unpack_violation(row))
        for row in (index.get("global") or {}).get("violations", []):
            raw.append(_cache.unpack_violation(row))
        return entries, raw

    # Partial (or cold): parse everything, re-analyze selectively.
    entries = [
        _make_entry(path, display, path.read_bytes().decode("utf-8"))
        for path, display in files
    ]
    per_file_rules = [r for r in rules if not isinstance(r, FlowRule)]
    flow_rules = [r for r in rules if isinstance(r, FlowRule)]

    env_shas: dict[str, str] = {}
    per_file_found: dict[str, list[Violation]] = {}
    raw = []
    for entry in entries:
        key = str(entry.path)
        env_shas[key] = _cache.env_sha(shas[entry.path], entry.path)
        if entry.syntax_violation is not None:
            raw.append(entry.syntax_violation)
            per_file_found[key] = []
            continue
        assert entry.ctx is not None
        record = cached_files.get(key)
        if (
            record is not None
            and record.get("env_sha") == env_shas[key]
            and record.get("display") == entry.display
        ):
            found = [
                _cache.unpack_violation(row)
                for row in record.get("per_file", [])
            ]
        else:
            found = []
            for rule in per_file_rules:
                if rule.applies_to(entry.ctx):
                    with prof.measure(rule.code):
                        found.extend(rule.check(entry.ctx))
        per_file_found[key] = found
        raw.extend(found)

    flow_found: dict[str, list[Violation]] = {
        str(entry.path): [] for entry in entries
    }
    async_found: dict[str, list[Violation]] = {
        str(entry.path): [] for entry in entries
    }
    global_found: list[Violation] = []
    cones: dict[str, str] = {}
    async_cones: dict[str, str] = {}
    module_of_path: dict[str, str] = {}
    if flow_rules:
        with prof.measure("project:build"):
            project = Project.build(
                [entry.ctx for entry in entries if entry.ctx is not None]
            )
        module_shas: dict[str, str] = {}
        for name, info in project.modules.items():
            module_of_path[str(info.ctx.path)] = name
            module_shas[name] = shas[info.ctx.path]
        import_graph = project.import_graph()
        cones = _cache.cone_digests(import_graph, module_shas)
        async_cones = _cache.async_digests(import_graph, module_shas)
        key_of_display = {entry.display: str(entry.path) for entry in entries}

        def _dirty_modules(
            digests: dict[str, str], sha_key: str
        ) -> set[str]:
            out: set[str] = set()
            for name, info in project.modules.items():
                record = cached_files.get(str(info.ctx.path))
                if (
                    record is None
                    or record.get(sha_key) != digests.get(name)
                    or record.get("display") != info.ctx.display_path
                ):
                    out.add(name)
            return out

        dirty = _dirty_modules(cones, "cone_sha")
        # Async facts also flow from importers (spawners, schedulers),
        # so the async-dirty set uses the wider bidirectional digest.
        # It is always a superset of ``dirty``.
        dirty_async = _dirty_modules(async_cones, "async_sha") | dirty
        # Files the project dropped (duplicate module stems) have no
        # cone; any flow findings in them can never be replayed, so
        # nothing to do -- they simply stay out of the flow sections.
        shadowed = {
            str(entry.path)
            for entry in entries
            if entry.ctx is not None
            and str(entry.path) not in module_of_path
        }

        will_run_async = any(
            rule.uses_async_facts
            and (not rule.cone_cacheable or dirty_async or shadowed)
            for rule in flow_rules
        )
        if will_run_async:
            # Same label discipline as the uncached path: the shared
            # graph's cost must not land on the first async rule.
            with prof.measure("project:asyncgraph"):
                project.asyncgraph()

        def _run_group(
            group: list[FlowRule],
            dirty_set: set[str],
            found_map: dict[str, list[Violation]],
            section: str,
        ) -> None:
            """Re-run ``group`` over ``dirty_set``, replay the rest.

            Findings land in ``found_map`` keyed by resolved path;
            clean modules get their cached ``section`` rows instead.
            """
            for rule in group:
                if not (dirty_set or shadowed):
                    continue
                only = frozenset(dirty_set) if not shadowed else None
                with prof.measure(rule.code):
                    found = rule.check_project(project, only=only)
                for violation in found:
                    key = key_of_display.get(violation.path)
                    if key is None:  # defensive: never drop a finding
                        global_found.append(violation)
                    elif only is None and module_of_path.get(
                        key
                    ) not in dirty_set and key not in shadowed:
                        continue  # clean module: cached copy replays below
                    else:
                        found_map[key].append(violation)
            for name, info in project.modules.items():
                if name in dirty_set:
                    continue
                record = cached_files.get(str(info.ctx.path))
                if record is None:  # unreachable: clean implies cached
                    continue
                found_map[str(info.ctx.path)] = [
                    _cache.unpack_violation(row)
                    for row in record.get(section, [])
                ]

        for rule in flow_rules:
            if not rule.cone_cacheable:
                # Findings cross import cones (RL010): always re-run,
                # stored whole-project.
                with prof.measure(rule.code):
                    global_found.extend(rule.check_project(project))
        _run_group(
            [r for r in flow_rules
             if r.cone_cacheable and not r.uses_async_facts],
            dirty, flow_found, "flow",
        )
        _run_group(
            [r for r in flow_rules
             if r.cone_cacheable and r.uses_async_facts],
            dirty_async, async_found, "flow_async",
        )
        for entry in entries:
            raw.extend(flow_found[str(entry.path)])
            raw.extend(async_found[str(entry.path)])
        raw.extend(global_found)

    files_payload: dict[str, Any] = {}
    for entry in entries:
        key = str(entry.path)
        syntax = None
        if entry.syntax_violation is not None:
            sv = entry.syntax_violation
            syntax = [sv.line, sv.col, sv.message]
        files_payload[key] = {
            "display": entry.display,
            "source_sha": shas[entry.path],
            "env_sha": env_shas[key],
            "cone_sha": cones.get(module_of_path.get(key, "")),
            "async_sha": async_cones.get(module_of_path.get(key, "")),
            "directives": _cache.pack_directives(entry.suppressions),
            "syntax": syntax,
            "per_file": [
                _cache.pack_violation(v) for v in per_file_found[key]
            ],
            "flow": [_cache.pack_violation(v) for v in flow_found[key]],
            "flow_async": [
                _cache.pack_violation(v) for v in async_found[key]
            ],
        }
    store.store(
        ruleset_sha,
        {
            "files": files_payload,
            "global": {
                "violations": [
                    _cache.pack_violation(v) for v in global_found
                ]
            },
        },
    )
    return entries, raw


def _apply_suppressions(
    raw: Sequence[Violation], entries: Sequence[FileEntry]
) -> list[Violation]:
    by_display = {entry.display: entry.suppressions for entry in entries}
    empty = Suppressions()
    return [
        violation
        for violation in raw
        if not by_display.get(violation.path, empty).covers(
            violation.code, violation.line
        )
    ]


def lint_file(
    path: pathlib.Path, display_path: str, rules: Sequence[Rule]
) -> list[Violation]:
    """Unsuppressed violations in one file (per-file rules only).

    Flow rules need the whole program and are skipped here; use
    :func:`lint_paths` to run them.
    """
    source = path.read_text(encoding="utf-8")
    suppressions = Suppressions.scan(source)
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as exc:
        violation = Violation(
            path=display_path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=SYNTAX_ERROR_CODE,
            message=f"file does not parse: {exc.msg}",
        )
        if suppressions.covers(violation.code, violation.line):
            return []
        return [violation]
    ctx = FileContext(
        path=path, display_path=display_path, source=source, tree=tree
    )
    found: list[Violation] = []
    for rule in rules:
        if isinstance(rule, FlowRule) or not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not suppressions.covers(violation.code, violation.line):
                found.append(violation)
    return found


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    cache_dir: Optional[pathlib.Path] = None,
    profiler: Optional[Profiler] = None,
) -> tuple[list[Violation], int]:
    """Lint every Python file under ``paths``.

    Returns (violations sorted by location, number of files checked).
    With ``cache_dir`` the incremental cache is consulted and updated;
    without it every file is analyzed from scratch. ``profiler``
    accumulates per-rule wall time when given.
    """
    active = tuple(rules) if rules is not None else default_rules()
    if cache_dir is not None:
        entries, raw = _run_with_cache(
            paths, active, _cache.LintCache(cache_dir), profiler
        )
    else:
        entries = _load_files(paths)
        raw = _raw_violations(entries, active, profiler)
    return sorted(_apply_suppressions(raw, entries)), len(entries)


# --------------------------------------------------------------- --changed


def _git_changed_files() -> Optional[set[pathlib.Path]]:
    """Resolved paths of files modified since HEAD, plus untracked.

    None when git is unavailable or the cwd is not a work tree -- the
    caller falls back to reporting everything rather than nothing.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD", "--"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    root = pathlib.Path(top)
    names = [n for n in (diff + untracked).splitlines() if n.strip()]
    return {(root / name).resolve() for name in names}


def _filter_changed(
    violations: Sequence[Violation],
    entries: Sequence[FileEntry],
    changed: set[pathlib.Path],
) -> list[Violation]:
    changed_displays = {
        entry.display for entry in entries if entry.path in changed
    }
    return [v for v in violations if v.path in changed_displays]


# -------------------------------------------------------- --show-suppressed


@dataclass(frozen=True)
class DirectiveAudit:
    """One suppression directive and whether it still earns its keep."""

    display: str
    directive: Directive
    used: bool

    def format(self) -> str:
        scope = "disable-file" if self.directive.file_level else "disable"
        state = "used" if self.used else "STALE"
        return (
            f"{self.display}:{self.directive.line}: "
            f"{scope}={self.directive.code} {state}"
        )


def audit_suppressions(
    entries: Sequence[FileEntry], raw: Sequence[Violation]
) -> list[DirectiveAudit]:
    """Match every directive against the unsuppressed violation set.

    A line directive is *used* iff a violation with its code was reported
    on its line; a file directive iff any violation with its code exists
    in the file. Everything else is stale and should be deleted -- stale
    suppressions are how real regressions sneak past a gate.
    """
    by_display: dict[str, list[Violation]] = {}
    for violation in raw:
        by_display.setdefault(violation.path, []).append(violation)
    audits: list[DirectiveAudit] = []
    for entry in entries:
        here = by_display.get(entry.display, [])
        for directive in entry.suppressions.directives:
            used = any(
                v.code == directive.code
                and (directive.file_level or v.line == directive.line)
                for v in here
            )
            audits.append(DirectiveAudit(entry.display, directive, used))
    return audits


# ------------------------------------------------------------------- main


def _select_rules(spec: str) -> tuple[Rule, ...]:
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    rules = default_rules()
    known = {rule.code for rule in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return tuple(rule for rule in rules if rule.code in wanted)


def _list_rules() -> str:
    lines = [f"{SYNTAX_ERROR_CODE} syntax: file must parse"]
    for rule in default_rules():
        lines.append(f"{rule.code} {rule.title}: {rule.rationale}")
    return "\n".join(lines)


def _write_output(text: str, out: Optional[str]) -> None:
    if out is not None:
        pathlib.Path(out).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST and dataflow invariant checker for the repro codebase "
            "(rules RL001-RL016; see docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report only findings in files changed since HEAD "
            "(analysis still covers all paths for cross-module rules)"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help=(
            "audit suppression comments instead of reporting violations; "
            "exits 1 if any directive is stale"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its rationale and exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print per-rule wall-time to stderr (and embed a "
            "'profile' section in --format json reports)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze every file from scratch, ignoring the cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=_cache.DEFAULT_CACHE_DIR,
        help=(
            "incremental analysis cache location "
            f"(default: {_cache.DEFAULT_CACHE_DIR})"
        ),
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    rules: tuple[Rule, ...]
    if options.rules is not None:
        try:
            rules = _select_rules(options.rules)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
    else:
        rules = default_rules()

    profiler = Profiler() if options.profile else None
    try:
        if options.no_cache:
            entries = _load_files(options.paths)
            raw = _raw_violations(entries, rules, profiler)
        else:
            entries, raw = _run_with_cache(
                options.paths,
                rules,
                _cache.LintCache(pathlib.Path(options.cache_dir)),
                profiler,
            )
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(
            "repro-lint: no Python files matched the given paths",
            file=sys.stderr,
        )
        return EXIT_NO_FILES

    if options.show_suppressed:
        audits = audit_suppressions(entries, raw)
        rendered = "".join(a.format() + "\n" for a in audits)
        _write_output(rendered, options.out)
        stale = sum(1 for a in audits if not a.used)
        print(
            f"repro-lint: {len(audits)} suppression(s), {stale} stale",
            file=sys.stderr,
        )
        return 1 if stale else 0

    violations = sorted(_apply_suppressions(raw, entries))
    files_checked = len(entries)

    if options.changed:
        changed = _git_changed_files()
        if changed is not None:
            violations = _filter_changed(violations, entries, changed)
            changed_count = sum(1 for e in entries if e.path in changed)
            if changed_count == 0:
                print(
                    "repro-lint: no checked files changed since HEAD",
                    file=sys.stderr,
                )
            files_checked = changed_count or files_checked
        else:
            print(
                "repro-lint: --changed ignored (not a git work tree)",
                file=sys.stderr,
            )

    if profiler is not None:
        print(profiler.report_text(), file=sys.stderr)

    if options.format == "json":
        report = build_report(violations, files_checked)
        if profiler is not None:
            report["profile"] = profiler.report_json()
        if options.out is not None:
            # Stable-JSON conventions shared with the experiment
            # manifests: identical trees produce byte-identical reports.
            from repro.analysis.export import export_lint_report

            export_lint_report(report, options.out)
        else:
            sys.stdout.write(
                json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
    elif options.format == "sarif":
        from repro.lint.sarif import build_sarif

        log = build_sarif(violations, rules)
        _write_output(
            json.dumps(log, indent=2, sort_keys=True) + "\n", options.out
        )
    else:
        rendered = "".join(v.format() + "\n" for v in violations)
        _write_output(rendered, options.out)

    noun = "file" if files_checked == 1 else "files"
    if violations:
        print(
            f"repro-lint: {len(violations)} violation(s) in "
            f"{files_checked} {noun}",
            file=sys.stderr,
        )
        return 1
    print(f"repro-lint: {files_checked} {noun} clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
