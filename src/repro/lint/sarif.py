"""SARIF 2.1.0 output for repro-lint.

SARIF is the interchange format GitHub code scanning ingests: uploading
one report per CI run gets every violation annotated inline on the PR
diff. Only the small subset code scanning actually reads is emitted --
tool driver with rule metadata, one ``result`` per violation with a
physical location. Columns are converted from repro-lint's 0-based
convention to SARIF's 1-based one.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lint.rules.base import Rule
from repro.lint.violations import Violation

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://example.invalid/repro/docs/LINTING.md"


def build_sarif(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> dict[str, Any]:
    """A SARIF log dict ready for ``json.dumps``."""
    rule_meta = [
        {
            "id": rule.code,
            "name": rule.title.title().replace(" ", ""),
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _INFO_URI,
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }
