"""Content-addressed on-disk cache for rendered experiment results.

Experiments are pure functions of (experiment module, config, package
source): the simulator is fully seeded, so the rendered text is
deterministic. That makes results safe to memoize on disk. A cache entry
is keyed by

- the experiment name,
- a SHA-256 over the canonical JSON of the config-override dict, and
- a *source digest*: a SHA-256 over the source files of every
  ``repro.*`` module the experiment (transitively) imports, plus the
  interpreter's major.minor version.

Editing any module an experiment depends on therefore invalidates
exactly the experiments that import it — `fig04` (pure formulas) keeps
its entry when `sim/engine.py` changes, while every packet-level
experiment re-runs.

The dependency closure is computed statically (``ast`` walk over
``import``/``from`` statements restricted to the ``repro`` package), so
nothing is executed to decide whether a cache entry is still valid.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import json
import pathlib
import sys
from typing import Optional

PACKAGE = "repro"

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

# Per-process memos: module source files never change mid-run.
_file_cache: dict[str, Optional[str]] = {}
_imports_cache: dict[str, frozenset[str]] = {}
_digest_cache: dict[str, str] = {}


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def module_source_file(module_name: str) -> Optional[str]:
    """Path of ``module_name``'s ``.py`` source, or None if not found."""
    if module_name in _file_cache:
        return _file_cache[module_name]
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, AttributeError, ValueError):
        spec = None
    origin = spec.origin if spec else None
    path = origin if origin and origin.endswith(".py") else None
    _file_cache[module_name] = path
    return path


def _package_imports(module_name: str) -> frozenset[str]:
    """``repro.*`` modules imported directly by ``module_name``."""
    if module_name in _imports_cache:
        return _imports_cache[module_name]
    names: set[str] = set()
    path = module_source_file(module_name)
    if path is not None:
        tree = ast.parse(pathlib.Path(path).read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if (alias.name == PACKAGE
                            or alias.name.startswith(PACKAGE + ".")):
                        names.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                if (node.module == PACKAGE
                        or node.module.startswith(PACKAGE + ".")):
                    names.add(node.module)
                    # ``from repro.pkg import name`` may name a submodule.
                    for alias in node.names:
                        names.add(f"{node.module}.{alias.name}")
    resolved = frozenset(n for n in names
                         if module_source_file(n) is not None)
    _imports_cache[module_name] = resolved
    return resolved


def module_closure(module_name: str) -> frozenset[str]:
    """Transitive ``repro.*`` import closure of ``module_name``."""
    seen: set[str] = set()
    frontier = [module_name]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(_package_imports(current) - seen)
    return frozenset(n for n in seen
                     if module_source_file(n) is not None)


def source_digest(module_name: str) -> str:
    """SHA-256 fingerprint of everything ``module_name``'s result depends on.

    Covers the source bytes of the transitive ``repro.*`` import closure
    and the interpreter's major.minor version (bytecode semantics and
    float formatting are stable within a minor version).
    """
    if module_name in _digest_cache:
        return _digest_cache[module_name]
    hasher = hashlib.sha256()
    hasher.update(f"python-{sys.version_info[0]}.{sys.version_info[1]}"
                  .encode())
    for name in sorted(module_closure(module_name)):
        path = module_source_file(name)
        hasher.update(name.encode())
        hasher.update(pathlib.Path(path).read_bytes())
    digest = hasher.hexdigest()
    _digest_cache[module_name] = digest
    return digest


def config_digest(config: dict) -> str:
    """SHA-256 of the canonical JSON encoding of a config dict."""
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return _sha256(canonical.encode())


class ResultCache:
    """Directory of ``<key>.txt`` entries holding rendered experiment text.

    Keys are content addresses (:meth:`key`); entries never go stale in
    place — a source or config change produces a *different* key, and the
    old entry is simply never read again.
    """

    def __init__(self, root: str | pathlib.Path = DEFAULT_CACHE_DIR) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def key(self, name: str, module_name: str, config: dict) -> str:
        """Content address for one experiment invocation."""
        return (f"{name}-{config_digest(config)[:12]}"
                f"-{source_digest(module_name)[:12]}")

    def entry_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.txt"

    def get(self, key: str) -> Optional[str]:
        """Rendered text for ``key``, or None on a miss."""
        path = self.entry_path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return text

    def put(self, key: str, text: str) -> pathlib.Path:
        """Store ``text`` under ``key`` (atomically via rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.entry_path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text)
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.txt"):
                entry.unlink()
                removed += 1
        return removed


def clear_memos() -> None:
    """Drop the per-process source-digest memos (used by tests that
    rewrite module sources on disk)."""
    _file_cache.clear()
    _imports_cache.clear()
    _digest_cache.clear()


__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "clear_memos",
    "config_digest",
    "module_closure",
    "module_source_file",
    "source_digest",
]
