"""Figure 4: optimal single-backoff inter-layer buffer distribution.

The draining-phase deficit triangle is sliced into horizontal bands of
height C; the bottom (largest, longest-lived) band belongs to the base
layer. This experiment prints the per-layer shares and verifies the
figure's key properties: shares decrease with layer index, they sum to
the whole triangle, and only ``nb`` layers need buffering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_kv, format_table
from repro.core import formulas


@dataclass
class Fig04Result:
    rate: float
    layer_rate: float
    active_layers: int
    slope: float
    shares: tuple[float, ...]

    @property
    def deficit(self) -> float:
        return self.active_layers * self.layer_rate - self.rate / 2.0

    @property
    def total(self) -> float:
        return formulas.triangle_area(self.deficit, self.slope)

    @property
    def buffering_layers(self) -> int:
        return formulas.min_buffering_layers(self.deficit, self.layer_rate)

    def render(self) -> str:
        rows = [
            (f"L{i}", share, 100.0 * share / self.total if self.total else 0)
            for i, share in enumerate(self.shares)
        ]
        out = format_table(
            ("layer", "optimal share (bytes)", "% of total"), rows,
            title="Figure 4: optimal inter-layer buffer distribution "
            "(one backoff)")
        out += format_kv({
            "deficit_D0_Bps": self.deficit,
            "total_required_bytes": self.total,
            "min_buffering_layers_nb": self.buffering_layers,
        })
        return out


def run(rate: float = 30_000.0, layer_rate: float = 6500.0,
        active_layers: int = 4, slope: float = 8000.0) -> Fig04Result:
    shares = formulas.scenario_shares(
        rate, layer_rate, active_layers, slope, k=1,
        scenario=formulas.SCENARIO_ONE)
    return Fig04Result(rate=rate, layer_rate=layer_rate,
                       active_layers=active_layers, slope=slope,
                       shares=shares)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
