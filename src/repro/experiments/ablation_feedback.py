"""Ablation: receiver-buffer feedback models.

How much does the server's knowledge of the receiver's buffers matter?

- ``send``: the paper's model -- the server knows its transmission
  history and debits detected losses (default);
- ``ack``: only acknowledged data counts (one RTT stale, conservative);
- ``oracle``: losses are ignored entirely (optimistic upper bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.experiments.common import PaperWorkload, WorkloadConfig

FEEDBACK_MODES = ("send", "ack", "oracle")


@dataclass
class FeedbackRow:
    mode: str
    drops: int
    adds: int
    stalls: int
    stall_time: float
    gap_bytes: float
    mean_layers: float


@dataclass
class FeedbackAblationResult:
    rows: list[FeedbackRow]

    def render(self) -> str:
        return format_table(
            ("feedback", "drops", "adds", "stalls", "stall time s",
             "gap bytes", "mean layers"),
            [(r.mode, r.drops, r.adds, r.stalls, round(r.stall_time, 2),
              round(r.gap_bytes), round(r.mean_layers, 2))
             for r in self.rows],
            title="Ablation: receiver-buffer feedback model (T1, pooled "
            "seeds)")


def run(seeds: Sequence[int] = (1, 2, 3),
        modes: Sequence[str] = FEEDBACK_MODES,
        **overrides) -> FeedbackAblationResult:
    overrides.setdefault("k_max", 2)
    rows = []
    for mode in modes:
        drops = adds = stalls = 0
        stall_time = gaps = mean_layers = 0.0
        for seed in seeds:
            session = PaperWorkload(WorkloadConfig(
                feedback=mode, seed=seed, **overrides)).run()
            summary = session.summary()
            drops += summary["drops"]
            adds += summary["adds"]
            stalls += summary["stalls_receiver"]
            stall_time += summary["stall_time_receiver"]
            gaps += summary["gap_bytes"]
            mean_layers += summary["mean_layers"]
        rows.append(FeedbackRow(
            mode=mode, drops=drops, adds=adds, stalls=stalls,
            stall_time=stall_time, gap_bytes=gaps / len(seeds),
            mean_layers=mean_layers / len(seeds)))
    return FeedbackAblationResult(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
