"""Table 1: buffering efficiency.

``e = (buf_total - buf_drop) / buf_total`` per drop event, averaged over
all drop events, for K_max in {2, 3, 4, 5, 8} under tests T1 (the plain
mix) and T2 (the CBR burst). The paper reports 96-99.99%; the shape to
match is "very little buffered data is still available in a layer that
is dropped", with mild degradation for T2 at large K_max.

Drop events are pooled over several seeds: a single 40-second run only
contains a handful of drops, far too few for a stable mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.core.metrics import QualityMetrics
from repro.experiments.common import (
    PaperWorkload,
    WorkloadConfig,
    pooled_metrics,
)

DEFAULT_K_VALUES = (2, 3, 4, 5, 8)
DEFAULT_SEEDS = (1, 2, 3, 4, 5)


@dataclass
class TableResult:
    k_values: tuple[int, ...]
    metrics: dict[tuple[str, int], QualityMetrics]  # (test, k) -> pooled

    def efficiency_row(self, test: str) -> list:
        row = [test]
        for k in self.k_values:
            eff = self.metrics[(test, k)].buffering_efficiency()
            row.append(None if eff is None else round(100 * eff, 2))
        return row

    def poor_row(self, test: str) -> list:
        row = [test]
        for k in self.k_values:
            poor = self.metrics[(test, k)].poor_distribution_percent()
            row.append(None if poor is None else round(poor, 1))
        return row

    def drops_row(self, test: str) -> list:
        return [test] + [len(self.metrics[(test, k)].drops)
                         for k in self.k_values]

    def render(self) -> str:
        headers = ("test", *(f"Kmax={k}" for k in self.k_values))
        out = format_table(
            headers,
            [self.efficiency_row("T1"), self.efficiency_row("T2")],
            title="Table 1: buffering efficiency e (%)")
        out += format_table(
            headers,
            [self.drops_row("T1"), self.drops_row("T2")],
            title="(pooled drop events per cell)")
        return out


def collect(k_values: Sequence[int], seeds: Sequence[int],
            **overrides) -> TableResult:
    """Run both tests across K_max values and seeds; pool drop events."""
    metrics: dict[tuple[str, int], QualityMetrics] = {}
    for k_max in k_values:
        metrics[("T1", k_max)] = pooled_metrics(
            seeds,
            lambda seed: PaperWorkload(
                WorkloadConfig(k_max=k_max, seed=seed, **overrides)))
        metrics[("T2", k_max)] = pooled_metrics(
            seeds,
            lambda seed: PaperWorkload(
                WorkloadConfig.t2(k_max=k_max, seed=seed, **overrides)))
    return TableResult(k_values=tuple(k_values), metrics=metrics)


def run(k_values: Sequence[int] = DEFAULT_K_VALUES,
        seeds: Sequence[int] = DEFAULT_SEEDS, **overrides) -> TableResult:
    return collect(k_values, seeds, **overrides)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
