"""Ablation: section 3.1's add rules on a "2.9-layer" link.

The paper's argument for the buffer-based rule: on a link that fits 2.9
layers, an average-bandwidth rule never adds the third layer (the
average never exceeds 3C), while the buffer rule streams three layers
"90% of the time". We build exactly that situation -- a dedicated
bottleneck sized at ~2.9 layers' worth of the adaptive flow's throughput
-- and measure the fraction of time at three or more layers under each
rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.experiments.common import PaperWorkload, WorkloadConfig

ADD_RULES = ("buffer_only", "buffer_and_rate", "average_bandwidth")


@dataclass
class AddRuleRow:
    rule: str
    mean_layers: float
    time_at_3_plus: float
    quality_changes: int
    stalls: int


@dataclass
class AddRuleAblationResult:
    rows: list[AddRuleRow]

    def render(self) -> str:
        return format_table(
            ("add rule", "mean layers", "% time at >=3 layers",
             "quality changes", "stalls"),
            [(r.rule, round(r.mean_layers, 2),
              round(100 * r.time_at_3_plus, 1), r.quality_changes,
              r.stalls) for r in self.rows],
            title='Ablation: add rules on a "2.9-layer" link')


def _fraction_at_or_above(series, threshold: float) -> float:
    if len(series) < 2:
        return 0.0
    covered = 0.0
    span = series.times[-1] - series.times[0]
    for i in range(len(series) - 1):
        if series.values[i] >= threshold:
            covered += series.times[i + 1] - series.times[i]
    return covered / span if span > 0 else 0.0


def run(duration: float = 60.0, seed: int = 1,
        rules: Sequence[str] = ADD_RULES) -> AddRuleAblationResult:
    rows = []
    for rule in rules:
        # A lone adaptive flow on a bottleneck calibrated so that its
        # *achieved* average bandwidth is ~2.9 layers' worth (19,000 B/s
        # link -> ~18.95 KB/s delivered at C = 6.5 KB/s). The
        # average-bandwidth rule can then never clear the 3-layer
        # threshold while the buffer rule rides receiver buffering.
        config = WorkloadConfig(
            add_rule=rule,
            k_max=2,
            layer_rate=6500.0,
            bottleneck_bandwidth=19_000.0,
            queue_capacity=30,
            n_rap_background=0,
            n_tcp=0,
            duration=duration,
            seed=seed,
        )
        session = PaperWorkload(config).run()
        layers = session.tracer.get("layers")
        window = layers.window(10.0, duration)  # skip startup
        rows.append(AddRuleRow(
            rule=rule,
            mean_layers=window.time_average(),
            time_at_3_plus=_fraction_at_or_above(window, 3.0),
            quality_changes=session.summary()["quality_changes"],
            stalls=session.playout.stall_count,
        ))
    return AddRuleAblationResult(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
