"""Figure 8: optimal buffer states for k backoffs, scenarios 1 and 2.

For each k = 1..k_max the per-layer optimal allocation under both
scenarios, illustrating the paper's observations: scenario 1 spreads
buffering over more layers (deeper immediate deficit), scenario 2 needs
more total buffering but concentrates it lower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_table
from repro.core import formulas


@dataclass
class Fig08Result:
    rate: float
    layer_rate: float
    active_layers: int
    slope: float
    k_max: int

    def rows(self) -> list[tuple]:
        out = []
        consumption = self.active_layers * self.layer_rate
        for k in range(1, self.k_max + 1):
            for scenario in (formulas.SCENARIO_ONE, formulas.SCENARIO_TWO):
                total = formulas.scenario_total(
                    self.rate, consumption, self.slope, k, scenario)
                shares = formulas.scenario_shares(
                    self.rate, self.layer_rate, self.active_layers,
                    self.slope, k, scenario)
                out.append((f"S{scenario}", k, round(total), *(
                    round(s) for s in shares)))
        return out

    def render(self) -> str:
        headers = ("scenario", "k", "total",
                   *(f"L{i}" for i in range(self.active_layers)))
        return format_table(
            headers, self.rows(),
            title=f"Figure 8: optimal buffer states (bytes), R="
            f"{self.rate:.0f}, C={self.layer_rate:.0f}, "
            f"na={self.active_layers}, S={self.slope:.0f}")


def run(rate: float = 30_000.0, layer_rate: float = 6500.0,
        active_layers: int = 4, slope: float = 8000.0,
        k_max: int = 5) -> Fig08Result:
    return Fig08Result(rate=rate, layer_rate=layer_rate,
                       active_layers=active_layers, slope=slope,
                       k_max=k_max)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
