"""Figure 3: filling/draining phase geometry (analytic).

Reproduces the annotated sawtooth cycle: with ``na`` layers of rate C,
slope S and pre-backoff rate R, the filling phase stores the area of
triangle *abc* and the draining phase consumes the area of triangle
*cde* = ``(na*C - R/2)^2 / (2S)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_kv
from repro.core import formulas


@dataclass
class Fig03Result:
    rate: float
    layer_rate: float
    active_layers: int
    slope: float

    @property
    def consumption(self) -> float:
        return self.active_layers * self.layer_rate

    @property
    def filling_surplus_area(self) -> float:
        """Triangle abc: bytes stored while the rate exceeds consumption.

        The climb from ``consumption`` up to ``rate`` lasts
        ``(rate - consumption)/S`` and stores the triangle above the
        consumption line.
        """
        excess = max(0.0, self.rate - self.consumption)
        return formulas.triangle_area(excess, self.slope)

    @property
    def draining_deficit_area(self) -> float:
        """Triangle cde: bytes drawn from buffers after the backoff."""
        return formulas.one_backoff_requirement(
            self.rate, self.consumption, self.slope)

    @property
    def draining_duration(self) -> float:
        return formulas.drain_duration(
            self.consumption - self.rate / 2.0, self.slope)

    @property
    def filling_duration(self) -> float:
        return max(0.0, (self.rate - self.consumption) / self.slope)

    def render(self) -> str:
        return format_kv({
            "R_pre_backoff_Bps": self.rate,
            "consumption_na_C_Bps": self.consumption,
            "slope_S_Bps2": self.slope,
            "filling_phase_s": self.filling_duration,
            "filling_stored_bytes (triangle abc)":
                self.filling_surplus_area,
            "draining_phase_s": self.draining_duration,
            "draining_deficit_bytes (triangle cde)":
                self.draining_deficit_area,
        }, title="Figure 3: one congestion-control cycle")


def run(rate: float = 30_000.0, layer_rate: float = 6500.0,
        active_layers: int = 3, slope: float = 8000.0) -> Fig03Result:
    return Fig03Result(rate=rate, layer_rate=layer_rate,
                       active_layers=active_layers, slope=slope)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
