"""Figure 5: optimal buffer sharing -- sequential filling, reverse draining.

A fluid run around a single backoff with several active layers. The
figure's signature behaviours, which this experiment demonstrates and the
test suite asserts:

- during the filling phase the buffers fill *sequentially* (base first);
- during the draining phase the highest buffering layer drains first
  while lower layers keep their protection longer;
- the base layer ends the cycle holding the most data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ascii_chart, format_kv
from repro.core.config import QAConfig
from repro.core.fluid import FluidResult, FluidRun, ScriptedAimd


@dataclass
class Fig05Result:
    fluid: FluidResult
    layers: int

    def render(self) -> str:
        t = self.fluid.tracer
        out = ascii_chart(
            t.get("rate"), overlay=t.get("consumption"),
            title="Figure 5: available bandwidth (*) vs consumption (o)")
        for layer in range(self.layers):
            out += ascii_chart(
                t.get(f"buffer_L{layer}"),
                title=f"Figure 5: buffered bytes, layer {layer}")
        out += format_kv({
            f"final_buffer_L{i}": t.get(f"buffer_L{i}").final()
            for i in range(self.layers)
        })
        return out


def run(layer_rate: float = 2500.0, layers: int = 5,
        slope: float = 900.0, backoff_at: float = 28.0,
        duration: float = 40.0) -> Fig05Result:
    """Layers join as their buffers fill; one backoff, then draining."""
    config = QAConfig(
        layer_rate=layer_rate,
        max_layers=layers,
        k_max=1,
        packet_size=200,
        startup_delay=0.5,
    )
    bandwidth = ScriptedAimd(
        initial_rate=layer_rate * 1.5,
        slope=slope,
        backoff_times=(backoff_at,),
        max_rate=layers * layer_rate * 1.25,
    )
    fluid = FluidRun(config, bandwidth, duration=duration).run()
    return Fig05Result(fluid=fluid, layers=layers)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
