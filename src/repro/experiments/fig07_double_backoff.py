"""Figure 7: the possible double-backoff scenarios.

Scenario 1: the second backoff follows immediately (both at the start of
the draining phase). Scenario 2: the second backoff waits until the rate
has climbed back to the consumption rate. Scenario 3: anything between.

This experiment computes the total buffer requirement for the second
backoff landing at every point of the first draining phase (numerically
integrating the deficit), confirming the paper's claim that scenarios 1
and 2 bracket all the intermediate cases: scenario 1 needs the most
buffering *layers*, scenario 2 the most total buffering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_kv, format_table
from repro.core import formulas


def double_backoff_total(rate: float, consumption: float, slope: float,
                         fraction: float, dt: float = 1e-3) -> float:
    """Bytes of buffering needed when the 2nd backoff lands ``fraction``
    of the way through the 1st recovery (0 = scenario 1, 1 = scenario 2).

    Numerical integration of the deficit ``consumption - rate(t)``:
    rate halves at t=0, climbs at S, halves again when it reaches
    ``rate/2 + fraction * (consumption - rate/2)``, climbs until it
    crosses consumption again.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    current = rate / 2.0
    trigger = current + fraction * max(0.0, consumption - current)
    total = 0.0
    halved = fraction <= 0.0
    if halved:
        current /= 2.0
    guard = int(1e7)
    while current < consumption and guard:
        total += max(0.0, consumption - current) * dt
        current += slope * dt
        if not halved and current >= trigger:
            current /= 2.0
            halved = True
        guard -= 1
    return total


@dataclass
class Fig07Result:
    rate: float
    consumption: float
    slope: float
    rows: list[tuple[float, float]]

    def render(self) -> str:
        analytic_1 = formulas.scenario_total(
            self.rate, self.consumption, self.slope, k=2,
            scenario=formulas.SCENARIO_ONE)
        analytic_2 = formulas.scenario_total(
            self.rate, self.consumption, self.slope, k=2,
            scenario=formulas.SCENARIO_TWO)
        out = format_table(
            ("2nd backoff position (0=scen.1, 1=scen.2)",
             "required buffering (bytes)"),
            self.rows,
            title="Figure 7: double-backoff scenarios")
        out += format_kv({
            "analytic_scenario1_k2": analytic_1,
            "analytic_scenario2_k2": analytic_2,
        })
        return out


def run(rate: float = 30_000.0, layer_rate: float = 6500.0,
        active_layers: int = 3, slope: float = 8000.0,
        steps: int = 5) -> Fig07Result:
    consumption = active_layers * layer_rate
    rows = []
    for i in range(steps + 1):
        fraction = i / steps
        rows.append((fraction, double_backoff_total(
            rate, consumption, slope, fraction)))
    return Fig07Result(rate=rate, consumption=consumption, slope=slope,
                       rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
