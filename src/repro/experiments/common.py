"""Shared workload builder: the paper's T1 and T2 tests.

T1 (section 5, Figure 11): one quality-adaptive RAP flow sharing a
bottleneck with 9 plain RAP flows and 10 Sack-TCP flows.

T2 (Figure 13): T1 plus a CBR source at half the bottleneck bandwidth,
switched on at t=30 s and off at t=60 s.

Calibration note (recorded in DESIGN.md section 6 and EXPERIMENTS.md):
the paper quotes an 800 Kb/s bottleneck for 20 flows, yet its figures
show the adaptive flow operating at 10-45 KB/s against C = 10 KB/s
layers. We keep the paper's flow mix and RTT but scale the bottleneck to
400 KB/s (3.2 Mb/s) and use C = 6.5 KB/s / 500-byte packets, which puts
the adaptive flow at the same *relative* operating point as the paper's
plots (hunting around three active layers). All experiments accept
overrides, so the literal 800 Kb/s setting is one argument away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.config import QAConfig
from repro.core.metrics import QualityMetrics
from repro.server.session import SessionResult, StreamingSession
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRNG, derive_seed, make_rng
from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.transport import (
    CbrSink,
    CbrSource,
    RapSink,
    RapSource,
    TcpSink,
    TcpSource,
)


@dataclass
class WorkloadConfig:
    """Everything that defines one T1/T2-style run."""

    # Quality adaptation
    k_max: int = 2
    layer_rate: float = 6500.0
    max_layers: int = 4
    packet_size: int = 500
    allocator: str = "optimal"
    add_rule: str = "buffer_only"
    feedback: str = "send"
    # Network
    bottleneck_bandwidth: float = 400_000.0
    queue_capacity: int = 100
    n_rap_background: int = 9
    n_tcp: int = 10
    # Run
    duration: float = 40.0
    seed: int = 1
    # CBR burst (T2); fraction 0 disables it
    cbr_fraction: float = 0.0
    cbr_start: float = 30.0
    cbr_stop: float = 60.0

    def qa_config(self) -> QAConfig:
        return QAConfig(
            layer_rate=self.layer_rate,
            max_layers=self.max_layers,
            k_max=self.k_max,
            packet_size=self.packet_size,
            allocator=self.allocator,
            add_rule=self.add_rule,
            feedback=self.feedback,
        )

    @classmethod
    def t2(cls, **overrides) -> "WorkloadConfig":
        """The T2 (CBR burst, 90 s) variant."""
        overrides.setdefault("cbr_fraction", 0.5)
        overrides.setdefault("duration", 90.0)
        return cls(**overrides)

    def with_seed(self, seed: int) -> "WorkloadConfig":
        """This config with a different seed — the explicit path pooled
        collections use, so every run's seed shows up in one place."""
        return replace(self, seed=seed)


class PaperWorkload:
    """Builds and runs one T1/T2 experiment.

    Per-flow parameters (initial SRTT estimates, start times) are
    jittered from the seed so different seeds give independent loss
    patterns while every run stays exactly reproducible. All randomness
    flows from ``config.seed`` through :func:`repro.sim.rng.make_rng`
    and (for components added later) :meth:`component_rng`; nothing
    depends on process identity or ``PYTHONHASHSEED``, which is what
    lets the parallel experiment runner farm runs out to worker
    processes and still get bit-for-bit the serial output.
    """

    def __init__(self, config: Optional[WorkloadConfig] = None,
                 adapter_cls=None, transport_cls=None,
                 **overrides) -> None:
        if config is None:
            config = WorkloadConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.adapter_cls = adapter_cls
        self.transport_cls = transport_cls
        self.rng: SeededRNG = make_rng(config.seed)

        cfg = config
        n_pairs = 1 + cfg.n_rap_background + cfg.n_tcp
        if cfg.cbr_fraction > 0:
            n_pairs += 1
        self.sim = Simulator()
        self.network = Dumbbell(self.sim, DumbbellConfig(
            n_pairs=n_pairs,
            bottleneck_bandwidth=cfg.bottleneck_bandwidth,
            queue_capacity_packets=cfg.queue_capacity,
        ))
        self.session = self._build_session()
        self.background_rap: list[RapSource] = []
        self.background_tcp: list[TcpSource] = []
        self.cbr: Optional[CbrSource] = None
        self._build_background()

    # ------------------------------------------------------------- builders

    def _build_session(self) -> StreamingSession:
        server_host, client_host = self.network.pair(0)
        return StreamingSession(
            self.sim, server_host, client_host,
            self.config.qa_config(),
            adapter_cls=self.adapter_cls,
            transport_cls=self.transport_cls,
        )

    def _build_background(self) -> None:
        cfg = self.config
        slot = 1
        for _ in range(cfg.n_rap_background):
            src, dst = self.network.pair(slot)
            rap = RapSource(
                self.sim, src, dst.name,
                packet_size=cfg.packet_size,
                srtt_init=self.rng.jittered(0.2, 0.25),
                start=self.rng.uniform(0.0, 0.3),
            )
            RapSink(self.sim, dst, src.name, rap.flow_id)
            self.background_rap.append(rap)
            slot += 1
        for _ in range(cfg.n_tcp):
            src, dst = self.network.pair(slot)
            tcp = TcpSource(self.sim, src, dst.name,
                            start=self.rng.uniform(0.0, 0.5))
            TcpSink(self.sim, dst, src.name, tcp.flow_id)
            self.background_tcp.append(tcp)
            slot += 1
        if cfg.cbr_fraction > 0:
            src, dst = self.network.pair(slot)
            self.cbr = CbrSource(
                self.sim, src, dst.name,
                rate=cfg.cbr_fraction * cfg.bottleneck_bandwidth,
                start=cfg.cbr_start, stop=cfg.cbr_stop,
            )
            CbrSink(self.sim, dst, src.name, self.cbr.flow_id)

    def component_rng(self, label: str) -> SeededRNG:
        """An independent, label-addressed child stream of this run's seed.

        Unlike drawing from ``self.rng`` (whose stream position depends
        on construction order), a labelled child is stable no matter what
        else is built — new components should take their randomness from
        here so adding one never perturbs existing flows.
        """
        return SeededRNG(derive_seed(self.config.seed, label))

    # ----------------------------------------------------------------- run

    def run(self) -> SessionResult:
        self.sim.run(until=self.config.duration)
        return self.session.result()

    def network_summary(self) -> dict:
        """Bottleneck-level sanity numbers for reports."""
        cfg = self.config
        link = self.network.bottleneck
        return {
            "bottleneck_utilization": (
                link.bytes_forwarded / (cfg.bottleneck_bandwidth
                                        * cfg.duration)),
            "bottleneck_drops": link.queue.drops,
            "qa_flow_rate": self.session.server.rap.rate,
        }


def pooled_metrics(seeds, build) -> QualityMetrics:
    """Run ``build(seed).run()`` per seed and pool the QA metrics.

    Single 40-second runs contain only a handful of drop events; Tables 1
    and 2 are reported over the pooled events of several seeds.
    """
    pooled = QualityMetrics()
    for seed in seeds:
        result = build(int(seed)).run()
        pooled.drops.extend(result.metrics.drops)
        pooled.adds.extend(result.metrics.adds)
        pooled.stall_count += result.playout.stall_count
        pooled.stall_time += result.playout.stall_time
    return pooled
