"""Shared workload builder: the paper's T1 and T2 tests.

T1 (section 5, Figure 11): one quality-adaptive RAP flow sharing a
bottleneck with 9 plain RAP flows and 10 Sack-TCP flows.

T2 (Figure 13): T1 plus a CBR source at half the bottleneck bandwidth,
switched on at t=30 s and off at t=60 s.

Calibration note (recorded in DESIGN.md section 6 and EXPERIMENTS.md):
the paper quotes an 800 Kb/s bottleneck for 20 flows, yet its figures
show the adaptive flow operating at 10-45 KB/s against C = 10 KB/s
layers. We keep the paper's flow mix and RTT but scale the bottleneck to
400 KB/s (3.2 Mb/s) and use C = 6.5 KB/s / 500-byte packets, which puts
the adaptive flow at the same *relative* operating point as the paper's
plots (hunting around three active layers). All experiments accept
overrides, so the literal 800 Kb/s setting is one argument away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.config import QAConfig
from repro.core.metrics import QualityMetrics
from repro.scenario import (
    CbrFlowSpec,
    QAFlowSpec,
    RapFlowSpec,
    Scenario,
    ScenarioConfig,
    TcpFlowSpec,
)
from repro.server.session import SessionResult, StreamingSession
from repro.sim.rng import SeededRNG, derive_seed, make_rng
from repro.sim.topology import DumbbellConfig
from repro.transport import CbrSource, RapSource, TcpSource


@dataclass
class WorkloadConfig:
    """Everything that defines one T1/T2-style run."""

    # Quality adaptation
    k_max: int = 2
    layer_rate: float = 6500.0
    max_layers: int = 4
    packet_size: int = 500
    allocator: str = "optimal"
    add_rule: str = "buffer_only"
    feedback: str = "send"
    # Network
    bottleneck_bandwidth: float = 400_000.0
    queue_capacity: int = 100
    n_rap_background: int = 9
    n_tcp: int = 10
    # Run
    duration: float = 40.0
    seed: int = 1
    # CBR burst (T2); fraction 0 disables it
    cbr_fraction: float = 0.0
    cbr_start: float = 30.0
    cbr_stop: float = 60.0
    # Observability (off by default: golden runs record nothing)
    record_decisions: bool = False
    recorder_capacity: int = 65536
    collect_metrics: bool = False
    trace_spans: bool = False
    span_capacity: int = 65536

    def qa_config(self) -> QAConfig:
        return QAConfig(
            layer_rate=self.layer_rate,
            max_layers=self.max_layers,
            k_max=self.k_max,
            packet_size=self.packet_size,
            allocator=self.allocator,
            add_rule=self.add_rule,
            feedback=self.feedback,
        )

    @classmethod
    def t2(cls, **overrides) -> "WorkloadConfig":
        """The T2 (CBR burst, 90 s) variant."""
        overrides.setdefault("cbr_fraction", 0.5)
        overrides.setdefault("duration", 90.0)
        return cls(**overrides)

    def with_seed(self, seed: int) -> "WorkloadConfig":
        """This config with a different seed — the explicit path pooled
        collections use, so every run's seed shows up in one place."""
        return replace(self, seed=seed)


class PaperWorkload:
    """Builds and runs one T1/T2 experiment via the scenario layer.

    Per-flow parameters (initial SRTT estimates, start times) are
    jittered from the seed so different seeds give independent loss
    patterns while every run stays exactly reproducible. All randomness
    flows from ``config.seed`` through :func:`repro.sim.rng.make_rng`
    and (for components added later) :meth:`component_rng`; nothing
    depends on process identity or ``PYTHONHASHSEED``, which is what
    lets the parallel experiment runner farm runs out to worker
    processes and still get bit-for-bit the serial output.

    This class is now a thin facade over :class:`repro.scenario.Scenario`:
    it pre-draws the per-flow jitter in the historical order from
    ``self.rng`` into explicit spec fields (keeping every golden trace
    byte-identical), then hands the spec list to the builder. New
    experiments should use :class:`Scenario` directly.
    """

    def __init__(self, config: Optional[WorkloadConfig] = None,
                 adapter_cls=None, transport_cls=None,
                 **overrides) -> None:
        if config is None:
            config = WorkloadConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.adapter_cls = adapter_cls
        self.transport_cls = transport_cls
        self.rng: SeededRNG = make_rng(config.seed)

        self.scenario = Scenario(self._scenario_config())
        self.sim = self.scenario.sim
        self.network = self.scenario.network
        self.session: StreamingSession = self.scenario.flows[0].session
        self.background_rap: list[RapSource] = [
            f.source for f in self.scenario.flows if f.kind == "rap"]
        self.background_tcp: list[TcpSource] = [
            f.source for f in self.scenario.flows if f.kind == "tcp"]
        cbr_flows = [f for f in self.scenario.flows if f.kind == "cbr"]
        self.cbr: Optional[CbrSource] = (
            cbr_flows[0].source if cbr_flows else None)
        # Scenario-owned observability sinks, surfaced for reports.
        self.recorder = self.scenario.recorder
        self.metrics = self.scenario.metrics

    # ------------------------------------------------------------- builders

    def _scenario_config(self) -> ScenarioConfig:
        """Translate the workload into flow specs.

        Jitter is drawn from ``self.rng`` here, in the exact order the
        pre-scenario builder consumed it (per background RAP: SRTT then
        start; per TCP: start), so seeds reproduce historical runs.
        """
        cfg = self.config
        flows: list = [QAFlowSpec(
            config=cfg.qa_config(),
            adapter_cls=self.adapter_cls,
            transport_cls=self.transport_cls,
            label="qa",
        )]
        for i in range(cfg.n_rap_background):
            flows.append(RapFlowSpec(
                packet_size=cfg.packet_size,
                srtt_init=self.rng.jittered(0.2, 0.25),
                start=self.rng.uniform(0.0, 0.3),
                label=f"rap{i}",
            ))
        for i in range(cfg.n_tcp):
            flows.append(TcpFlowSpec(
                start=self.rng.uniform(0.0, 0.5),
                label=f"tcp{i}",
            ))
        if cfg.cbr_fraction > 0:
            flows.append(CbrFlowSpec(
                rate=cfg.cbr_fraction * cfg.bottleneck_bandwidth,
                start=cfg.cbr_start,
                stop=cfg.cbr_stop,
                label="cbr",
            ))
        return ScenarioConfig(
            flows=tuple(flows),
            topology=DumbbellConfig(
                bottleneck_bandwidth=cfg.bottleneck_bandwidth,
                queue_capacity_packets=cfg.queue_capacity,
            ),
            duration=cfg.duration,
            seed=cfg.seed,
            record_decisions=cfg.record_decisions,
            recorder_capacity=cfg.recorder_capacity,
            collect_metrics=cfg.collect_metrics,
            trace_spans=cfg.trace_spans,
            span_capacity=cfg.span_capacity,
        )

    def component_rng(self, label: str) -> SeededRNG:
        """An independent, label-addressed child stream of this run's seed.

        Unlike drawing from ``self.rng`` (whose stream position depends
        on construction order), a labelled child is stable no matter what
        else is built — new components should take their randomness from
        here so adding one never perturbs existing flows.
        """
        return SeededRNG(derive_seed(self.config.seed, label))

    # ----------------------------------------------------------------- run

    def run(self) -> SessionResult:
        self.sim.run(until=self.config.duration)
        return self.session.result()

    def network_summary(self) -> dict:
        """Bottleneck-level sanity numbers for reports."""
        cfg = self.config
        link = self.network.bottleneck
        return {
            "bottleneck_utilization": (
                link.bytes_forwarded / (cfg.bottleneck_bandwidth
                                        * cfg.duration)),
            "bottleneck_drops": link.queue.drops,
            "qa_flow_rate": self.session.server.rap.rate,
        }


def pooled_metrics(seeds, build) -> QualityMetrics:
    """Run ``build(seed).run()`` per seed and pool the QA metrics.

    Single 40-second runs contain only a handful of drop events; Tables 1
    and 2 are reported over the pooled events of several seeds.
    """
    pooled = QualityMetrics()
    for seed in seeds:
        result = build(int(seed)).run()
        pooled.drops.extend(result.metrics.drops)
        pooled.adds.extend(result.metrics.adds)
        pooled.stall_count += result.playout.stall_count
        pooled.stall_time += result.playout.stall_time
    return pooled
