"""Fairness among concurrent quality-adaptive flows (extension).

The paper's T1/T2 tests watch *one* QA flow against background traffic.
This experiment puts N quality-adaptive sessions head to head with TCP
cross-traffic on a shared bottleneck sized at a fixed per-flow share, and
sweeps N, asking the questions the single-flow tests cannot:

- do competing QA flows converge to equal throughput shares (Jain index
  over the QA flows), and how does that fairness scale with N?
- do they stay TCP-friendly in aggregate (QA share of delivered bytes
  vs the flow-count fair share)?
- does delivered *quality* (mean active layers) stay even across flows?

Built directly on :class:`repro.scenario.Scenario` — this module is the
reference example of composing multi-flow experiments from flow specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.core.config import QAConfig
from repro.scenario import (
    QAFlowSpec,
    Scenario,
    ScenarioConfig,
    ScenarioResult,
    TcpFlowSpec,
)
from repro.sim.topology import DumbbellConfig

#: Bottleneck capacity provisioned per flow (bytes/s). 20 KB/s against
#: 6.5 KB/s layers puts each QA flow's fair share around three layers,
#: the same relative operating point as the T1 calibration.
PER_FLOW_BANDWIDTH = 20_000.0


@dataclass
class MultiflowRow:
    """One sweep point: ``n_qa`` QA flows vs ``n_tcp`` TCP flows."""

    n_qa: int
    n_tcp: int
    fairness_qa: float
    fairness_all: float
    utilization: float
    qa_share: float
    min_qa_rate: float
    max_qa_rate: float
    mean_layers: float


@dataclass
class MultiflowResult:
    rows: list[MultiflowRow]
    scenarios: dict[int, ScenarioResult]

    def render(self) -> str:
        return format_table(
            ("QA flows", "TCP flows", "Jain(QA)", "Jain(all)",
             "utilization", "QA byte share", "min QA B/s", "max QA B/s",
             "mean layers"),
            [
                (r.n_qa, r.n_tcp,
                 round(r.fairness_qa, 3), round(r.fairness_all, 3),
                 round(r.utilization, 3), round(r.qa_share, 3),
                 round(r.min_qa_rate), round(r.max_qa_rate),
                 round(r.mean_layers, 2))
                for r in self.rows
            ],
            title="Multi-flow fairness: N QA sessions vs TCP cross-traffic")


def build_scenario(n_qa: int, n_tcp: int = 4, *,
                   duration: float = 30.0, seed: int = 1,
                   layer_rate: float = 6500.0, packet_size: int = 500,
                   telemetry: bool = True,
                   record_decisions: bool = False,
                   collect_metrics: bool = False,
                   trace_spans: bool = False) -> Scenario:
    """The shared scenario: ``n_qa`` QA flows + ``n_tcp`` TCP flows on a
    dumbbell provisioned at :data:`PER_FLOW_BANDWIDTH` per flow.

    QA flows all start at t=0 with identical configs; TCP start times
    are drawn from each flow's own spawned RNG stream.
    ``record_decisions``/``collect_metrics``/``trace_spans`` attach the
    scenario's flight recorder, metrics registry and span recorder
    (``repro-report`` turns them on; the golden sweep leaves them off).
    """
    qa_config = QAConfig(layer_rate=layer_rate, packet_size=packet_size)
    flows = tuple(
        [QAFlowSpec(config=qa_config, label=f"qa{i}")
         for i in range(n_qa)]
        + [TcpFlowSpec(label=f"tcp{i}") for i in range(n_tcp)]
    )
    n_flows = n_qa + n_tcp
    return Scenario(ScenarioConfig(
        flows=flows,
        topology=DumbbellConfig(
            bottleneck_bandwidth=n_flows * PER_FLOW_BANDWIDTH,
            queue_capacity_packets=5 * n_flows,
        ),
        duration=duration,
        seed=seed,
        telemetry=telemetry,
        record_decisions=record_decisions,
        collect_metrics=collect_metrics,
        trace_spans=trace_spans,
    ))


def _analyze(result: ScenarioResult, n_qa: int,
             n_tcp: int) -> MultiflowRow:
    qa = result.qa_flows()
    qa_rates = [f.mean_rate for f in qa]
    total = sum(f.bytes_delivered for f in result.flows)
    qa_bytes = sum(f.bytes_delivered for f in qa)
    layer_means = [m for m in (f.mean_layers() for f in qa)
                   if m is not None]
    return MultiflowRow(
        n_qa=n_qa,
        n_tcp=n_tcp,
        fairness_qa=result.fairness_of("qa"),
        fairness_all=result.fairness,
        utilization=result.utilization,
        qa_share=qa_bytes / total if total > 0 else 0.0,
        min_qa_rate=min(qa_rates),
        max_qa_rate=max(qa_rates),
        mean_layers=(sum(layer_means) / len(layer_means)
                     if layer_means else 0.0),
    )


def run(counts: Sequence[int] = (2, 4, 8, 16), n_tcp: int = 4,
        duration: float = 30.0, seed: int = 1) -> MultiflowResult:
    rows = []
    scenarios = {}
    for n_qa in counts:
        scenario = build_scenario(n_qa, n_tcp, duration=duration,
                                  seed=seed)
        result = scenario.run()
        scenarios[n_qa] = result
        rows.append(_analyze(result, n_qa, n_tcp))
    return MultiflowResult(rows=rows, scenarios=scenarios)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
