"""Ablation: selective retransmission of the base layer (section 1.3).

The paper lists, among the advantages of layered streaming, "an
opportunity for selective retransmission of the more important
information" -- but never evaluates it. This experiment does: the same
T1 workload, with and without priority retransmission of lost
base-layer data.

The result is an honest null (and an instructive one): under the
paper's *fluid* buffer model -- where any base-layer byte is as good as
any other -- retransmission is behaviourally equivalent to the
maintenance machinery that already re-feeds a loss-depleted base with
fresh data. Stall and buffer-health numbers match within noise while
bandwidth is re-spent on old bytes. Selective retransmission only pays
off with non-fungible frame semantics (a *specific* missing frame),
which is exactly the caveat a deployment of the paper's scheme over a
real codec would need to know.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.experiments.common import PaperWorkload, WorkloadConfig


@dataclass
class RetransmitRow:
    scheme: str
    stalls: int
    stall_time: float
    gap_bytes: float
    base_level_min: float
    base_level_mean: float
    retransmitted: float
    mean_layers: float


@dataclass
class RetransmitAblationResult:
    rows: list[RetransmitRow]

    def render(self) -> str:
        return format_table(
            ("scheme", "stalls", "stall time s", "gap bytes (all)",
             "base buf min (B)", "base buf mean (B)",
             "retransmitted (B)", "mean layers"),
            [(r.scheme, r.stalls, round(r.stall_time, 2),
              round(r.gap_bytes), round(r.base_level_min),
              round(r.base_level_mean), round(r.retransmitted),
              round(r.mean_layers, 2))
             for r in self.rows],
            title="Ablation: selective base-layer retransmission "
            "(lossy T1)")


def run(seeds: Sequence[int] = (1, 2, 3),
        **overrides) -> RetransmitAblationResult:
    overrides.setdefault("queue_capacity", 40)  # lossier than default
    overrides.setdefault("k_max", 2)
    rows = []
    for scheme, protect in (("no retransmission", 0),
                            ("retransmit base", 1)):
        stalls = 0
        stall_time = gaps = resent = layers = 0.0
        base_min = base_mean = 0.0
        for seed in seeds:
            workload = PaperWorkload(WorkloadConfig(seed=seed,
                                                    **overrides))
            adapter = workload.session.server.adapter
            adapter.config = adapter.config.with_(
                retransmit_layers=protect)
            result = workload.run()
            summary = result.summary()
            stalls += summary["stalls_receiver"]
            stall_time += summary["stall_time_receiver"]
            gaps += summary["gap_bytes"]
            layers += summary["mean_layers"]
            resent += adapter.retransmitted_bytes
            base = result.tracer.get("buffer_L0")
            steady = base.window(5.0, workload.config.duration)
            base_min += steady.min()
            base_mean += steady.mean()
        n = len(seeds)
        rows.append(RetransmitRow(
            scheme=scheme, stalls=stalls, stall_time=stall_time,
            gap_bytes=gaps / n, base_level_min=base_min / n,
            base_level_mean=base_mean / n,
            retransmitted=resent / n, mean_layers=layers / n))
    return RetransmitAblationResult(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
