"""Figure 6: revised filling/draining with smoothing (K_max > 1).

Two consecutive filling phases: after the first backoff's draining phase
ends, buffering continues *past* the single-backoff requirement because
the smoothing factor defers the layer add until K_max backoffs are
covered. The run shows the total buffering exceeding the one-backoff
requirement before the second backoff arrives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ascii_chart, format_kv
from repro.core import formulas
from repro.core.config import QAConfig
from repro.core.fluid import FluidResult, FluidRun, ScriptedAimd


@dataclass
class Fig06Result:
    fluid: FluidResult
    config: QAConfig
    second_backoff: float

    def render(self) -> str:
        t = self.fluid.tracer
        out = ascii_chart(
            t.get("rate"), overlay=t.get("consumption"),
            title="Figure 6: bandwidth (*) vs consumption (o), two "
            "filling phases")
        out += ascii_chart(
            t.get("total_buffer"),
            title="Figure 6: total receiver buffering (bytes)")
        # How much buffering was held just before the second backoff vs
        # the single-backoff requirement at that moment?
        before = self.second_backoff - 0.1
        rate_then = t.get("rate").value_at(before)
        consumption_then = t.get("consumption").value_at(before)
        one_backoff = formulas.one_backoff_requirement(
            rate_then, consumption_then, self.fluid.adapter.slope)
        out += format_kv({
            "buffer_before_2nd_backoff": t.get("total_buffer")
            .value_at(before),
            "one_backoff_requirement_then": one_backoff,
            "smoothing_factor_k_max": self.config.k_max,
        })
        return out


def run(layer_rate: float = 4000.0, layers: int = 3, k_max: int = 3,
        slope: float = 1500.0,
        backoff_times: tuple[float, ...] = (18.0, 34.0),
        duration: float = 44.0) -> Fig06Result:
    config = QAConfig(
        layer_rate=layer_rate,
        max_layers=layers,
        k_max=k_max,
        packet_size=200,
        startup_delay=0.5,
    )
    bandwidth = ScriptedAimd(
        initial_rate=layers * layer_rate * 1.01,
        slope=slope,
        backoff_times=backoff_times,
        max_rate=layers * layer_rate * 1.7,
    )
    fluid = FluidRun(config, bandwidth, duration=duration).run()
    return Fig06Result(fluid=fluid, config=config,
                       second_backoff=backoff_times[-1])


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
