"""Population-scale behavior of the mechanism (extension).

The paper argues quality adaptation is viable *per flow*; a deployment
question it leaves open is what a whole population looks like: when
hundreds to tens of thousands of QA flows each run the §2.2 machinery
around a fair share, how even is delivered quality, and do add/drop
rates stay modest? Packet simulation cannot answer at this scale — 10k
flows at packet granularity is billions of events. The fluid fast path
can: :class:`~repro.sim.fluid_batch.FlowClassBatch` advances a
homogeneous flow class as one numpy program, so the sweep below runs
four orders of magnitude of population in seconds.

Each flow follows its own jittered AIMD sawtooth around the same fair
share (independent backoff phases drawn from index-keyed seeds), so the
sweep isolates the *mechanism's* dispersion: any unfairness in mean
rate or layers comes from how quality adaptation quantizes an identical
bandwidth process, not from network interaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.core.config import QAConfig
from repro.sim.fluid_batch import BatchResult, FlowClassBatch

#: Fair share each flow oscillates around (bytes/s) — 8x the layer
#: rate, so the population hunts in the upper half of the layer range.
FAIR_SHARE = 20_000.0


def batch_config() -> QAConfig:
    """The shared mechanism config for the flock (one codec class)."""
    return QAConfig(layer_rate=2500.0, max_layers=8, k_max=2)


@dataclass
class FlockRow:
    """One sweep point: a population of ``n_flows`` identical-class
    flows with independent sawtooth phases."""

    n_flows: int
    mean_layers: float
    mean_rate: float
    fairness: float
    adds_per_flow: float
    drops_per_flow: float
    stall_fraction: float
    mean_buffer: float


@dataclass
class FlockScaleResult:
    rows: list[FlockRow]
    batches: dict[int, BatchResult]

    def render(self) -> str:
        return format_table(
            ("flows", "mean layers", "mean B/s", "Jain", "adds/flow",
             "drops/flow", "stalled", "mean buffer B"),
            [
                (r.n_flows, round(r.mean_layers, 3), round(r.mean_rate),
                 round(r.fairness, 4), round(r.adds_per_flow, 2),
                 round(r.drops_per_flow, 2), round(r.stall_fraction, 4),
                 round(r.mean_buffer))
                for r in self.rows
            ],
            title="Flock scale: homogeneous QA populations "
                  "(fluid batch backend)")


def run_population(n_flows: int, duration: float = 40.0,
                   seed: int = 1, slope: float = 1000.0) -> BatchResult:
    """One population at one size, fully determined by ``seed``."""
    batch = FlowClassBatch.jittered(
        batch_config(), n_flows, slope=slope, duration=duration,
        seed=seed, fair_share=FAIR_SHARE)
    return batch.run()


def _analyze(n_flows: int, result: BatchResult) -> FlockRow:
    summary = result.summary()
    return FlockRow(
        n_flows=n_flows,
        mean_layers=summary["mean_layers"],
        mean_rate=summary["mean_rate"],
        fairness=summary["fairness"],
        adds_per_flow=summary["adds_per_flow"],
        drops_per_flow=summary["drops_per_flow"],
        stall_fraction=summary["stall_fraction"],
        mean_buffer=summary["mean_buffer"],
    )


def run(counts: Sequence[int] = (100, 1000, 10000),
        duration: float = 40.0, seed: int = 1) -> FlockScaleResult:
    rows = []
    batches = {}
    for n_flows in counts:
        result = run_population(n_flows, duration=duration, seed=seed)
        batches[n_flows] = result
        rows.append(_analyze(n_flows, result))
    return FlockScaleResult(rows=rows, batches=batches)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
