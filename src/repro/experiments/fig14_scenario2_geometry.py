"""Figure 14 (appendix): Buf_total geometry for scenario 2.

``k1`` immediate backoffs push the rate just below the consumption rate;
the remaining ``k - k1`` backoffs then occur sequentially, each costing
one identical triangle of height consumption/2. The experiment tabulates
the decomposition and cross-checks it against the closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_kv, format_table
from repro.core import formulas


@dataclass
class Fig14Result:
    rate: float
    consumption: float
    slope: float
    k: int

    def render(self) -> str:
        k1 = formulas.k1_backoffs(self.rate, self.consumption)
        first_deficit = formulas.deficit_after_backoffs(
            self.rate, self.consumption, k1)
        first = formulas.triangle_area(first_deficit, self.slope)
        sequential = formulas.triangle_area(self.consumption / 2.0,
                                            self.slope)
        total = formulas.scenario_total(
            self.rate, self.consumption, self.slope, self.k,
            formulas.SCENARIO_TWO)
        rows = [("first triangle (k1 immediate backoffs)", first)]
        rows += [
            (f"sequential triangle {i + 1}", sequential)
            for i in range(max(0, self.k - k1))
        ]
        out = format_table(("component", "bytes"), rows,
                           title="Figure 14: scenario-2 decomposition")
        out += format_kv({
            "k": self.k,
            "k1 (backoffs to cross consumption)": k1,
            "sum_of_components": first + max(0, self.k - k1) * sequential,
            "closed_form_total": total,
        })
        return out


def run(rate: float = 30_000.0, layer_rate: float = 6500.0,
        active_layers: int = 3, slope: float = 8000.0,
        k: int = 4) -> Fig14Result:
    return Fig14Result(rate=rate, consumption=active_layers * layer_rate,
                       slope=slope, k=k)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
