"""Ablation: quality adaptation vs a fixed-quality stream.

The paper's motivation (section 1.2): a non-adaptive server must pick
one encoding rate. Too high and low-bandwidth periods stall playback;
too low and capacity is wasted. We stream the same clip through the same
T1 network three ways -- adaptive, fixed at 2 layers, fixed at 4 layers
-- and compare stalls against delivered quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.baselines.static_stream import FixedQualityAdapter
from repro.experiments.common import PaperWorkload, WorkloadConfig


@dataclass
class StaticRow:
    scheme: str
    mean_layers: float
    stalls: int
    stall_time: float
    gap_bytes: float
    quality_changes: int


@dataclass
class StaticAblationResult:
    rows: list[StaticRow]

    def render(self) -> str:
        return format_table(
            ("scheme", "mean layers", "stalls", "stall time s",
             "gap bytes", "quality changes"),
            [(r.scheme, round(r.mean_layers, 2), r.stalls,
              round(r.stall_time, 2), round(r.gap_bytes),
              r.quality_changes) for r in self.rows],
            title="Ablation: adaptive vs fixed-quality streaming (T1)")


def run(seeds: Sequence[int] = (1, 2),
        fixed_levels: Sequence[int] = (2, 4),
        **overrides) -> StaticAblationResult:
    overrides.setdefault("duration", 40.0)
    rows = []

    def pooled(name, build):
        stalls = stall_time = gaps = changes = 0.0
        mean_layers = 0.0
        for seed in seeds:
            session = build(seed).run()
            summary = session.summary()
            stalls += summary["stalls_receiver"]
            stall_time += summary["stall_time_receiver"]
            gaps += summary["gap_bytes"]
            changes += summary["quality_changes"]
            mean_layers += summary["mean_layers"]
        n = len(seeds)
        rows.append(StaticRow(name, mean_layers / n, int(stalls),
                              stall_time, gaps / n, int(changes)))

    pooled("adaptive",
           lambda seed: PaperWorkload(
               WorkloadConfig(seed=seed, **overrides)))
    for level in fixed_levels:
        pooled(f"fixed {level} layers",
               lambda seed, lv=level: PaperWorkload(
                   WorkloadConfig(seed=seed, max_layers=lv, **overrides),
                   adapter_cls=FixedQualityAdapter))
    return StaticAblationResult(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
