"""Ablation: quality adaptation over different AIMD transports.

The paper (section 7) plans to "extend the idea of quality adaptation to
other congestion control schemes that employ AIMD algorithms". The
adapter is transport-agnostic by construction; this experiment runs the
identical mechanism over:

- **RAP** (rate-based, IPG-paced -- the paper's transport), and
- a **window-based AIMD** transport (TCP-like ACK clocking,
  :mod:`repro.transport.aimd`).

Both halve on congestion and climb at S = P/srtt^2, so the buffer
formulas apply unchanged; the window transport's burstiness is the
stress test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.experiments.common import PaperWorkload, WorkloadConfig
from repro.transport import RapSource, WindowAimdSource

TRANSPORTS = {
    "rap": RapSource,
    "window-aimd": WindowAimdSource,
}


@dataclass
class TransportRow:
    transport: str
    mean_rate: float
    mean_layers: float
    drops: int
    adds: int
    stalls: int
    stall_time: float
    gap_bytes: float


@dataclass
class TransportAblationResult:
    rows: list[TransportRow]

    def render(self) -> str:
        return format_table(
            ("transport", "mean rate B/s", "mean layers", "drops",
             "adds", "stalls", "stall time s", "gap bytes"),
            [(r.transport, round(r.mean_rate), round(r.mean_layers, 2),
              r.drops, r.adds, r.stalls, round(r.stall_time, 2),
              round(r.gap_bytes)) for r in self.rows],
            title="Ablation: the same quality adapter over different "
            "AIMD transports (T1)")


def run(seeds: Sequence[int] = (1, 2, 3),
        **overrides) -> TransportAblationResult:
    overrides.setdefault("k_max", 2)
    rows = []
    for name, transport_cls in TRANSPORTS.items():
        rate = layers = stall_time = gaps = 0.0
        drops = adds = stalls = 0
        for seed in seeds:
            session = PaperWorkload(
                WorkloadConfig(seed=seed, **overrides),
                transport_cls=transport_cls).run()
            summary = session.summary()
            rate += summary["mean_rate"]
            layers += summary["mean_layers"]
            drops += summary["drops"]
            adds += summary["adds"]
            stalls += summary["stalls_receiver"]
            stall_time += summary["stall_time_receiver"]
            gaps += summary["gap_bytes"]
        n = len(seeds)
        rows.append(TransportRow(
            transport=name, mean_rate=rate / n, mean_layers=layers / n,
            drops=drops, adds=adds, stalls=stalls,
            stall_time=stall_time, gap_bytes=gaps / n))
    return TransportAblationResult(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
