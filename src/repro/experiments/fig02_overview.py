"""Figure 2: layered encoding with receiver buffering (mechanism demo).

A clean fluid run: the available bandwidth climbs, two scripted backoffs
interrupt it, and the receiver's per-layer buffers absorb the deficits so
the number of layers played stays constant. The paper's figure shows the
transmission vs consumption rate (top) and per-layer buffering (bottom);
we render the same two panels plus the filling/draining phase timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ascii_chart, format_kv
from repro.core.config import QAConfig
from repro.core.fluid import FluidResult, FluidRun, ScriptedAimd
from repro.sim.trace import Tracer


@dataclass
class Fig02Result:
    fluid: FluidResult
    backoff_times: tuple[float, ...]

    @property
    def tracer(self) -> Tracer:
        return self.fluid.tracer

    def render(self) -> str:
        t = self.tracer
        out = ascii_chart(
            t.get("rate"), overlay=t.get("consumption"),
            title="Figure 2 (top): transmission rate (*) vs consumption "
            "rate (o), bytes/s")
        for layer in (0, 1):
            out += ascii_chart(
                t.get(f"buffer_L{layer}"),
                title=f"Figure 2 (bottom): receiver buffer, layer {layer} "
                "(bytes)")
        drops = [time for time, _ in t.events_of("drop")]
        out += format_kv({
            "backoffs_scripted": ", ".join(f"{b:.1f}s"
                                           for b in self.backoff_times),
            "layers_final": t.get("layers").final(),
            "layer_drops": len(drops),
            "max_buffer_L0": t.get("buffer_L0").max(),
            "max_buffer_L1": t.get("buffer_L1").max(),
        })
        return out


def run(layer_rate: float = 5000.0, slope: float = 2000.0,
        duration: float = 30.0,
        backoff_times: tuple[float, ...] = (12.0, 22.0)) -> Fig02Result:
    """Two layers, two backoffs, no losses -- the paper's sketch."""
    config = QAConfig(
        layer_rate=layer_rate,
        max_layers=2,
        k_max=2,
        packet_size=250,
        startup_delay=0.5,
    )
    bandwidth = ScriptedAimd(
        initial_rate=layer_rate * 0.9,
        slope=slope,
        backoff_times=backoff_times,
        max_rate=layer_rate * 2.4,
    )
    fluid = FluidRun(config, bandwidth, duration=duration).run()
    return Fig02Result(fluid=fluid, backoff_times=tuple(backoff_times))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
