"""Figure 11: the first 40 seconds of the K_max = 2 trace (test T1).

One quality-adaptive RAP flow against 9 RAP and 10 TCP flows. The
paper's five panels, reproduced as ASCII charts over the same trace:

1. total transmit rate with the consumption rate (layer count) overlaid;
2. transmit rate broken down by layer (per-layer bandwidth share);
3. per-layer bandwidth share (same data, separate panels);
4. per-layer buffer drain rate;
5. per-layer accumulated receiver buffering.

Shape checks (asserted by the test suite, reported here): most bandwidth
variation is absorbed by the lowest layers; buffering is ordered
base-heaviest; the base layer never underflows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ascii_chart, format_kv
from repro.experiments.common import PaperWorkload, WorkloadConfig
from repro.server.session import SessionResult


@dataclass
class Fig11Result:
    session: SessionResult
    workload: PaperWorkload

    def render(self) -> str:
        t = self.session.tracer
        layers = self.workload.config.max_layers
        out = ascii_chart(
            t.get("rate"), overlay=t.get("consumption"),
            title="Figure 11: transmit rate (*) vs consumption rate (o), "
            "bytes/s")
        for i in range(layers):
            out += ascii_chart(
                t.get(f"send_rate_L{i}"),
                title=f"Figure 11: bandwidth share, layer {i} (bytes/s)")
        for i in range(layers):
            out += ascii_chart(
                t.get(f"drain_rate_L{i}"),
                title=f"Figure 11: buffer drain rate, layer {i} (bytes/s)")
        for i in range(layers):
            out += ascii_chart(
                t.get(f"buffer_L{i}"),
                title=f"Figure 11: buffered data, layer {i} (bytes)")
        summary = self.session.summary()
        summary.update(self.workload.network_summary())
        out += format_kv(summary, title="Figure 11 summary")
        return out


def run(**overrides) -> Fig11Result:
    overrides.setdefault("k_max", 2)
    workload = PaperWorkload(WorkloadConfig(**overrides))
    return Fig11Result(session=workload.run(), workload=workload)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
