"""Figure 12: the effect of the smoothing factor K_max.

Repeats the T1 run with K_max = 2, 3, 4 (and optionally more). The
paper's claims, which the table quantifies:

- higher K_max means *fewer changes in quality* (adds + drops);
- at the expense of a longer time until the best short-term quality is
  first reached;
- the total amount of buffering increases with K_max;
- and a larger share of the buffering sits in higher layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis import format_table
from repro.experiments.common import PaperWorkload, WorkloadConfig
from repro.server.session import SessionResult


@dataclass
class KmaxRow:
    k_max: int
    quality_changes: int
    adds: int
    drops: int
    time_to_max_quality: Optional[float]
    mean_total_buffer: float
    max_total_buffer: float
    higher_layer_share: float
    mean_layers: float


@dataclass
class Fig12Result:
    rows: list[KmaxRow]
    sessions: dict[int, SessionResult]

    def render(self) -> str:
        return format_table(
            ("Kmax", "quality changes", "adds", "drops",
             "t(first max quality) s", "mean buf (B)", "max buf (B)",
             "higher-layer buf share %", "mean layers"),
            [
                (r.k_max, r.quality_changes, r.adds, r.drops,
                 r.time_to_max_quality, round(r.mean_total_buffer),
                 round(r.max_total_buffer),
                 round(100 * r.higher_layer_share, 1),
                 round(r.mean_layers, 2))
                for r in self.rows
            ],
            title="Figure 12: effect of the smoothing factor K_max (T1)")


def _analyze(k_max: int, session: SessionResult,
             max_layers: int) -> KmaxRow:
    tracer = session.tracer
    layers_ts = tracer.get("layers")
    time_to_max = None
    for t, v in layers_ts:
        if v >= max_layers:
            time_to_max = t
            break
    total = tracer.get("total_buffer")
    higher = 0.0
    everything = 0.0
    for i in range(max_layers):
        mean_i = tracer.get(f"buffer_L{i}").mean()
        everything += mean_i
        if i >= 1:
            higher += mean_i
    share = higher / everything if everything > 0 else 0.0
    summary = session.summary()
    return KmaxRow(
        k_max=k_max,
        quality_changes=summary["quality_changes"],
        adds=summary["adds"],
        drops=summary["drops"],
        time_to_max_quality=time_to_max,
        mean_total_buffer=total.mean(),
        max_total_buffer=total.max(),
        higher_layer_share=share,
        mean_layers=summary["mean_layers"],
    )


def run(k_values: Sequence[int] = (2, 3, 4), **overrides) -> Fig12Result:
    rows = []
    sessions = {}
    for k_max in k_values:
        workload = PaperWorkload(WorkloadConfig(k_max=k_max, **overrides))
        session = workload.run()
        sessions[k_max] = session
        rows.append(_analyze(k_max, session,
                             workload.config.max_layers))
    return Fig12Result(rows=rows, sessions=sessions)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
