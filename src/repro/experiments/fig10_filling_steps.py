"""Figure 10: the step-by-step monotone filling sequence.

The effective per-layer targets along the maximally efficient path: the
same ordered states as Figure 9, but with the monotonicity constraint
applied so no layer's target ever decreases (nothing drains during a
filling phase). The experiment prints both the targets and, per state,
how much the constraint lifted each layer above its raw optimal share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_table
from repro.core.states import StateSequence


@dataclass
class Fig10Result:
    sequence: StateSequence

    def rows(self) -> list[tuple]:
        out = []
        for step, state in enumerate(self.sequence):
            lifted = sum(
                1 for raw, eff in zip(state.shares, state.effective_shares)
                if eff > raw + 1e-6)
            out.append((step, state.label(),
                        round(state.effective_total),
                        *(round(s) for s in state.effective_shares),
                        lifted))
        return out

    def render(self) -> str:
        na = self.sequence.active_layers
        headers = ("step", "state", "eff. total",
                   *(f"L{i}" for i in range(na)), "layers lifted")
        return format_table(
            headers, self.rows(),
            title="Figure 10: monotone filling targets along the "
            "maximally efficient path (bytes)")


def run(rate: float = 30_000.0, layer_rate: float = 6500.0,
        active_layers: int = 4, slope: float = 8000.0,
        k_max: int = 5) -> Fig10Result:
    return Fig10Result(StateSequence(rate, layer_rate, active_layers,
                                     slope, k_max))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
