"""Table 2: percentage of drops due to poor buffer distribution.

Drops that would not have happened had the same total buffering been
distributed differently across layers -- i.e. drop events where the
*usable* buffering exceeded the recovery requirement but a layer had to
go anyway. The paper reports 0% throughout T1 and a few percent for T2
(growing, noisily, with K_max); '-' marks cells with no drop events at
all (as in the paper's T2 / K_max=8 cell).

Shares the data collection with Table 1 (same pooled runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.experiments.table1_efficiency import (
    DEFAULT_K_VALUES,
    DEFAULT_SEEDS,
    TableResult,
    collect,
)


@dataclass
class Table2Result:
    """A Table-2 view over the shared (Table 1 + Table 2) collection."""

    inner: TableResult

    @property
    def k_values(self):
        return self.inner.k_values

    @property
    def metrics(self):
        return self.inner.metrics

    def render(self) -> str:
        return render(self.inner)


def run(k_values: Sequence[int] = DEFAULT_K_VALUES,
        seeds: Sequence[int] = DEFAULT_SEEDS,
        **overrides) -> Table2Result:
    return Table2Result(collect(k_values, seeds, **overrides))


def render(result) -> str:
    """Render any TableResult-shaped collection as Table 2."""
    headers = ("test", *(f"Kmax={k}" for k in result.k_values))
    out = format_table(
        headers,
        [result.poor_row("T1"), result.poor_row("T2")],
        title="Table 2: drops due to poor buffer distribution (%)")
    out += format_table(
        headers,
        [result.drops_row("T1"), result.drops_row("T2")],
        title="(pooled drop events per cell)")
    return out


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
