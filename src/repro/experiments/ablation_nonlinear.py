"""Ablation: non-linear layer spacing (section 7 future work).

The paper's analysis assumes linearly spaced layers and defers
"quality adaptation with a non-linear distribution of bandwidth among
layers" to future work. This experiment works out the analytic side of
that extension with :mod:`repro.core.nonlinear`: for the same *total*
consumption rate, how does the optimal buffer distribution change when
the layer ladder is geometric (fat base, thin enhancements) instead of
linear?

Findings the table shows (asserted by the tests):

- the totals are identical -- the deficit triangle only depends on the
  total consumption rate;
- the fat-base ladder needs *fewer* buffering layers (the base alone
  covers more of the deficit), concentrating buffering even more in the
  base layer;
- under the drop rule, thin top layers are shed in bunches: dropping a
  thin enhancement frees little consumption, so deep deficits cut
  deeper into the ladder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis import format_kv, format_table
from repro.core import formulas, nonlinear


@dataclass
class NonlinearResult:
    rate: float
    slope: float
    linear_rates: tuple[float, ...]
    geometric_rates: tuple[float, ...]

    def shares(self, rates, k, scenario):
        return nonlinear.scenario_shares(self.rate, rates, self.slope,
                                         k, scenario)

    def rows(self) -> list[tuple]:
        out = []
        for label, rates in (("linear", self.linear_rates),
                             ("geometric", self.geometric_rates)):
            for k in (1, 2):
                shares = self.shares(rates, k, formulas.SCENARIO_ONE)
                nb = sum(1 for s in shares if s > 0)
                out.append((
                    label, k, round(math.fsum(shares)), nb,
                    *(round(s) for s in shares)))
        return out

    def drop_rule_rows(self) -> list[tuple]:
        out = []
        for label, rates in (("linear", self.linear_rates),
                             ("geometric", self.geometric_rates)):
            for post_rate_frac in (0.75, 0.5, 0.25):
                post = post_rate_frac * math.fsum(rates)
                kept = nonlinear.layers_to_keep(post, 2_000.0, rates,
                                                self.slope)
            # report the deepest cut
                out.append((label, round(post), kept))
        return out

    def render(self) -> str:
        n = len(self.linear_rates)
        out = format_table(
            ("spacing", "k", "total (B)", "nb",
             *(f"L{i}" for i in range(n))),
            self.rows(),
            title="Ablation: optimal shares, linear vs geometric layer "
            "spacing (same total rate)")
        out += format_table(
            ("spacing", "post-backoff rate", "layers kept"),
            self.drop_rule_rows(),
            title="Drop rule under deep deficits (2 KB buffered)")
        out += format_kv({
            "linear_rates": ", ".join(f"{r:.0f}"
                                      for r in self.linear_rates),
            "geometric_rates": ", ".join(f"{r:.0f}"
                                         for r in self.geometric_rates),
            "total_rate": math.fsum(self.linear_rates),
        })
        return out


def run(total_rate: float = 26_000.0, n_layers: int = 4,
        rate: float = 30_000.0, slope: float = 8_000.0,
        ratio: float = 0.5) -> NonlinearResult:
    linear = tuple([total_rate / n_layers] * n_layers)
    geo = nonlinear.geometric_rates(1.0, n_layers, ratio)
    scale = total_rate / math.fsum(geo)
    geometric = tuple(g * scale for g in geo)
    return NonlinearResult(rate=rate, slope=slope, linear_rates=linear,
                           geometric_rates=geometric)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
