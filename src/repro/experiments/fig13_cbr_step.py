"""Figure 13: responsiveness to long-term bandwidth changes (test T2).

The T1 mix plus a CBR source at half the bottleneck bandwidth, on from
t=30 s to t=60 s, K_max = 4, 90-second run. The shape to reproduce:

- when the CBR starts, the congestion controller's rate collapses and
  the adapter sheds layers (top first), drawing on every layer's buffer
  -- but the base layer keeps playing throughout;
- when the CBR stops, the rate recovers and the layers are re-added.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ascii_chart, format_kv
from repro.experiments.common import PaperWorkload, WorkloadConfig
from repro.server.session import SessionResult


@dataclass
class Fig13Result:
    session: SessionResult
    workload: PaperWorkload

    def phase_means(self) -> dict:
        """Mean active layers before / during / after the CBR burst."""
        layers = self.session.tracer.get("layers")
        cfg = self.workload.config
        return {
            "mean_layers_before_cbr": layers.window(
                5.0, cfg.cbr_start).mean(),
            "mean_layers_during_cbr": layers.window(
                cfg.cbr_start + 5.0, cfg.cbr_stop).mean(),
            "mean_layers_after_cbr": layers.window(
                cfg.cbr_stop + 5.0, cfg.duration).mean(),
        }

    def render(self) -> str:
        t = self.session.tracer
        out = ascii_chart(
            t.get("rate"), overlay=t.get("consumption"),
            title="Figure 13: transmit rate (*) vs consumption (o); CBR "
            "on 30-60 s")
        out += ascii_chart(t.get("layers"),
                           title="Figure 13: active layers")
        for i in range(self.workload.config.max_layers):
            out += ascii_chart(
                t.get(f"buffer_L{i}"),
                title=f"Figure 13: buffered data, layer {i} (bytes)")
        summary = self.session.summary()
        summary.update(self.phase_means())
        out += format_kv(summary, title="Figure 13 summary")
        return out


def run(**overrides) -> Fig13Result:
    overrides.setdefault("k_max", 4)
    workload = PaperWorkload(WorkloadConfig.t2(**overrides))
    return Fig13Result(session=workload.run(), workload=workload)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
