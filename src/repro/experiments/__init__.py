"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(**overrides)`` returning either a result
object with a ``render()`` method, or a value handled by a module-level
``render(result)`` function (plain text: tables + ASCII charts) — the
protocol :func:`repro.experiments.runner.render_result` normalizes.

The CLI (:mod:`repro.experiments.runner`, installed as
``repro-experiments``) dispatches on the experiment name, schedules
multi-experiment runs across worker processes, memoizes rendered output
in a content-addressed cache (:mod:`repro.experiments.cache`) and
records a per-run ``manifest.json``. DESIGN.md section 4 maps each
module to its figure/table; EXPERIMENTS.md records the measured
outputs; docs/MECHANISM.md documents the runner itself.
"""

EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_rap_sawtooth",
    "fig02": "repro.experiments.fig02_overview",
    "fig03": "repro.experiments.fig03_phase_geometry",
    "fig04": "repro.experiments.fig04_optimal_alloc",
    "fig05": "repro.experiments.fig05_fill_drain",
    "fig06": "repro.experiments.fig06_smoothing_phases",
    "fig07": "repro.experiments.fig07_double_backoff",
    "fig08": "repro.experiments.fig08_buffer_states",
    "fig09": "repro.experiments.fig09_state_order",
    "fig10": "repro.experiments.fig10_filling_steps",
    "fig11": "repro.experiments.fig11_trace_kmax2",
    "fig12": "repro.experiments.fig12_kmax_sweep",
    "fig13": "repro.experiments.fig13_cbr_step",
    "fig14": "repro.experiments.fig14_scenario2_geometry",
    "table1": "repro.experiments.table1_efficiency",
    "table2": "repro.experiments.table2_drop_causes",
    "multiflow-fairness": "repro.experiments.multiflow_fairness",
    "flock-scale": "repro.experiments.flock_scale",
    "ablation-allocators": "repro.experiments.ablation_allocators",
    "ablation-add-rules": "repro.experiments.ablation_add_rules",
    "ablation-static": "repro.experiments.ablation_static",
    "ablation-feedback": "repro.experiments.ablation_feedback",
    "ablation-transport": "repro.experiments.ablation_transport",
    "ablation-nonlinear": "repro.experiments.ablation_nonlinear",
    "ablation-retransmit": "repro.experiments.ablation_retransmit",
}

__all__ = ["EXPERIMENTS"]
