"""Figure 9: the buffer states ordered by total required buffering.

The same states as Figure 8, sorted the way the filling phase traverses
them. The interleaving of scenario-1 and scenario-2 states is parameter
dependent (the paper's example shows S1k1, S2k1, S2k2, S1k2, ...); the
experiment prints the realized order and flags where the raw per-layer
shares would have required draining a buffer mid-filling -- the
motivation for Figure 10's monotone path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_table
from repro.core.states import StateSequence


@dataclass
class Fig09Result:
    sequence: StateSequence

    def rows(self) -> list[tuple]:
        out = []
        previous = None
        for state in self.sequence:
            regression = ""
            if previous is not None:
                dips = [
                    f"L{i}"
                    for i, (a, b) in enumerate(zip(previous.shares,
                                                   state.shares))
                    if b < a - 1e-6
                ]
                regression = ",".join(dips)
            out.append((state.label(), round(state.total),
                        *(round(s) for s in state.shares), regression))
            previous = state
        return out

    def render(self) -> str:
        na = self.sequence.active_layers
        headers = ("state", "total", *(f"L{i}" for i in range(na)),
                   "raw share dips")
        return format_table(
            headers, self.rows(),
            title="Figure 9: states in increasing order of total "
            "buffering (bytes)")


def run(rate: float = 30_000.0, layer_rate: float = 6500.0,
        active_layers: int = 4, slope: float = 8000.0,
        k_max: int = 5) -> Fig09Result:
    return Fig09Result(StateSequence(rate, layer_rate, active_layers,
                                     slope, k_max))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
