"""Ablation: the optimal allocator vs section 2.3's strawmen.

Runs T1 with the three inter-layer buffer distributions -- optimal
(the paper's mechanism), equal share, base first -- and compares the
quantities the strawmen are predicted to hurt:

- equal share wastes buffered data in dropped layers (lower efficiency);
- base first concentrates buffering in too few layers, so upper layers
  are dropped despite plentiful total buffering (higher
  poor-distribution percentage, more drops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis import format_table
from repro.core.metrics import QualityMetrics
from repro.experiments.common import PaperWorkload, WorkloadConfig

ALLOCATORS = ("optimal", "equal_share", "base_first")


@dataclass
class AllocatorAblationResult:
    metrics: dict[str, QualityMetrics]
    quality: dict[str, dict] = field(default_factory=dict)

    def rows(self) -> list[tuple]:
        out = []
        for name in ALLOCATORS:
            m = self.metrics[name]
            q = self.quality.get(name, {})
            eff = m.buffering_efficiency()
            poor = m.poor_distribution_percent()
            out.append((
                name,
                len(m.drops),
                len(m.adds),
                None if eff is None else round(100 * eff, 2),
                None if poor is None else round(poor, 1),
                round(q.get("mean_layers", 0.0), 2),
                round(q.get("gap_bytes", 0.0)),
                m.stall_count,
                round(m.stall_time, 2),
            ))
        return out

    def render(self) -> str:
        return format_table(
            ("allocator", "drops", "adds", "efficiency %",
             "poor-distribution %", "mean layers", "gap bytes",
             "stalls", "stall time s"),
            self.rows(),
            title="Ablation: inter-layer buffer allocator (T1, pooled "
            "seeds)")


def run(seeds: Sequence[int] = (1, 2, 3),
        **overrides) -> AllocatorAblationResult:
    overrides.setdefault("k_max", 2)
    metrics: dict[str, QualityMetrics] = {}
    quality: dict[str, dict] = {}
    for allocator in ALLOCATORS:
        pooled = QualityMetrics()
        mean_layers = gaps = 0.0
        for seed in seeds:
            result = PaperWorkload(WorkloadConfig(
                allocator=allocator, seed=seed, **overrides)).run()
            pooled.drops.extend(result.metrics.drops)
            pooled.adds.extend(result.metrics.adds)
            pooled.stall_count += result.playout.stall_count
            pooled.stall_time += result.playout.stall_time
            summary = result.summary()
            mean_layers += summary["mean_layers"]
            gaps += summary["gap_bytes"]
        metrics[allocator] = pooled
        quality[allocator] = {
            "mean_layers": mean_layers / len(seeds),
            "gap_bytes": gaps / len(seeds),
        }
    return AllocatorAblationResult(metrics=metrics, quality=quality)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
