"""Figure 1: transmission rate of a single RAP flow.

One RAP source through a fixed-bandwidth bottleneck. The paper's figure
shows the characteristic AIMD sawtooth hunting around the link rate:
linear climbs, multiplicative halvings at each loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ascii_chart, format_kv
from repro.scenario import RapFlowSpec, Scenario, ScenarioConfig
from repro.sim.topology import DumbbellConfig
from repro.sim.trace import TimeSeries
from repro.telemetry import TelemetryBus, TransportRateProbe


@dataclass
class Fig01Result:
    rate: TimeSeries
    link_bandwidth: float
    backoffs: int
    mean_rate: float
    utilization: float

    def render(self) -> str:
        link = TimeSeries("link")
        for t in (self.rate.times[0], self.rate.times[-1]):
            link.record(t, self.link_bandwidth)
        out = ascii_chart(
            self.rate, title="Figure 1: RAP transmission rate (*) vs "
            "link bandwidth (o), bytes/s", overlay=link)
        out += format_kv({
            "link_bandwidth_Bps": self.link_bandwidth,
            "mean_rate_Bps": self.mean_rate,
            "utilization": self.utilization,
            "backoffs": self.backoffs,
        })
        return out


def run(link_bandwidth: float = 12_500.0, duration: float = 40.0,
        packet_size: int = 500, queue_packets: int = 12) -> Fig01Result:
    """Run the figure-1 scenario.

    Defaults put the link at 12.5 KB/s (the paper's axis tops at about
    14 KB/s) with a small drop-tail queue so losses come regularly.
    """
    scenario = Scenario(ScenarioConfig(
        flows=(RapFlowSpec(packet_size=packet_size, srtt_init=0.2,
                           start=0.0),),
        topology=DumbbellConfig(
            bottleneck_bandwidth=link_bandwidth,
            queue_capacity_packets=queue_packets,
        ),
        duration=duration,
    ))
    flow = scenario.flows[0]
    bus = TelemetryBus(scenario.sim)
    bus.subscribe(TransportRateProbe(flow.source, "rap_rate", period=0.05))
    scenario.run()

    rate = bus.tracer.get("rap_rate")
    return Fig01Result(
        rate=rate,
        link_bandwidth=link_bandwidth,
        backoffs=flow.source.stats.backoffs,
        mean_rate=rate.time_average(),
        utilization=(flow.sink.stats.bytes_received
                     / (link_bandwidth * duration)),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
