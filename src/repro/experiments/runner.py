"""Command-line entry point: regenerate any paper table or figure.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments fig11
    repro-experiments table1 --out /tmp/table1.txt
    repro-experiments all --out results/
"""

from __future__ import annotations

import argparse
import importlib
import pathlib
import sys

from repro.experiments import EXPERIMENTS


def render_experiment(name: str) -> str:
    module = importlib.import_module(EXPERIMENTS[name])
    result = module.run()
    if hasattr(result, "render"):
        return result.render()
    # table2 renders via a module-level function
    return module.render(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (see 'list'), 'list', or 'all'")
    parser.add_argument(
        "--out", default=None,
        help="write output to this file (or directory for 'all')")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, module in sorted(EXPERIMENTS.items()):
            print(f"{name:22s} {module}")
        return 0

    names = (sorted(EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("use 'repro-experiments list'", file=sys.stderr)
        return 2

    if args.experiment == "all" and args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            text = render_experiment(name)
            (out_dir / f"{name}.txt").write_text(text)
            print(f"wrote {out_dir / f'{name}.txt'}")
        return 0

    for name in names:
        text = render_experiment(name)
        if args.out:
            pathlib.Path(args.out).write_text(text)
            print(f"wrote {args.out}")
        else:
            print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
