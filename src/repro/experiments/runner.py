"""Command-line entry point and orchestration layer for the experiments.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments fig11
    repro-experiments table1 --out /tmp/table1.txt
    repro-experiments fig03 fig04 fig08          # several at once
    repro-experiments all --out results/ -j 4
    repro-experiments all --no-cache             # force re-runs
    repro-experiments bench --json timings.json  # timing manifest only

Three mechanisms sit behind the CLI (documented in docs/MECHANISM.md):

- **Parallel scheduling.** Multi-experiment runs dispatch cache misses to
  a ``ProcessPoolExecutor``; experiments are pure functions of their
  config and a fixed seed, so worker processes reproduce in-process
  results bit for bit.
- **Result caching.** Rendered text is memoized under ``.repro-cache/``,
  keyed by experiment name + config digest + the source digest of the
  modules the experiment imports (:mod:`repro.experiments.cache`).
  ``--no-cache`` bypasses it, ``--cache-dir`` relocates it.
- **Run manifests.** Every invocation records per-experiment wall time,
  cache hit/miss, seed and output digest; ``manifest.json`` lands next to
  the cache (or ``--out`` directory), and ``bench`` emits it on stdout
  for the benchmark trajectory.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import importlib
import inspect
import json
import os
import pathlib
import sys
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments import EXPERIMENTS
from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache

MANIFEST_SCHEMA = 1


# --------------------------------------------------------------- rendering

def render_result(module, result) -> str:
    """Normalize every experiment to one render protocol.

    In order of preference: the result object's ``render()`` method, the
    experiment module's ``render(result)`` function (table2 style), or
    the result itself when it already is the rendered string. Anything
    else (a plain dict, say) is a broken experiment module and raises
    ``TypeError`` with a message naming the module, instead of the
    ``AttributeError`` the old special-casing produced.
    """
    render = getattr(result, "render", None)
    if callable(render):
        return render()
    render = getattr(module, "render", None)
    if callable(render):
        return render(result)
    if isinstance(result, str):
        return result
    raise TypeError(
        f"{module.__name__}.run() returned {type(result).__name__!r}, "
        "which has no .render() method, no module-level render(result) "
        "exists, and it is not already a string")


def render_experiment(name: str, **overrides) -> str:
    """Run experiment ``name`` (uncached) and return its rendered text."""
    text, _ = _execute(name, overrides)
    return text


def _execute(name: str, overrides: dict) -> tuple[str, float]:
    """Worker body: import, run, render; returns (text, seconds).

    Module-level so it pickles for ``ProcessPoolExecutor`` workers.
    """
    start = time.perf_counter()
    module = importlib.import_module(EXPERIMENTS[name])
    result = module.run(**overrides)
    text = render_result(module, result)
    return text, time.perf_counter() - start


# ----------------------------------------------------------- seed plumbing

def seed_overrides(module, seed: Optional[int]) -> dict:
    """The override dict that applies ``--seed`` to ``module.run``.

    Experiments that take an explicit ``seed`` (or forward ``**overrides``
    into :class:`~repro.experiments.common.WorkloadConfig`) get
    ``{"seed": seed}``. Experiments pooling over a ``seeds`` sequence and
    purely analytic experiments take no seed; they get ``{}``.
    """
    if seed is None:
        return {}
    params = inspect.signature(module.run).parameters
    if "seeds" in params:
        return {}
    if "seed" in params or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in params.values()):
        return {"seed": seed}
    return {}


def effective_seed(module, overrides: dict):
    """The seed recorded in the manifest for one experiment run.

    An explicit override wins; otherwise the ``seed``/``seeds`` default
    declared by ``module.run``'s signature; ``None`` for experiments
    without a seed parameter (analytic figures, or ``**overrides``-style
    modules using the workload default).
    """
    if "seed" in overrides:
        return overrides["seed"]
    params = inspect.signature(module.run).parameters
    for key in ("seed", "seeds"):
        param = params.get(key)
        if param is not None and param.default is not inspect.Parameter.empty:
            default = param.default
            return list(default) if isinstance(default, (tuple, list)) \
                else default
    return None


# --------------------------------------------------------------- scheduler

@dataclass
class RunRecord:
    """Outcome of one experiment within a runner invocation."""

    name: str
    text: str
    seconds: float
    cache_hit: bool
    seed: object
    cache_key: Optional[str]

    @property
    def output_sha256(self) -> str:
        return hashlib.sha256(self.text.encode()).hexdigest()


def run_experiments(names: Sequence[str], *,
                    seed: Optional[int] = None,
                    jobs: int = 1,
                    cache: Optional[ResultCache] = None,
                    refresh: bool = False,
                    echo=None) -> list[RunRecord]:
    """Run ``names``, resolving cache hits and parallelizing the misses.

    Results come back in ``names`` order regardless of completion order.
    ``jobs > 1`` sends cache misses through a ``ProcessPoolExecutor``;
    ``jobs = 1`` runs them inline (identical output either way — that is
    what the determinism tests assert). ``refresh`` forces every
    experiment to re-run while still storing fresh cache entries (bench
    mode). ``echo``, when given, receives one progress line per finished
    experiment.
    """
    modules = {name: importlib.import_module(EXPERIMENTS[name])
               for name in names}
    applied = {name: seed_overrides(modules[name], seed) for name in names}
    keys: dict[str, Optional[str]] = {}
    records: dict[str, RunRecord] = {}

    def note(record: RunRecord) -> None:
        records[record.name] = record
        if echo is not None:
            status = "hit " if record.cache_hit else "miss"
            echo(f"{record.name:22s} {record.seconds:8.2f}s  cache {status}")

    misses: list[str] = []
    for name in names:
        key = None
        if cache is not None:
            key = cache.key(name, EXPERIMENTS[name], applied[name])
            start = time.perf_counter()
            text = None if refresh else cache.get(key)
            if text is not None:
                note(RunRecord(
                    name=name, text=text,
                    seconds=time.perf_counter() - start,
                    cache_hit=True,
                    seed=effective_seed(modules[name], applied[name]),
                    cache_key=key))
                continue
        keys[name] = key
        misses.append(name)

    def record_miss(name: str, text: str, seconds: float) -> None:
        if cache is not None:
            cache.put(keys[name], text)
        note(RunRecord(
            name=name, text=text, seconds=seconds, cache_hit=False,
            seed=effective_seed(modules[name], applied[name]),
            cache_key=keys[name]))

    if jobs > 1 and len(misses) > 1:
        workers = min(jobs, len(misses))
        with concurrent.futures.ProcessPoolExecutor(workers) as pool:
            futures = {
                pool.submit(_execute, name, applied[name]): name
                for name in misses
            }
            for future in concurrent.futures.as_completed(futures):
                text, seconds = future.result()
                record_miss(futures[future], text, seconds)
    else:
        for name in misses:
            text, seconds = _execute(name, applied[name])
            record_miss(name, text, seconds)

    return [records[name] for name in names]


def build_manifest(records: Sequence[RunRecord], *,
                   jobs: int, cache: Optional[ResultCache],
                   observability: Optional[dict] = None) -> dict:
    """The run manifest: schema documented in docs/MECHANISM.md.

    ``observability`` (when given and non-empty) attaches a recorder
    digest / metrics snapshot block, produced by
    :meth:`repro.scenario.Scenario.observability` — runs without
    instrumentation keep the historical manifest shape exactly.
    """
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "jobs": jobs,
        "cache_dir": None if cache is None else str(cache.root),
        "total_seconds": round(sum(r.seconds for r in records), 6),
        "cache_hits": sum(r.cache_hit for r in records),
        "cache_misses": sum(not r.cache_hit for r in records),
        "experiments": [
            {
                "name": r.name,
                "seconds": round(r.seconds, 6),
                "cache_hit": r.cache_hit,
                "seed": r.seed,
                "output_sha256": r.output_sha256,
                "cache_key": r.cache_key,
            }
            for r in records
        ],
    }
    if observability:
        manifest["observability"] = observability
    return manifest


# --------------------------------------------------------------------- CLI

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+", metavar="experiment",
        help="experiment names (see 'list'), 'list', 'all', or 'bench'")
    parser.add_argument(
        "--out", default=None,
        help="write output to this file (or directory for several)")
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for cache misses (default: CPU count)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the seed of every experiment that takes one")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely")
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"result cache location (default: {DEFAULT_CACHE_DIR}/)")
    parser.add_argument(
        "--manifest", default=None,
        help="also write the run manifest JSON to this path")
    parser.add_argument(
        "--json", default=None,
        help="('bench' only) write the timing manifest to this file "
             "instead of stdout")
    return parser


def _write_manifest(manifest: dict, args, out_dir) -> None:
    # Imported lazily: analysis pulls in numpy, which worker processes
    # that only run analytic experiments do not need.
    from repro.analysis.export import export_manifest
    targets = []
    if args.manifest:
        targets.append(pathlib.Path(args.manifest))
    elif out_dir is not None:
        targets.append(out_dir / "manifest.json")
    elif not args.no_cache:
        targets.append(pathlib.Path(args.cache_dir) / "manifest.json")
    for target in targets:
        export_manifest(manifest, target)


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    names = list(args.experiments)
    bench = names and names[0] == "bench"
    if bench:
        names = names[1:] or ["all"]

    if names == ["list"]:
        for name, module in sorted(EXPERIMENTS.items()):
            print(f"{name:22s} {module}")
        return 0

    if "all" in names:
        names = sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("use 'repro-experiments list'", file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    # bench measures real cost, so it never *reads* the cache — but it
    # still stores fresh entries, warming subsequent runs.
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if bench or len(names) > 1:
        def echo(line: str) -> None:
            print(line, file=sys.stderr)
    else:
        echo = None

    records = run_experiments(names, seed=args.seed, jobs=jobs,
                              cache=cache, refresh=bench, echo=echo)
    manifest = build_manifest(records, jobs=jobs, cache=cache)

    out_dir: Optional[pathlib.Path] = None
    if bench:
        payload = json.dumps(manifest, indent=2, sort_keys=True)
        if args.json:
            target = pathlib.Path(args.json)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(payload + "\n")
            print(f"wrote {target}")
        else:
            print(payload)
    elif args.out and len(names) > 1:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for record in records:
            target = out_dir / f"{record.name}.txt"
            target.write_text(record.text)
            print(f"wrote {target}")
    elif args.out:
        pathlib.Path(args.out).write_text(records[0].text)
        print(f"wrote {args.out}")
    else:
        for record in records:
            print(record.text)

    _write_manifest(manifest, args, out_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
