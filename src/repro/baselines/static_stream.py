"""No quality adaptation: a fixed-quality stream over RAP.

This is the situation the paper's introduction motivates against: stored
video "has an intrinsic transmission rate", so a non-adaptive server
simply streams its fixed layer set. Whenever the congestion-controlled
rate falls below that consumption rate for long, the receiver's playout
buffer drains and playback stalls. Comparing this against the quality
adapter quantifies what adaptation buys (fewer/no stalls at the cost of
variable quality).
"""

from __future__ import annotations

from typing import Optional

from repro.core.adapter import QualityAdapter
from repro.core.config import QAConfig


class FixedQualityAdapter(QualityAdapter):
    """A QualityAdapter with adaptation surgically removed.

    It streams a constant number of layers (``config.max_layers``),
    round-robining packets so every layer receives its consumption rate;
    it never adds, never drops, and ignores backoffs.
    """

    def __init__(self, config: QAConfig, now_fn, rate_fn, slope_fn,
                 start_time: float = 0.0, on_event=None) -> None:
        super().__init__(config, now_fn, rate_fn, slope_fn,
                         start_time=start_time, on_event=on_event)
        # Bring every layer up immediately: the quality is fixed.
        while self.active_layers < config.max_layers:
            self._activate_layer(start_time)

    def pick_layer(self, seq: int) -> Optional[dict]:
        """Round-robin: each layer gets an equal share of packets."""
        now = self.now_fn()
        self._advance_clocks_static(now)
        layer = seq % self.active_layers
        self.sent_bytes_per_layer[layer] += self.config.packet_size
        self._inflight[layer] += self.config.packet_size
        if self.config.feedback in ("send", "oracle"):
            self.buffers.deliver(layer, self.config.packet_size)
            self._start_consumption_if_due(layer)
        return {"layer": layer, "active": self.active_layers}

    def _advance_clocks_static(self, now: float) -> None:
        """Clock upkeep without the critical-situation machinery."""
        if not self.playout_started and now >= self.playout_start_time:
            self.playout_started = True
            self.metrics.startup_latency = self.config.startup_delay
            for layer in range(self.active_layers):
                self._start_consumption_if_due(layer)
        shortfalls = self.buffers.consume_until(now)
        if 0 in shortfalls:
            self.metrics.base_underflow_bytes += shortfalls[0]

    def tick(self) -> None:
        now = self.now_fn()
        self._advance_clocks_static(now)
        rate = self.rate_fn()
        gain = self.config.average_bandwidth_gain
        self.average_rate += gain * (rate - self.average_rate)

    def on_backoff(self, new_rate: float) -> None:
        """A non-adaptive server shrugs."""
        self._emit("backoff", rate=new_rate)
