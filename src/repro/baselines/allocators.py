"""Strawman inter-layer buffer allocators (section 2.3).

The paper motivates its optimal allocation with two simple schemes that
fail in instructive ways:

- **Equal share** ("Dropping layers with buffered data"): every active
  layer gets the same buffer target. When the highest layer is dropped
  after a backoff, its buffered data no longer assists recovery, so
  buffering efficiency suffers.
- **Base first** ("Insufficient distribution of buffered data"): all
  buffering concentrates in the base layer. With fewer buffering layers
  than the deficit needs (a layer can only be played from its own buffer
  at rate C), upper layers must be fed entirely from the network and get
  dropped even when total buffering was plentiful.

Both reuse the optimal policy's *total* requirement (the same state
ladder) and only change how it is distributed, so comparisons isolate the
distribution decision -- exactly the ablation Table 2 quantifies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import formulas
from repro.core.draining import DrainingPlanner, DrainPlan
from repro.core.filling import FillingDecision, FillingPolicy
from repro.core.formulas import SCENARIO_ONE, SCENARIO_TWO
from repro.core.states import StateSequence


class _RedistributedFillingPolicy(FillingPolicy):
    """Shares the optimal policy's ladder but redistributes each state's
    total across layers according to ``_distribute``."""

    def _distribute(self, total: float, active_layers: int) -> list[float]:
        raise NotImplementedError

    def choose(
        self,
        rate: float,
        buffers: Sequence[float],
        active_layers: int,
        slope: float,
        needs_floor: Optional[Sequence[bool]] = None,
        safety_levels: Optional[Sequence[float]] = None,
    ) -> FillingDecision:
        cfg = self.config
        na = active_layers
        buffers = list(buffers[:na])
        total = sum(buffers)
        consumption = na * cfg.layer_rate

        if needs_floor is None:
            needs_floor = [True] * na
        if safety_levels is None:
            safety_levels = buffers
        floors = [cfg.floor_bytes] * na
        floors[na - 1] = min(cfg.floor_bytes, float(cfg.packet_size))
        floors[0] = cfg.base_floor_bytes
        starving = [i for i in range(na)
                    if needs_floor[i] and safety_levels[i] < floors[i]]
        if starving:
            layer = min(starving, key=lambda i: safety_levels[i])
            return FillingDecision(layer, 0, 0, SCENARIO_ONE,
                                   maintenance=True)

        s1_k, req1 = self._first_unsatisfied(
            rate, consumption, slope, total, SCENARIO_ONE, cap=cfg.k_max)
        s2_k, req2 = self._first_unsatisfied(
            rate, consumption, slope, total, SCENARIO_TWO, cap=None)
        s1_pending = s1_k <= cfg.k_max
        if s1_pending and req1 <= req2:
            scenario, req = SCENARIO_ONE, req1
        else:
            scenario, req = SCENARIO_TWO, req2

        targets = self._distribute(req, na)
        for layer in range(na):
            if targets[layer] > buffers[layer] + formulas.EPSILON:
                return FillingDecision(layer, s1_k, s2_k, scenario)
        return FillingDecision(None, s1_k, s2_k, scenario)


class EqualShareFillingPolicy(_RedistributedFillingPolicy):
    """Every layer buffers ``total / na`` (section 2.3, first strawman)."""

    def _distribute(self, total: float, active_layers: int) -> list[float]:
        return [total / active_layers] * active_layers


class BaseFirstFillingPolicy(_RedistributedFillingPolicy):
    """All buffering goes to the base layer (second strawman)."""

    def _distribute(self, total: float, active_layers: int) -> list[float]:
        return [total] + [0.0] * (active_layers - 1)


class SimpleDrainingPlanner(DrainingPlanner):
    """Draining without the reverse-path targets.

    ``order="equal"`` spreads each period's deficit evenly over layers;
    ``order="bottom_up"`` drains the base first (the natural companion of
    the base-first allocator). The base stall-protection margin is still
    honoured -- the baselines are strawmen, not saboteurs.
    """

    def __init__(self, config, order: str = "equal") -> None:
        super().__init__(config)
        if order not in ("equal", "bottom_up", "top_down"):
            raise ValueError(f"unknown drain order {order!r}")
        self.order = order

    def plan(
        self,
        rate: float,
        buffers: Sequence[float],
        active_layers: int,
        period: float,
        sequence: StateSequence,
        base_protection: float = 0.0,
    ) -> DrainPlan:
        cfg = self.config
        na = active_layers
        consumption = na * cfg.layer_rate
        need = max(0.0, (consumption - rate) * period)
        levels = [max(0.0, b) for b in buffers[:na]]
        cap = cfg.layer_rate * period
        floor = cfg.base_floor_bytes + max(0.0, base_protection)
        available = [
            max(0.0, min(cap, levels[i] - (floor if i == 0 else 0.0)))
            for i in range(na)
        ]

        drain = [0.0] * na
        remaining = need
        if self.order == "equal":
            # Waterfill evenly across layers.
            active = list(range(na))
            while remaining > formulas.EPSILON and active:
                share = remaining / len(active)
                progressed = False
                for i in list(active):
                    take = min(share, available[i] - drain[i])
                    if take > formulas.EPSILON:
                        drain[i] += take
                        remaining -= take
                        progressed = True
                    if available[i] - drain[i] <= formulas.EPSILON:
                        active.remove(i)
                if not progressed:
                    break
        else:
            order = (range(na) if self.order == "bottom_up"
                     else range(na - 1, -1, -1))
            for i in order:
                if remaining <= formulas.EPSILON:
                    break
                take = min(available[i], remaining)
                drain[i] += take
                remaining -= take

        quotas = [max(0.0, cap - drain[i]) for i in range(na)]
        return DrainPlan(drain=drain, quotas=quotas, shortfall=remaining,
                         state_index=-1)
