"""Baselines the paper argues against (and one it implies).

- :mod:`repro.baselines.allocators` -- the two strawman inter-layer
  buffer distributions of section 2.3: *equal share* (every layer buffers
  the same amount; the top layer's buffering is wasted when it is
  dropped) and *base first* (everything in the base layer; too few
  buffering layers to cover a deep deficit). Selected via
  ``QAConfig(allocator=...)``.
- The *average bandwidth* add rule of section 3.1 lives in
  :mod:`repro.core.add_drop` (``QAConfig(add_rule="average_bandwidth")``).
- :mod:`repro.baselines.static_stream` -- no quality adaptation at all: a
  fixed-quality stream over the same congestion-controlled transport,
  the situation the paper's introduction motivates against.
"""

from repro.baselines.allocators import (
    BaseFirstFillingPolicy,
    EqualShareFillingPolicy,
    SimpleDrainingPlanner,
)
from repro.baselines.static_stream import FixedQualityAdapter

__all__ = [
    "EqualShareFillingPolicy",
    "BaseFirstFillingPolicy",
    "SimpleDrainingPlanner",
    "FixedQualityAdapter",
]
