"""Client-side playout engine.

The receiver buffers each layer's data and the decoder drains every active
layer at C. Two failure modes matter:

- **base-layer underflow**: playback cannot continue at all; the player
  *stalls* -- the clock pauses until the base layer holds data again.
  The paper's mechanism is designed to make this (close to) impossible;
  the stall counters are how we verify that.
- **enhancement-layer underflow**: the layer has a gap; quality silently
  degrades. The server should have dropped the layer before this happens;
  we count the bytes of gap per layer.

The playout engine also keeps the receiver's notion of which layers are
active in sync with the server: every data packet carries the server's
current active-layer count, so adds/drops propagate with one-way latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.buffers import LayerBufferSet


@dataclass
class PlayoutStats:
    """Receiver-side quality-of-experience counters."""

    stall_count: int = 0
    stall_time: float = 0.0
    gap_bytes_per_layer: dict[int, float] = field(default_factory=dict)
    played_bytes: float = 0.0
    startup_time: Optional[float] = None

    def gap_bytes(self, layer: int) -> float:
        return self.gap_bytes_per_layer.get(layer, 0.0)

    @property
    def total_gap_bytes(self) -> float:
        return sum(self.gap_bytes_per_layer.values())


class PlayoutBuffer:
    """Per-layer receive buffers plus the playout clock.

    Args:
        layer_rate: per-layer consumption C (bytes/s).
        max_layers: codec layer count.
        playout_start: absolute time playback should begin.
        resume_threshold: seconds of base-layer data required to leave a
            stall (small, to keep stalls short but avoid flapping).
    """

    def __init__(
        self,
        layer_rate: float,
        max_layers: int,
        playout_start: float,
        resume_threshold: float = 0.1,
        layer_start_threshold: float = 0.0,
        on_event=None,
    ) -> None:
        self.layer_rate = layer_rate
        self.max_layers = max_layers
        self.playout_start = playout_start
        self.resume_bytes = resume_threshold * layer_rate
        #: Bytes an enhancement layer must hold before its playout starts
        #: (mirrors the server's bootstrap cushion; base plays from the
        #: startup-delay buffer immediately).
        self.layer_start_bytes = layer_start_threshold
        self.buffers = LayerBufferSet(layer_rate, max_layers)
        self.stats = PlayoutStats()
        self.active_layers = 0
        self.playing = False
        self.stalled = False
        self._stall_began = 0.0
        self._last_advance = 0.0
        #: ``(time, kind, fields)`` QoE-event sink (RL007: ``None`` when
        #: nobody listens): ``playout_start``, ``stall_begin``, and
        #: ``stall_end`` (with the stall's ``duration``).
        self.on_event = on_event

    # ------------------------------------------------------------- arrival

    def on_packet(self, now: float, layer: int, size: int,
                  server_active: Optional[int] = None) -> None:
        """A media packet arrived."""
        self.advance(now)
        if server_active is not None:
            self._sync_active(now, server_active)
        if layer >= self.max_layers:
            return
        if not self.buffers.is_active(layer):
            self._activate_through(now, layer)
        self.buffers.deliver(layer, size)
        self._maybe_start_layer(now, layer)
        if self.stalled:
            self._maybe_resume(now)

    def _activate_through(self, now: float, layer: int) -> None:
        """Activate every inactive layer up to ``layer`` (ordered adds)."""
        for i in range(layer + 1):
            if not self.buffers.is_active(i):
                self.buffers.activate(i, now)
        self.active_layers = max(self.active_layers, layer + 1)

    def _maybe_start_layer(self, now: float, layer: int) -> None:
        """Start a layer's playout once it has its bootstrap cushion."""
        if not self.playing or self.stalled:
            return
        if self.buffers.is_consuming(layer):
            return
        threshold = 0.0 if layer == 0 else self.layer_start_bytes
        if self.buffers.delivered(layer) >= threshold:
            self.buffers.start_consuming(layer, now)

    def _sync_active(self, now: float, server_active: int) -> None:
        """Follow the server's drops (its adds arrive as data packets)."""
        while self.active_layers > max(1, server_active):
            layer = self.active_layers - 1
            if self.buffers.is_active(layer):
                self.buffers.deactivate(layer)
            self.active_layers -= 1

    # -------------------------------------------------------------- clock

    def advance(self, now: float) -> None:
        """Advance the playout clock to ``now``."""
        if now <= self._last_advance:
            return
        self._last_advance = now
        if not self.playing:
            if now < self.playout_start:
                return
            # Consumption clocks anchor at the scheduled start, so data
            # consumed between playout_start and now is charged in this
            # same advance.
            self._begin_playout(now)
            if self.stalled:
                return
        if self.stalled:
            self.buffers.pause(now)
            self._maybe_resume(now)
            return
        shortfalls = self.buffers.consume_until(now)
        for layer, nbytes in shortfalls.items():
            if layer == 0:
                self._begin_stall(now)
            else:
                self.stats.gap_bytes_per_layer[layer] = (
                    self.stats.gap_bytes_per_layer.get(layer, 0.0) + nbytes)
        played = sum(self.buffers.consumed(i)
                     for i in range(self.max_layers))
        self.stats.played_bytes = played

    def _begin_playout(self, now: float) -> None:
        self.playing = True
        start = min(now, self.playout_start)
        self.stats.startup_time = self.playout_start
        if self.on_event is not None:
            self.on_event(now, "playout_start", {})
        for i in range(self.max_layers):
            if self.buffers.is_active(i):
                self._maybe_start_layer(start, i)
        if self.buffers.level(0) <= 0:
            self._begin_stall(now)

    def _begin_stall(self, now: float) -> None:
        if self.stalled:
            return
        self.stalled = True
        self._stall_began = now
        self.stats.stall_count += 1
        self.buffers.pause(now)
        if self.on_event is not None:
            self.on_event(now, "stall_begin", {})

    def _maybe_resume(self, now: float) -> None:
        if not self.stalled:
            return
        if self.buffers.level(0) >= self.resume_bytes:
            self.stalled = False
            self.stats.stall_time += now - self._stall_began
            self.buffers.pause(now)  # clocks restart from `now`
            if self.on_event is not None:
                self.on_event(now, "stall_end",
                              {"duration": now - self._stall_began})

    # ------------------------------------------------------------ queries

    @property
    def stall_began(self) -> float:
        """When the current stall started (meaningful while stalled)."""
        return self._stall_began

    def level(self, layer: int) -> float:
        return self.buffers.level(layer)

    def levels(self) -> list[float]:
        return self.buffers.levels(self.active_layers)

    def total_buffered(self) -> float:
        return self.buffers.total(self.active_layers)
