"""Layered media model: the synthetic stand-in for a hierarchical codec.

The paper assumes a layered (hierarchically encoded) stored video with
linearly spaced layers: every layer consumes the same constant rate C and
an enhancement layer is only decodable when all lower layers are present.
:mod:`repro.media.stream` models the encoded object; :mod:`repro.media.
playout` models the client's playout engine (per-layer buffers, stall
handling, delivered-quality accounting).
"""

from repro.media.stream import LayeredStream
from repro.media.playout import PlayoutBuffer, PlayoutStats

__all__ = ["LayeredStream", "PlayoutBuffer", "PlayoutStats"]
