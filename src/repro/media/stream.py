"""The layered encoded video object stored at the server.

The paper's model (section 2): ``n`` layers, linearly spaced (each layer
has the same constant consumption rate C), with the hierarchical decoding
constraint that layer i is only useful when layers 0..i-1 are present.
Real codecs vary instantaneous rate; the paper absorbs that with a little
extra receiver buffering, and so do we.

A :class:`LayeredStream` mostly answers bookkeeping questions: how many
bytes of layer i exist up to playback position t, what total rate a given
quality (layer count) consumes, and whether a layer set satisfies the
decoding constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class LayeredStream:
    """A stored, layered-encoded video.

    Attributes:
        layer_rate: consumption rate C of every layer (bytes/s).
        n_layers: how many layers the encoder produced.
        duration: length of the clip in seconds (None = effectively
            unbounded, e.g. a long movie relative to the experiment).
        title: label used in traces.
    """

    layer_rate: float
    n_layers: int
    duration: Optional[float] = None
    title: str = "clip"

    def __post_init__(self) -> None:
        if self.layer_rate <= 0:
            raise ValueError("layer_rate must be positive")
        if self.n_layers < 1:
            raise ValueError("need at least a base layer")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive when given")

    def consumption_rate(self, layers: int) -> float:
        """Total decoder consumption at quality ``layers``."""
        if not 0 <= layers <= self.n_layers:
            raise ValueError(f"layers must be in 0..{self.n_layers}")
        return layers * self.layer_rate

    def layer_bytes(self, layer: int, position: float) -> float:
        """Bytes of ``layer`` covering playback positions [0, position]."""
        if not 0 <= layer < self.n_layers:
            raise ValueError(f"no such layer {layer}")
        if position < 0:
            raise ValueError("position cannot be negative")
        if self.duration is not None:
            position = min(position, self.duration)
        return self.layer_rate * position

    def total_bytes(self, layers: Optional[int] = None) -> Optional[float]:
        """Storage footprint of the first ``layers`` layers (None if
        unbounded)."""
        if self.duration is None:
            return None
        n = self.n_layers if layers is None else layers
        return self.consumption_rate(n) * self.duration

    def decodable_layers(self, present: Sequence[bool]) -> int:
        """Highest decodable quality given which layers are present.

        Hierarchical decoding: the answer is the length of the leading
        all-present prefix.
        """
        count = 0
        for i in range(min(len(present), self.n_layers)):
            if not present[i]:
                break
            count += 1
        return count

    def packets_per_second(self, packet_size: int, layers: int) -> float:
        """Packet rate needed to sustain quality ``layers``."""
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        return self.consumption_rate(layers) / packet_size
