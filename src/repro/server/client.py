"""The video client: RAP sink feeding the playout engine."""

from __future__ import annotations

from repro.core.config import QAConfig
from repro.media.playout import PlayoutBuffer
from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.packet import Packet
from repro.sim.trace import PeriodicSampler
from repro.transport.rap import RapSink


class VideoClient:
    """Receives a layered stream, ACKs it, buffers it, and plays it."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        server_name: str,
        flow_id: int,
        config: QAConfig,
        start: float = 0.0,
        clock_period: float = 0.05,
    ) -> None:
        self.sim = sim
        self.config = config
        self.playout = PlayoutBuffer(
            layer_rate=config.layer_rate,
            max_layers=config.max_layers,
            playout_start=start + config.startup_delay,
            layer_start_threshold=float(config.packet_size),
        )
        self.sink = RapSink(sim, host, server_name, flow_id,
                            on_data=self._on_data)
        # Keep the playout clock moving even when no packets arrive
        # (that is exactly when stalls must be detected).
        self._clock = PeriodicSampler(
            sim, clock_period, self.playout.advance, start=start)

    @property
    def stats(self):
        return self.playout.stats

    def stop(self) -> None:
        self._clock.stop()

    def _on_data(self, packet: Packet) -> None:
        layer = packet.layer
        if layer is None:
            return
        self.playout.on_packet(
            self.sim.now, layer, packet.size,
            server_active=packet.meta.get("active"),
        )
