"""The video server: quality adaptation riding on RAP.

The paper's target environment is a server playing back stored layered
video on demand. The server side is exactly two cooperating pieces: a RAP
source providing congestion-controlled transmission opportunities, and a
:class:`~repro.core.adapter.QualityAdapter` deciding which layer each
opportunity carries. ACKs feed the adapter's receiver-buffer estimate;
backoff notifications trigger the drop rule and freeze the draining path.

The wiring itself lives in the transport-agnostic :class:`~repro.server.
core.SessionCore`; this class binds it to the *simulated* RAP transport
and drives its ticks from the event loop. The asyncio service
(:mod:`repro.service`) binds the identical core to a real socket pacer.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adapter import QualityAdapter
from repro.core.config import QAConfig
from repro.media.stream import LayeredStream
from repro.server.core import SessionCore, SessionTape
from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.trace import PeriodicSampler
from repro.transport.rap import RapSource


class VideoServer:
    """Streams one layered clip to one client over simulated RAP."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        client_name: str,
        config: QAConfig,
        stream: Optional[LayeredStream] = None,
        start: float = 0.0,
        on_event=None,
        span_hook=None,
        adapter_cls: type[QualityAdapter] = QualityAdapter,
        transport_cls: type[RapSource] = RapSource,
        tape: Optional[SessionTape] = None,
    ) -> None:
        self.sim = sim
        self.core = SessionCore(
            config,
            now_fn=lambda: sim.now,
            stream=stream,
            start=start,
            on_event=on_event,
            span_hook=span_hook,
            adapter_cls=adapter_cls,
            tape=tape,
        )
        # Any AIMD transport with RAP's hook signature works here (the
        # paper's section-7 plan); see repro.transport.aimd. The
        # adapter's event hook is shared with the transport so backoffs,
        # losses and timeouts land in the same decision log as the
        # add/drop choices they caused.
        self.rap = transport_cls(
            sim, host, client_name,
            packet_size=self.core.config.packet_size,
            start=start,
            payload_picker=self.core.pick_payload,
            on_ack=self.core.on_ack,
            on_loss=self.core.on_loss,
            on_backoff=self.core.on_backoff,
            on_event=on_event,
        )
        self.core.bind_transport(self.rap)
        self._ticker = PeriodicSampler(
            sim, self.core.config.drain_period,
            lambda _now: self.core.tick(),
            start=start)

    @property
    def config(self) -> QAConfig:
        """The effective (possibly layer-narrowed) session config."""
        return self.core.config

    @property
    def stream(self) -> LayeredStream:
        return self.core.stream

    @property
    def adapter(self) -> QualityAdapter:
        return self.core.adapter

    @property
    def flow_id(self) -> int:
        return self.rap.flow_id

    @property
    def active_layers(self) -> int:
        return self.core.active_layers

    def stop(self) -> None:
        self.rap.stop()
        self._ticker.stop()
