"""The video server: quality adaptation riding on RAP.

The paper's target environment is a server playing back stored layered
video on demand. The server side is exactly two cooperating pieces: a RAP
source providing congestion-controlled transmission opportunities, and a
:class:`~repro.core.adapter.QualityAdapter` deciding which layer each
opportunity carries. ACKs feed the adapter's receiver-buffer estimate;
backoff notifications trigger the drop rule and freeze the draining path.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adapter import QualityAdapter
from repro.core.config import QAConfig
from repro.media.stream import LayeredStream
from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.trace import PeriodicSampler
from repro.transport.rap import RapSource


class VideoServer:
    """Streams one layered clip to one client over RAP."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        client_name: str,
        config: QAConfig,
        stream: Optional[LayeredStream] = None,
        start: float = 0.0,
        on_event=None,
        adapter_cls: type[QualityAdapter] = QualityAdapter,
        transport_cls: type[RapSource] = RapSource,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stream = stream or LayeredStream(
            layer_rate=config.layer_rate, n_layers=config.max_layers)
        if self.stream.n_layers < config.max_layers:
            # The codec produced fewer layers than the adapter would use.
            config = config.with_(max_layers=self.stream.n_layers)
            self.config = config

        # Any AIMD transport with RAP's hook signature works here (the
        # paper's section-7 plan); see repro.transport.aimd. The
        # adapter's event hook is shared with the transport so backoffs,
        # losses and timeouts land in the same decision log as the
        # add/drop choices they caused.
        self.rap = transport_cls(
            sim, host, client_name,
            packet_size=config.packet_size,
            start=start,
            payload_picker=self._pick_payload,
            on_ack=self._on_ack,
            on_loss=self._on_loss,
            on_backoff=self._on_backoff,
            on_event=on_event,
        )
        self.adapter = adapter_cls(
            config,
            now_fn=lambda: sim.now,
            rate_fn=lambda: self.rap.rate,
            slope_fn=lambda: self.rap.slope,
            start_time=start,
            on_event=on_event,
        )
        self._ticker = PeriodicSampler(
            sim, config.drain_period, lambda _now: self.adapter.tick(),
            start=start)

    @property
    def flow_id(self) -> int:
        return self.rap.flow_id

    @property
    def active_layers(self) -> int:
        return self.adapter.active_layers

    def stop(self) -> None:
        self.rap.stop()
        self._ticker.stop()

    # ------------------------------------------------------------- wiring

    def _pick_payload(self, seq: int) -> Optional[dict]:
        return self.adapter.pick_layer(seq)

    def _on_ack(self, seq: int, meta: dict, size: int) -> None:
        layer = meta.get("layer")
        if layer is not None:
            self.adapter.on_delivered(layer, size)

    def _on_loss(self, seq: int, meta: dict, size: int) -> None:
        layer = meta.get("layer")
        if layer is not None:
            self.adapter.on_lost(layer, size)

    def _on_backoff(self, new_rate: float) -> None:
        self.adapter.on_backoff(new_rate)
