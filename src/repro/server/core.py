"""The transport-agnostic session core.

The paper's server is two cooperating pieces: a congestion controller
providing transmission opportunities, and a :class:`~repro.core.adapter.
QualityAdapter` deciding which layer each opportunity carries. The
*wiring* between them — payload picking, ACK/loss/backoff feedback into
the receiver-buffer estimate, stream narrowing, periodic ticks — is
identical whether the controller is the simulated :class:`~repro.
transport.rap.RapSource` or a real socket pacer. :class:`SessionCore`
is that wiring, extracted so both backends drive byte-identical adapter
code:

- the **packet simulator** (:class:`~repro.server.server.VideoServer`)
  binds a ``RapSource`` and drives ticks from a ``PeriodicSampler``;
- the **asyncio service** (:mod:`repro.service`) binds a wall-clock
  RAP pacer and drives ticks from event-loop timers.

A :class:`SessionTransport` is anything exposing the two live numbers
the adapter reads between feedback events: the current transmission
``rate`` and the AIMD ``slope`` estimate. Everything else reaches the
core through explicit calls (:meth:`SessionCore.pick_payload`,
:meth:`~SessionCore.on_ack`, :meth:`~SessionCore.on_loss`,
:meth:`~SessionCore.on_backoff`, :meth:`~SessionCore.tick`).

The core can also run against a :class:`SessionTape`: recording mode
captures every boundary crossing (driver calls plus each ``now``/
``rate``/``slope`` read), and :meth:`SessionCore.replay` re-drives a
fresh core from the tape through a fake transport. Because the adapter
is a pure function of those input streams, a replay reproduces the
original decision log bit for bit — the equivalence proof the
differential tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.core.adapter import QualityAdapter
from repro.core.config import QAConfig
from repro.media.stream import LayeredStream
from repro.telemetry.tracing import SpanHook

#: ``(time, kind, fields)`` decision-record sink (RL007: ``None`` when
#: nobody is recording).
EventHook = Callable[[float, str, dict[str, object]], None]


def _tee_decision_spans(on_event: Optional[EventHook],
                        span_hook: SpanHook) -> EventHook:
    """Mirror adapter decision events into instant spans.

    The adapter keeps seeing exactly one hook (hook *presence* changes
    its clock-read count, which the session tape pins), so enabling
    spans alongside a recorder does not perturb taped replays of the
    same wiring.
    """
    def _hook(time: float, kind: str, fields: dict[str, object]) -> None:
        if on_event is not None:
            on_event(time, kind, fields)
        span_hook(time, time, f"qa.{kind}", fields)
    return _hook


@runtime_checkable
class SessionTransport(Protocol):
    """What the session core reads from a congestion controller.

    Both the simulated :class:`~repro.transport.rap.RapSource` and the
    service's wall-clock pacer satisfy this structurally; the core never
    imports either.
    """

    @property
    def rate(self) -> float:
        """Current transmission rate in bytes/s."""
        ...

    @property
    def slope(self) -> float:
        """Estimated AIMD additive-increase slope S in bytes/s^2."""
        ...


# --------------------------------------------------------------- taping


@dataclass
class SessionTape:
    """A recorded session: driver calls plus every transport read.

    ``calls`` holds the boundary crossings in order — ``("pick", seq)``,
    ``("ack", seq, layer, size)``, ``("loss", seq, layer, size)``,
    ``("backoff", new_rate)`` and ``("tick",)`` — while ``clock``,
    ``rates`` and ``slopes`` hold the values each read returned, in
    read order. Replaying the tape through :meth:`SessionCore.replay`
    reproduces the adapter's decisions exactly.
    """

    calls: list[tuple] = field(default_factory=list)
    clock: list[float] = field(default_factory=list)
    rates: list[float] = field(default_factory=list)
    slopes: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.calls)


class _TapeCursor:
    """Replays one recorded value stream, failing loudly on exhaustion."""

    def __init__(self, values: list[float], name: str) -> None:
        self._values = values
        self._name = name
        self._next = 0

    def next(self) -> float:
        if self._next >= len(self._values):
            raise IndexError(
                f"session tape exhausted: {self._name} stream has only "
                f"{len(self._values)} values; the replay diverged from "
                f"the recording")
        value = self._values[self._next]
        self._next += 1
        return value


class TapeReplayTransport:
    """A fake :class:`SessionTransport` replaying a recorded tape."""

    def __init__(self, tape: SessionTape) -> None:
        self._rates = _TapeCursor(tape.rates, "rate")
        self._slopes = _TapeCursor(tape.slopes, "slope")

    @property
    def rate(self) -> float:
        return self._rates.next()

    @property
    def slope(self) -> float:
        return self._slopes.next()


# ----------------------------------------------------------------- core


class SessionCore:
    """Adapter + feedback wiring, independent of transport and clock.

    Args:
        config: the requested :class:`~repro.core.config.QAConfig`. When
            the stream carries fewer layers than ``config.max_layers``
            the core narrows a *local copy* (``with_``); the caller's
            object is never rebound or mutated. The effective config is
            :attr:`config`, the original stays :attr:`requested_config`.
        now_fn: the session clock (simulation time or a wall-clock
            offset — the core does not care, it only needs monotony).
        transport: the congestion controller; may be bound later via
            :meth:`bind_transport` when construction order demands it
            (the transport usually needs the core's callbacks first).
        stream: the stored clip; defaults to one matching the config.
        start: session start on the ``now_fn`` clock.
        on_event: decision-record sink shared with the transport, or
            ``None`` (RL007 discipline: no record is built).
        span_hook: tracing sink from :meth:`~repro.telemetry.tracing.
            SpanRecorder.span_hook`, or ``None`` (same RL007
            discipline). When bound, every :meth:`tick` records a
            ``qa.tick`` span on the *raw* clock (outside the tape, so
            taped replays stay byte-identical) and every adapter
            decision event is mirrored as an instant ``qa.<kind>`` span.
        adapter_cls: the adapter implementation (ablations override).
        tape: optional :class:`SessionTape` to record into.
    """

    def __init__(
        self,
        config: QAConfig,
        now_fn: Callable[[], float],
        transport: Optional[SessionTransport] = None,
        stream: Optional[LayeredStream] = None,
        start: float = 0.0,
        on_event: Optional[EventHook] = None,
        span_hook: Optional[SpanHook] = None,
        adapter_cls: type[QualityAdapter] = QualityAdapter,
        tape: Optional[SessionTape] = None,
    ) -> None:
        self.requested_config = config
        self.stream = stream or LayeredStream(
            layer_rate=config.layer_rate, n_layers=config.max_layers)
        # The codec produced fewer layers than the adapter would use:
        # narrow a local copy; never touch the caller's config object.
        effective = config
        if self.stream.n_layers < config.max_layers:
            effective = config.with_(max_layers=self.stream.n_layers)
        self.config = effective
        self._transport = transport
        self.tape = tape
        self.span_hook = span_hook
        #: Span timestamps read the raw clock, never the taped wrapper:
        #: tracing must not perturb the recorded clock stream.
        self._span_now = now_fn
        if span_hook is not None:
            on_event = _tee_decision_spans(on_event, span_hook)

        if tape is not None:
            now_fn = self._taped(now_fn, tape.clock)
            rate_fn = self._taped(self._transport_rate, tape.rates)
            slope_fn = self._taped(self._transport_slope, tape.slopes)
        else:
            rate_fn = self._transport_rate
            slope_fn = self._transport_slope
        self.adapter = adapter_cls(
            effective,
            now_fn=now_fn,
            rate_fn=rate_fn,
            slope_fn=slope_fn,
            start_time=start,
            on_event=on_event,
        )

    @staticmethod
    def _taped(fn: Callable[[], float],
               log: list[float]) -> Callable[[], float]:
        def wrapper() -> float:
            value = fn()
            log.append(value)
            return value
        return wrapper

    def _transport_rate(self) -> float:
        assert self._transport is not None, "transport not bound yet"
        return self._transport.rate

    def _transport_slope(self) -> float:
        assert self._transport is not None, "transport not bound yet"
        return self._transport.slope

    def bind_transport(self, transport: SessionTransport) -> None:
        """Late-bind the controller (it usually needs our callbacks)."""
        self._transport = transport

    @property
    def transport(self) -> Optional[SessionTransport]:
        return self._transport

    @property
    def active_layers(self) -> int:
        return self.adapter.active_layers

    # --------------------------------------------------- transport-facing

    def pick_payload(self, seq: int) -> Optional[dict]:
        """Assign the next transmission opportunity to a layer."""
        if self.tape is not None:
            self.tape.calls.append(("pick", seq))
        return self.adapter.pick_layer(seq)

    def on_ack(self, seq: int, meta: dict, size: int) -> None:
        """The controller confirmed delivery of a data packet."""
        layer = meta.get("layer")
        if self.tape is not None:
            self.tape.calls.append(("ack", seq, layer, size))
        if layer is not None:
            self.adapter.on_delivered(layer, size)

    def on_loss(self, seq: int, meta: dict, size: int) -> None:
        """The controller declared a data packet lost."""
        layer = meta.get("layer")
        if self.tape is not None:
            self.tape.calls.append(("loss", seq, layer, size))
        if layer is not None:
            self.adapter.on_lost(layer, size)

    def on_backoff(self, new_rate: float) -> None:
        """The controller halved its rate."""
        if self.tape is not None:
            self.tape.calls.append(("backoff", new_rate))
        self.adapter.on_backoff(new_rate)

    def tick(self) -> None:
        """Periodic housekeeping; drive every ``config.drain_period``."""
        if self.tape is not None:
            self.tape.calls.append(("tick",))
        span = self.span_hook
        if span is None:
            self.adapter.tick()
            return
        t0 = self._span_now()
        self.adapter.tick()
        span(t0, self._span_now(), "qa.tick",
             {"active": self.adapter.active_layers})

    # -------------------------------------------------------------- replay

    @classmethod
    def replay(
        cls,
        tape: SessionTape,
        config: QAConfig,
        stream: Optional[LayeredStream] = None,
        start: float = 0.0,
        on_event: Optional[EventHook] = None,
        adapter_cls: type[QualityAdapter] = QualityAdapter,
    ) -> "SessionCore":
        """Re-drive a fresh core from a tape through a fake transport.

        The replayed adapter sees exactly the recorded ``now``/``rate``/
        ``slope`` streams and the recorded feedback sequence, so its
        decision log is bit-identical to the original's — independent of
        which transport produced the tape.

        ``on_event`` hook-presence must match the recording: the adapter
        reads the clock once per emitted event, so replaying a hooked
        recording without a hook (or vice versa) misaligns the taped
        clock stream and the replay fails loudly on divergence.
        """
        clock = _TapeCursor(tape.clock, "clock")
        core = cls(
            config,
            now_fn=clock.next,
            transport=TapeReplayTransport(tape),
            stream=stream,
            start=start,
            on_event=on_event,
            adapter_cls=adapter_cls,
        )
        for entry in tape.calls:
            kind = entry[0]
            if kind == "pick":
                core.pick_payload(entry[1])
            elif kind == "ack":
                core.on_ack(entry[1], {"layer": entry[2]}, entry[3])
            elif kind == "loss":
                core.on_loss(entry[1], {"layer": entry[2]}, entry[3])
            elif kind == "backoff":
                core.on_backoff(entry[1])
            elif kind == "tick":
                core.tick()
            else:  # pragma: no cover - tape corruption guard
                raise ValueError(f"unknown tape entry {entry!r}")
        return core
