"""One quality-adaptive streaming session with full instrumentation.

:class:`StreamingSession` builds a :class:`~repro.server.server.
VideoServer` / :class:`~repro.server.client.VideoClient` pair on a
dumbbell slot and records everything the paper's figures plot:

- ``rate``            -- RAP transmission rate (bytes/s)
- ``consumption``     -- na * C (bytes/s)
- ``layers``          -- number of active layers
- ``send_rate_L{i}``  -- per-layer bandwidth share (bytes/s)
- ``drain_rate_L{i}`` -- per-layer buffer drain rate at the receiver
- ``buffer_L{i}``     -- per-layer buffered bytes at the receiver
- ``buffer_est_L{i}`` -- the server's estimate of the same
- ``total_buffer``    -- sum of receiver buffers

plus an event log (add/drop/backoff/playout events from the adapter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import QAConfig
from repro.core.metrics import QualityMetrics
from repro.media.playout import PlayoutStats
from repro.media.stream import LayeredStream
from repro.server.client import VideoClient
from repro.server.server import VideoServer
from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.trace import PeriodicSampler, Tracer


@dataclass
class SessionResult:
    """Everything an experiment needs after the run."""

    tracer: Tracer
    metrics: QualityMetrics
    playout: PlayoutStats
    duration: float

    def summary(self) -> dict:
        out = self.metrics.summary()
        out.update(
            stalls_receiver=self.playout.stall_count,
            stall_time_receiver=self.playout.stall_time,
            gap_bytes=self.playout.total_gap_bytes,
            mean_layers=self.tracer.get("layers").time_average(),
            mean_rate=self.tracer.get("rate").time_average(),
        )
        return out


class StreamingSession:
    """Server + client + tracing on one source/sink host pair."""

    def __init__(
        self,
        sim: Simulator,
        server_host: Host,
        client_host: Host,
        config: QAConfig,
        stream: Optional[LayeredStream] = None,
        start: float = 0.0,
        sample_period: float = 0.1,
        adapter_cls=None,
        transport_cls=None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.tracer = Tracer()
        self.sample_period = sample_period
        self._start = start

        from repro.core.adapter import QualityAdapter
        from repro.transport.rap import RapSource

        self.server = VideoServer(
            sim, server_host, client_host.name, config, stream=stream,
            start=start,
            on_event=lambda t, kind, f: self.tracer.log_event(t, kind, **f),
            adapter_cls=adapter_cls or QualityAdapter,
            transport_cls=transport_cls or RapSource)
        self.client = VideoClient(
            sim, client_host, server_host.name, self.server.flow_id,
            config, start=start)

        self._last_sent = [0.0] * config.max_layers
        self._last_consumed = [0.0] * config.max_layers
        self._last_delivered = [0.0] * config.max_layers
        self._sampler = PeriodicSampler(sim, sample_period, self._sample,
                                        start=start)

    # ------------------------------------------------------------ sampling

    def _sample(self, now: float) -> None:
        cfg = self.config
        adapter = self.server.adapter
        playout = self.client.playout
        playout.advance(now)

        self.tracer.record("rate", now, self.server.rap.rate)
        self.tracer.record("consumption", now, adapter.consumption)
        self.tracer.record("layers", now, adapter.active_layers)
        self.tracer.record("total_buffer", now, playout.total_buffered())
        self.tracer.record("srtt", now, self.server.rap.srtt)

        dt = self.sample_period
        for i in range(cfg.max_layers):
            sent = adapter.sent_bytes_per_layer[i]
            self.tracer.record(f"send_rate_L{i}", now,
                               (sent - self._last_sent[i]) / dt)
            self._last_sent[i] = sent

            consumed = playout.buffers.consumed(i)
            delivered = playout.buffers.delivered(i)
            drain = max(0.0, (consumed - self._last_consumed[i])
                        - (delivered - self._last_delivered[i])) / dt
            self.tracer.record(f"drain_rate_L{i}", now, drain)
            self._last_consumed[i] = consumed
            self._last_delivered[i] = delivered

            self.tracer.record(f"buffer_L{i}", now, playout.level(i))
            self.tracer.record(f"buffer_est_L{i}", now,
                               adapter.buffers.level(i))

    # ------------------------------------------------------------- results

    def result(self) -> SessionResult:
        return SessionResult(
            tracer=self.tracer,
            metrics=self.server.adapter.metrics,
            playout=self.client.playout.stats,
            duration=self.sim.now - self._start,
        )

    def stop(self) -> None:
        self.server.stop()
        self.client.stop()
        self._sampler.stop()
