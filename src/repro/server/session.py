"""One quality-adaptive streaming session.

:class:`StreamingSession` builds a :class:`~repro.server.server.
VideoServer` / :class:`~repro.server.client.VideoClient` pair on a
dumbbell slot. Instrumentation rides on a :class:`~repro.telemetry.
TelemetryBus`: by default the session creates its own (enabled) bus and
subscribes a :class:`~repro.telemetry.SessionProbe` recording everything
the paper's figures plot:

- ``rate``            -- RAP transmission rate (bytes/s)
- ``consumption``     -- na * C (bytes/s)
- ``layers``          -- number of active layers
- ``send_rate_L{i}``  -- per-layer bandwidth share (bytes/s)
- ``drain_rate_L{i}`` -- per-layer buffer drain rate at the receiver
- ``buffer_L{i}``     -- per-layer buffered bytes at the receiver
- ``buffer_est_L{i}`` -- the server's estimate of the same
- ``total_buffer``    -- sum of receiver buffers

plus an event log (add/drop/backoff/playout events from the adapter).
Pass ``telemetry=TelemetryBus(sim, enabled=False)`` to run headless: no
samplers are scheduled, no events are logged, and the simulation pays
near-zero tracing cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import QAConfig
from repro.core.metrics import QualityMetrics
from repro.media.playout import PlayoutStats
from repro.media.stream import LayeredStream
from repro.server.client import VideoClient
from repro.server.server import VideoServer
from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.trace import Tracer
from repro.telemetry import SessionProbe, TelemetryBus


@dataclass
class SessionResult:
    """Everything an experiment needs after the run.

    ``telemetry_enabled`` records whether the session's bus sampled the
    trace series. Downstream reports branch on it instead of catching
    ``KeyError``: a missing ``layers``/``rate`` series on an
    instrumented run is a real error and raises, while a headless run
    says so explicitly.
    """

    tracer: Tracer
    metrics: QualityMetrics
    playout: PlayoutStats
    duration: float
    telemetry_enabled: bool = True

    def summary(self) -> dict:
        out = self.metrics.summary()
        out.update(
            stalls_receiver=self.playout.stall_count,
            stall_time_receiver=self.playout.stall_time,
            gap_bytes=self.playout.total_gap_bytes,
        )
        if self.telemetry_enabled:
            # A KeyError here is a genuine bug (instrumented run with a
            # missing series), not a disabled-telemetry artifact.
            out["mean_layers"] = self.tracer.get("layers").time_average()
            out["mean_rate"] = self.tracer.get("rate").time_average()
        else:
            # Mark the omission explicitly so consumers can distinguish
            # "telemetry off" from "series lost". (Instrumented runs
            # keep their exact historical key set.)
            out["telemetry_enabled"] = False
        return out


class StreamingSession:
    """Server + client + telemetry on one source/sink host pair."""

    def __init__(
        self,
        sim: Simulator,
        server_host: Host,
        client_host: Host,
        config: QAConfig,
        stream: Optional[LayeredStream] = None,
        start: float = 0.0,
        sample_period: float = 0.1,
        adapter_cls=None,
        transport_cls=None,
        telemetry: Optional[TelemetryBus] = None,
        span_hook=None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.telemetry = telemetry if telemetry is not None \
            else TelemetryBus(sim)
        self.tracer = self.telemetry.tracer
        self.sample_period = sample_period
        self._start = start

        from repro.core.adapter import QualityAdapter
        from repro.transport.rap import RapSource

        self.server = VideoServer(
            sim, server_host, client_host.name, config, stream=stream,
            start=start,
            on_event=self.telemetry.event_hook(),
            span_hook=span_hook,
            adapter_cls=adapter_cls or QualityAdapter,
            transport_cls=transport_cls or RapSource)
        self.client = VideoClient(
            sim, client_host, server_host.name, self.server.flow_id,
            config, start=start)

        self._probe = SessionProbe(self.server, self.client,
                                   period=sample_period)
        self._sampler = self.telemetry.subscribe(self._probe, start=start)

    # ------------------------------------------------------------- results

    def result(self) -> SessionResult:
        return SessionResult(
            tracer=self.tracer,
            metrics=self.server.adapter.metrics,
            playout=self.client.playout.stats,
            duration=self.sim.now - self._start,
            telemetry_enabled=self.telemetry.enabled,
        )

    def stop(self) -> None:
        self.server.stop()
        self.client.stop()
        if self._sampler is not None:
            self._sampler.stop()
