"""End-to-end streaming: session core, video server, client, wiring.

- :class:`~repro.server.core.SessionCore` -- the transport-agnostic
  adapter wiring (payload picking, feedback, ticks) shared by the packet
  simulator and the asyncio service, with tape record/replay.
- :class:`~repro.server.server.VideoServer` -- a simulated RAP source
  whose packets are scheduled by the core's
  :class:`~repro.core.adapter.QualityAdapter`.
- :class:`~repro.server.client.VideoClient` -- a RAP sink feeding a
  :class:`~repro.media.playout.PlayoutBuffer`.
- :class:`~repro.server.session.StreamingSession` -- builds both ends on a
  dumbbell slot and records every time series the paper's figures plot.
"""

from repro.server.core import (
    SessionCore,
    SessionTape,
    SessionTransport,
    TapeReplayTransport,
)
from repro.server.server import VideoServer
from repro.server.client import VideoClient
from repro.server.session import StreamingSession, SessionResult

__all__ = [
    "SessionCore",
    "SessionTape",
    "SessionTransport",
    "TapeReplayTransport",
    "VideoServer",
    "VideoClient",
    "StreamingSession",
    "SessionResult",
]
