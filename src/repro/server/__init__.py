"""End-to-end streaming: video server, client, and session wiring.

- :class:`~repro.server.server.VideoServer` -- a RAP source whose packets
  are scheduled by a :class:`~repro.core.adapter.QualityAdapter`.
- :class:`~repro.server.client.VideoClient` -- a RAP sink feeding a
  :class:`~repro.media.playout.PlayoutBuffer`.
- :class:`~repro.server.session.StreamingSession` -- builds both ends on a
  dumbbell slot and records every time series the paper's figures plot.
"""

from repro.server.server import VideoServer
from repro.server.client import VideoClient
from repro.server.session import StreamingSession, SessionResult

__all__ = ["VideoServer", "VideoClient", "StreamingSession", "SessionResult"]
