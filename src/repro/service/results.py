"""Fold fleet outcomes into the simulator's result shapes.

A service run should land in the exact report path a simulated scenario
uses: :func:`fleet_result` builds a
:class:`~repro.scenario.result.ScenarioResult` (per-flow
:class:`~repro.scenario.result.FlowResult` rows, Jain fairness over
mean delivered rates) from :class:`~repro.service.client.
LoadSessionResult` objects, and :func:`render_fleet_report` renders it
with the same :mod:`repro.analysis.report` helpers the figures use.

Fleet percentiles (per-session rate, stall time, startup latency, the
server's smoothed RTT) come from the shared
:class:`~repro.telemetry.digest.QuantileDigest` — the one percentile
implementation every report path in this repo quotes — so digests from
separate fleets (or separate hosts) merge exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import format_kv, format_table
from repro.scenario.result import FlowResult, ScenarioResult
from repro.service.client import LoadSessionResult
from repro.sim.flowmon import jain_index
from repro.telemetry.digest import QuantileDigest, digest_of


def fleet_digests(results: Sequence[LoadSessionResult]
                  ) -> dict[str, QuantileDigest]:
    """Per-metric quantile digests over the fleet's successful sessions.

    Keys: ``rate`` (mean goodput, bytes/s), ``stall_time`` (seconds per
    session), ``startup`` (startup latency, seconds), ``srtt`` (the
    server pacer's final smoothed RTT, seconds). Digests over the same
    metric merge exactly across fleets.
    """
    ok = [r for r in results if r.ok]
    return {
        "rate": digest_of(r.mean_rate for r in ok),
        "stall_time": digest_of(r.playout.stall_time for r in ok),
        "startup": digest_of(
            r.playout.startup_time for r in ok
            if r.playout.startup_time is not None),
        "srtt": digest_of(
            float(r.server_summary["srtt"]) for r in ok
            if "srtt" in r.server_summary),
    }


def fleet_result(results: Sequence[LoadSessionResult],
                 duration: float) -> ScenarioResult:
    """A :class:`ScenarioResult` over the fleet's successful sessions.

    Failed sessions (handshake timeouts, rejections) are excluded from
    the flow rows — report them from the raw results — and there is no
    instrumented bottleneck on a real loopback, so ``link_utilization``
    is empty.
    """
    ok = [r for r in results if r.ok]
    total_bytes = sum(r.bytes_received for r in ok)
    flows = []
    for index, r in enumerate(ok):
        flows.append(FlowResult(
            index=index,
            kind="qa",
            label=r.label,
            flow_id=r.session_id,
            start=0.0,
            bytes_delivered=r.bytes_received,
            mean_rate=r.mean_rate,
            share=(r.bytes_received / total_bytes
                   if total_bytes > 0 else 0.0),
            session=r.to_session_result(),
        ))
    return ScenarioResult(
        flows=flows,
        duration=duration,
        fairness=jain_index([f.mean_rate for f in flows]),
        link_utilization=[],
    )


def fleet_summary(results: Sequence[LoadSessionResult],
                  scenario: ScenarioResult) -> dict:
    """Aggregate fleet numbers for the report header."""
    ok = [r for r in results if r.ok]
    failed = [r for r in results if not r.ok]
    stalls = sum(r.playout.stall_count for r in ok)
    return {
        "sessions": len(results),
        "completed": len(ok),
        "failed": len(failed),
        "fairness": scenario.fairness,
        "total_bytes": sum(r.bytes_received for r in ok),
        "mean_rate": (sum(r.mean_rate for r in ok) / len(ok)
                      if ok else 0.0),
        "stalls": stalls,
        "dropped_random": sum(r.dropped_random for r in ok),
        "dropped_backlog": sum(r.dropped_backlog for r in ok),
        "percentiles": {
            name: digest.summary()
            for name, digest in fleet_digests(results).items()
        },
    }


def render_fleet_report(results: Sequence[LoadSessionResult],
                        duration: float,
                        title: str = "service load report",
                        scenario: Optional[ScenarioResult] = None,
                        ) -> str:
    """The per-session QoE table plus fleet aggregates, as plain text."""
    if scenario is None:
        scenario = fleet_result(results, duration)
    summary = fleet_summary(results, scenario)
    percentiles = summary.pop("percentiles")
    sections = [format_kv(summary, title=title)]
    sections.append(format_table(
        ["metric", "n", "mean", "p50", "p90", "p99", "max"],
        [
            [name, int(block["count"]), block["mean"], block["p50"],
             block["p90"], block["p99"], block["max"]]
            for name, block in percentiles.items()
        ],
        title="fleet percentiles (quantile digest)"))
    rows = []
    by_label = {r.label: r for r in results if r.ok}
    for flow in scenario.flows:
        raw = by_label[flow.label]
        summary = flow.session.summary() if flow.session else {}
        rows.append([
            flow.label,
            flow.mean_rate,
            flow.mean_layers(),
            summary.get("adds"),
            summary.get("drops"),
            raw.playout.stall_count,
            raw.playout.stall_time,
            raw.playout.total_gap_bytes,
        ])
    sections.append(format_table(
        ["session", "rate B/s", "layers", "adds", "drops",
         "stalls", "stall s", "gap B"],
        rows, title="per-session QoE"))
    failed = [r for r in results if not r.ok]
    if failed:
        sections.append(format_table(
            ["session", "error"],
            [[r.label, r.error] for r in failed],
            title="failed sessions"))
    return "\n".join(sections)
