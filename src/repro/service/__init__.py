"""The asyncio layered-streaming service.

The discrete-event simulator answers the paper's questions; this package
makes "heavy traffic" a benchmark we can *run*: a real UDP server
streaming stored layered video to many concurrent unicast clients, with
the exact same :class:`~repro.server.core.SessionCore` (the paper's
quality adapter plus feedback wiring) driving every session that drives
the simulated one — only the congestion controller's clock differs
(event-loop wall time instead of simulation time).

Layer map::

    repro.core.adapter.QualityAdapter      the paper's mechanism
    repro.server.core.SessionCore          transport-agnostic wiring
      |                      |
    repro.server (simulated) repro.service (this package)
      RapSource / Simulator    RapPacer / asyncio UDP

Pieces:

- :mod:`repro.service.protocol` -- the datagram wire format
  (HELLO/WELCOME/DATA/ACK/FIN frames, struct-packed hot path).
- :mod:`repro.service.pacing` -- a sans-IO RAP-style AIMD pacer
  (additive increase, hole/timeout loss detection, one backoff per
  congestion event) clocked by the caller.
- :mod:`repro.service.impairment` -- a seeded loopback loss/delay/
  token-bucket shim so CI can script congestion without root/netem.
- :mod:`repro.service.server` -- :class:`StreamingService`, the asyncio
  datagram server: one :class:`~repro.server.core.SessionCore` +
  :class:`~repro.service.pacing.RapPacer` + bounded send queue per
  session, graceful FIN teardown, FlightRecorder/MetricsRegistry sinks.
- :mod:`repro.service.client` -- the async load-generator fleet:
  hundreds of concurrent sessions, each ACKing through the impairment
  shim and playing received data through the simulator's own
  :class:`~repro.media.playout.PlayoutBuffer` for identical QoE
  accounting.
- :mod:`repro.service.results` -- folds fleet outcomes into the same
  :class:`~repro.scenario.result.ScenarioResult` shape simulated
  scenarios produce, rendered through the existing report path.
- :mod:`repro.service.sanitizer` -- a runtime loop-stall monitor
  (callback-lag histogram plus leaked-task census), the dynamic
  complement of the RL013/RL015 static rules.
- :mod:`repro.service.cli` -- the ``repro-serve`` / ``repro-load``
  console entry points.

This is the one package where wall-clock time and asyncio timers are
legitimate (RL001 carves out the ``service`` zone); randomness remains
seeded via :mod:`repro.sim.rng`.
"""

from repro.service.impairment import Impairment, ImpairmentConfig
from repro.service.pacing import PacerActions, RapPacer
from repro.service.results import fleet_result, render_fleet_report
from repro.service.sanitizer import LoopSanitizer, SanitizerConfig
from repro.service.server import ServiceConfig, StreamingService
from repro.service.client import LoadFleet, LoadSessionResult

__all__ = [
    "Impairment",
    "ImpairmentConfig",
    "LoopSanitizer",
    "PacerActions",
    "RapPacer",
    "SanitizerConfig",
    "ServiceConfig",
    "StreamingService",
    "LoadFleet",
    "LoadSessionResult",
    "fleet_result",
    "render_fleet_report",
]
