"""Scripted loopback impairment: loss, delay, jitter, token bucket.

CI machines cannot ``tc netem``; the load generator instead impairs
traffic *in process*, at the receive path of each client session. Every
arriving frame is run through :meth:`Impairment.admit`, which answers
"deliver after this many extra seconds" or "drop" from three composable
stages:

1. **token bucket** (``rate_limit`` bytes/s, ``bucket_depth`` burst):
   frames queue behind the bucket's refill, modelling a constrained
   last-mile link; a backlog beyond ``max_backlog`` seconds tail-drops —
   exactly the congestion signal RAP's loss detection needs.
2. **random loss** (``loss_rate``): i.i.d. drops from a seeded stream.
3. **delay + jitter**: fixed one-way ``delay`` plus a uniform draw in
   ``[0, jitter]`` — the netem shape.

Randomness comes from a :class:`~repro.sim.rng.SeededRNG` stream, so a
fleet's loss *pattern* is reproducible per (seed, session); arrival
times are wall-clock and therefore not bit-stable, which is fine — the
service path measures throughput envelopes, not golden traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.rng import SeededRNG


@dataclass(frozen=True)
class ImpairmentConfig:
    """One session's scripted network conditions (all off by default)."""

    #: i.i.d. probability of dropping a frame.
    loss_rate: float = 0.0
    #: Fixed extra one-way delay in seconds.
    delay: float = 0.0
    #: Uniform random extra delay in [0, jitter] seconds.
    jitter: float = 0.0
    #: Token-bucket drain rate in bytes/s (None: unlimited).
    rate_limit: Optional[float] = None
    #: Token-bucket burst allowance in bytes.
    bucket_depth: float = 8000.0
    #: Seconds of queueing behind the bucket before tail drop.
    max_backlog: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay/jitter cannot be negative")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive")
        if self.bucket_depth <= 0:
            raise ValueError("bucket_depth must be positive")
        if self.max_backlog <= 0:
            raise ValueError("max_backlog must be positive")

    @property
    def active(self) -> bool:
        """Does this config perturb traffic at all?"""
        return (self.loss_rate > 0 or self.delay > 0 or self.jitter > 0
                or self.rate_limit is not None)


class Impairment:
    """Stateful per-session shim applying an :class:`ImpairmentConfig`."""

    def __init__(self, config: ImpairmentConfig, rng: SeededRNG,
                 now: float = 0.0) -> None:
        self.config = config
        self.rng = rng
        self._tokens = config.bucket_depth
        self._last_refill = now
        self.dropped_random = 0
        self.dropped_backlog = 0
        self.delivered = 0

    def admit(self, nbytes: int, now: float) -> Optional[float]:
        """Extra delivery delay in seconds, or ``None`` to drop."""
        cfg = self.config
        queue_delay = 0.0
        if cfg.rate_limit is not None:
            elapsed = max(0.0, now - self._last_refill)
            self._last_refill = now
            self._tokens = min(cfg.bucket_depth,
                               self._tokens + elapsed * cfg.rate_limit)
            backlog = max(0.0, -(self._tokens - nbytes)) / cfg.rate_limit
            if backlog > cfg.max_backlog:
                self.dropped_backlog += 1
                return None
            self._tokens -= nbytes
            queue_delay = backlog
        if cfg.loss_rate > 0 and self.rng.random() < cfg.loss_rate:
            self.dropped_random += 1
            return None
        jitter = self.rng.uniform(0.0, cfg.jitter) if cfg.jitter > 0 else 0.0
        self.delivered += 1
        return queue_delay + cfg.delay + jitter
