"""The async load-generator fleet.

Each :class:`LoadClient` is one receiving session on its own connected
UDP socket: it handshakes (HELLO/WELCOME), runs every arriving DATA
frame through a scripted :class:`~repro.service.impairment.Impairment`
shim, plays admitted frames through the simulator's own
:class:`~repro.media.playout.PlayoutBuffer` (identical QoE accounting:
stalls, startup time, gap bytes), ACKs with the frame's echoed
timestamp, and tears down with FIN/FIN_ACK — recovering the server's
adapter decision summary so a service run reports the same
add/drop/efficiency numbers a simulated run does.

:class:`LoadFleet` fans out hundreds of such sessions concurrently with
staggered starts; per-session randomness (the impairment's loss/jitter
draws) is a :meth:`~repro.sim.rng.SeededRNG.spawn` of one fleet seed,
so a fleet's loss *pattern* is reproducible even though wall-clock
arrival times are not.

With ``trace_spans`` on, the fleet carries a shared
:class:`~repro.telemetry.tracing.SpanRecorder` and derives one
deterministic :class:`~repro.telemetry.tracing.TraceContext` per client
from the fleet seed. Each client sends its context in the HELLO options
(:data:`repro.service.protocol.TRACE_KEY`), so the server's spans for
the same session land under the *same* trace id — merging both
recorders yields one coherent distributed trace per session.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

from repro.core.metrics import DropCause, DropEvent, QualityMetrics
from repro.media.playout import PlayoutBuffer, PlayoutStats
from repro.server.session import SessionResult
from repro.service import protocol
from repro.service.impairment import Impairment, ImpairmentConfig
from repro.sim.rng import SeededRNG, make_rng
from repro.sim.trace import Tracer
from repro.telemetry.tracing import SpanRecorder, TraceContext

#: How long to wait for a WELCOME / FIN_ACK before retransmitting.
HANDSHAKE_TIMEOUT = 0.5
HANDSHAKE_RETRIES = 10


def metrics_from_summary(summary: dict) -> QualityMetrics:
    """Rebuild the server's :class:`QualityMetrics` from a FIN_ACK body."""
    metrics = QualityMetrics()
    for time, layer in summary.get("adds", []):
        metrics.record_add(time, layer)
    for (time, layer, cause, buf_drop, buf_total, required,
         drainable) in summary.get("drops", []):
        metrics.record_drop(DropEvent(
            time=time, layer=layer, buf_drop=buf_drop,
            buf_total=buf_total, required=required,
            cause=DropCause(cause), drainable=drainable))
    metrics.startup_latency = summary.get("startup_latency")
    return metrics


@dataclass
class LoadSessionResult:
    """One load session's outcome, shaped for the existing report path."""

    label: str
    session_id: int
    duration: float
    bytes_received: int = 0
    packets_received: int = 0
    acks_sent: int = 0
    dropped_random: int = 0
    dropped_backlog: int = 0
    queue_dropped: int = 0
    tracer: Tracer = field(default_factory=Tracer)
    playout: PlayoutStats = field(default_factory=PlayoutStats)
    server_summary: dict = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def mean_rate(self) -> float:
        """Mean received goodput in bytes/s."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_received / self.duration

    def to_session_result(self) -> SessionResult:
        """The same shape a simulated :class:`StreamingSession` yields."""
        return SessionResult(
            tracer=self.tracer,
            metrics=metrics_from_summary(self.server_summary),
            playout=self.playout,
            duration=self.duration,
            telemetry_enabled=True,
        )


class LoadClient(asyncio.DatagramProtocol):
    """One receiving session on its own connected datagram socket."""

    def __init__(
        self,
        host: str,
        port: int,
        label: str,
        duration: float,
        impairment: Optional[ImpairmentConfig] = None,
        rng: Optional[SeededRNG] = None,
        nonce: int = 0,
        sample_period: float = 0.1,
        trace: Optional[TraceContext] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.label = label
        self.duration = duration
        self.nonce = nonce
        self.sample_period = sample_period
        impairment = impairment or ImpairmentConfig()
        self.impairment = (
            Impairment(impairment, rng or make_rng(0))
            if impairment.active else None)
        self.trace = trace
        self._span = (spans.span_hook(label, trace)
                      if spans is not None and trace is not None else None)

        self.transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._closed = False
        self.session_id: Optional[int] = None
        self.session_config: dict = {}
        self.playout: Optional[PlayoutBuffer] = None
        self.tracer = Tracer()
        self.bytes_received = 0
        self.packets_received = 0
        self.acks_sent = 0
        self._last_sample_t = 0.0
        self._last_sample_bytes = 0
        self._last_sample_packets = 0
        self._last_seq = -1
        self._welcome: Optional[asyncio.Future] = None
        self._fin_ack: Optional[asyncio.Future] = None

    def _now(self) -> float:
        assert self._loop is not None
        return self._loop.time() - self._t0

    # ------------------------------------------------------------- protocol

    def connection_made(self, transport) -> None:
        self.transport = transport

    def connection_lost(self, exc) -> None:
        self.transport = None

    def error_received(self, exc) -> None:
        pass

    def _resolve(self, fut: Optional[asyncio.Future],
                 value: object) -> None:
        if fut is not None and not fut.done():
            fut.set_result(value)

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        try:
            frame = protocol.decode(data)
        except protocol.ProtocolError:
            return
        if isinstance(frame, protocol.DataFrame):
            self._on_data(frame)
        elif isinstance(frame, protocol.WelcomeFrame):
            self._resolve(self._welcome, frame)
        elif isinstance(frame, protocol.RejectFrame):
            self._resolve(self._welcome, frame)
        elif isinstance(frame, protocol.FinAckFrame):
            self._resolve(self._fin_ack, frame)

    # ----------------------------------------------------------- data path

    def _on_data(self, frame: protocol.DataFrame) -> None:
        if self._closed or frame.session_id != self.session_id:
            return
        now = self._now()
        if self.impairment is None:
            self._deliver(frame, now)
            return
        delay = self.impairment.admit(frame.size, now)
        if delay is None:
            return  # dropped: the missing ACK is the loss signal
        if delay <= 0:
            self._deliver(frame, now)
        else:
            assert self._loop is not None
            self._loop.call_later(
                delay, self._deliver, frame, now + delay)

    def _deliver(self, frame: protocol.DataFrame, when: float) -> None:
        if self._closed or self.transport is None:
            return
        if self.playout is None:
            self.playout = PlayoutBuffer(
                layer_rate=self.session_config["layer_rate"],
                max_layers=self.session_config["max_layers"],
                playout_start=(
                    when + self.session_config["startup_delay"]),
                on_event=(self._playout_event
                          if self._span is not None else None),
            )
        self.playout.on_packet(when, frame.layer, frame.size,
                               server_active=frame.active)
        self.bytes_received += frame.size
        self.packets_received += 1
        self._last_seq = frame.seq
        self.transport.sendto(protocol.encode_ack(
            frame.session_id, frame.seq, frame.send_ts))
        self.acks_sent += 1

    def _playout_event(self, when: float, kind: str, fields: dict) -> None:
        """Playout QoE events -> client spans (stalls become intervals)."""
        span = self._span
        if span is None:
            return
        if kind == "stall_end":
            span(when - fields["duration"], when, "client.stall", fields)
        else:
            span(when, when, f"client.{kind}", fields)

    def _sample(self) -> None:
        now = self._now()
        if now <= self._last_sample_t:
            return
        if self.playout is not None:
            self.playout.advance(now)
            layers = float(self.playout.active_layers)
        else:
            layers = 0.0
        rate = ((self.bytes_received - self._last_sample_bytes)
                / (now - self._last_sample_t))
        self.tracer.record("layers", now, layers)
        self.tracer.record("rate", now, rate)
        span = self._span
        if span is not None:
            span(self._last_sample_t, now, "client.recv", {
                "bytes": self.bytes_received - self._last_sample_bytes,
                "packets": (self.packets_received
                            - self._last_sample_packets),
                "rate": rate,
                "layers": layers,
                "last_seq": self._last_seq,
            })
        self._last_sample_t = now
        self._last_sample_bytes = self.bytes_received
        self._last_sample_packets = self.packets_received

    # ------------------------------------------------------------ lifecycle

    async def _request(self, frame: bytes, fut: asyncio.Future,
                       what: str) -> object:
        assert self.transport is not None
        for _ in range(HANDSHAKE_RETRIES):
            self.transport.sendto(frame)
            try:
                return await asyncio.wait_for(
                    asyncio.shield(fut), HANDSHAKE_TIMEOUT)
            except asyncio.TimeoutError:
                continue
        raise TimeoutError(f"no {what} after {HANDSHAKE_RETRIES} tries")

    async def run(self) -> LoadSessionResult:
        """Handshake, receive for ``duration`` seconds, tear down."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._t0 = loop.time()
        self._welcome = loop.create_future()
        self._fin_ack = loop.create_future()
        await loop.create_datagram_endpoint(
            lambda: self, remote_addr=(self.host, self.port))
        result = LoadSessionResult(
            label=self.label, session_id=-1, duration=self.duration,
            tracer=self.tracer)
        options: dict = {}
        if self.trace is not None:
            options[protocol.TRACE_KEY] = self.trace.to_wire()
        try:
            try:
                hello_t = self._now()
                reply = await self._request(
                    protocol.encode_hello(self.nonce, options),
                    self._welcome, "WELCOME")
            except TimeoutError as exc:
                result.error = str(exc)
                return result
            if isinstance(reply, protocol.RejectFrame):
                result.error = f"rejected: {reply.reason}"
                return result
            assert isinstance(reply, protocol.WelcomeFrame)
            self.session_id = reply.session_id
            self.session_config = reply.config
            result.session_id = reply.session_id
            span = self._span
            if span is not None:
                span(hello_t, self._now(), "client.handshake",
                     {"session_id": reply.session_id})

            end = self._now() + self.duration
            while True:
                remaining = end - self._now()
                if remaining <= 0:
                    break
                await asyncio.sleep(min(self.sample_period, remaining))
                self._sample()

            self._closed = True  # stop ACKing; quiesce before FIN
            try:
                fin_ack = await self._request(
                    protocol.encode_fin(self.session_id),
                    self._fin_ack, "FIN_ACK")
            except TimeoutError as exc:
                result.error = str(exc)
                return result
            assert isinstance(fin_ack, protocol.FinAckFrame)
            result.server_summary = fin_ack.summary
        finally:
            # Last-writer-wins flag handoff; both writers set True.
            self._closed = True  # repro-lint: disable=RL014
            if self.transport is not None:
                self.transport.close()
            result.bytes_received = self.bytes_received
            result.packets_received = self.packets_received
            result.acks_sent = self.acks_sent
            if self.impairment is not None:
                result.dropped_random = self.impairment.dropped_random
                result.dropped_backlog = self.impairment.dropped_backlog
            if self.playout is not None:
                result.playout = self.playout.stats
            span = self._span
            if span is not None:
                teardown = self._now()
                if self.playout is not None and self.playout.stalled:
                    # A stall still open at teardown never saw stall_end.
                    span(self.playout.stall_began, teardown,
                         "client.stall", {"open": True})
                span(0.0, teardown, "client.session", {
                    "session_id": result.session_id,
                    "bytes": self.bytes_received,
                    "packets": self.packets_received,
                    "acks": self.acks_sent,
                    "stalls": result.playout.stall_count,
                    "error": result.error,
                })
        return result


class LoadFleet:
    """Many concurrent load sessions against one service."""

    def __init__(
        self,
        host: str,
        port: int,
        sessions: int = 10,
        duration: float = 10.0,
        impairment: Optional[ImpairmentConfig] = None,
        seed: int = 0,
        spread: float = 1.0,
        sample_period: float = 0.1,
        trace_spans: bool = False,
        span_capacity: int = 65536,
    ) -> None:
        if sessions <= 0:
            raise ValueError("sessions must be positive")
        self.host = host
        self.port = port
        self.sessions = sessions
        self.duration = duration
        self.impairment = impairment or ImpairmentConfig()
        self.seed = seed
        self.spread = spread
        self.sample_period = sample_period
        #: Shared across all clients; trace ids derive from the fleet
        #: seed so reruns produce the same id per client index.
        self.spans = SpanRecorder(capacity=span_capacity,
                                  enabled=trace_spans)

    async def run(self) -> list[LoadSessionResult]:
        """Run the whole fleet; one result per session, in index order."""
        root = make_rng(self.seed)

        async def one(index: int) -> LoadSessionResult:
            # Stagger starts across ``spread`` seconds so hundreds of
            # HELLOs do not land in one event-loop tick.
            await asyncio.sleep(self.spread * index / self.sessions)
            trace = (TraceContext.derive(self.seed, "fleet", index)
                     if self.spans.enabled else None)
            client = LoadClient(
                self.host, self.port,
                label=f"load{index}",
                duration=self.duration,
                impairment=self.impairment,
                rng=root.spawn(f"load{index}"),
                nonce=index,
                sample_period=self.sample_period,
                trace=trace,
                spans=self.spans,
            )
            return await client.run()

        gathered = await asyncio.gather(
            *(one(i) for i in range(self.sessions)),
            return_exceptions=True)
        results: list[LoadSessionResult] = []
        for index, item in enumerate(gathered):
            if isinstance(item, BaseException):
                results.append(LoadSessionResult(
                    label=f"load{index}", session_id=-1,
                    duration=self.duration,
                    error=f"{type(item).__name__}: {item}"))
            else:
                results.append(item)
        return results
