"""Datagram wire format for the streaming service.

One UDP datagram carries exactly one frame. The hot-path frames (DATA,
ACK) are fixed-layout ``struct`` packs; the rare control frames (HELLO,
WELCOME, FIN_ACK, REJECT) carry a compact-JSON body so the handshake can
grow fields without a version bump.

Layout (network byte order)::

    header   !HBB   magic=0x5241 ("RA"), version, frame type   (4 bytes)
    HELLO    header + !I nonce + JSON options
    WELCOME  header + !I session_id + JSON session config
    DATA     header + !IIBBd session_id, seq, layer, active, send_ts
             + zero padding to the session's packet_size
    ACK      header + !IId session_id, acked_seq, echo_ts
    FIN      header + !I session_id
    FIN_ACK  header + !I session_id + JSON server-side session summary
    REJECT   header + JSON reason

DATA padding makes the on-wire size equal the model's nominal
``packet_size``, so loopback byte rates match what the adapter's math
assumes. ``send_ts`` is the sender's service-relative clock; the client
echoes it in ACKs (``echo_ts``) so the server derives RTT samples
without keeping per-packet state beyond its outstanding map.

Distributed-tracing context rides the JSON control frames, never the
hot path: a traced client puts ``{"trace": {"trace_id", "span_id"}}``
(see :data:`TRACE_KEY`) in its HELLO ``options``, the server adopts it
and echoes it in the WELCOME ``config``. DATA/ACK frames stay binary —
they correlate to the trace through ``session_id`` + ``seq``, which
both ends already carry. No version bump: untraced peers simply omit
the key.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Union

from repro.telemetry.tracing import TRACE_OPTION

MAGIC = 0x5241
VERSION = 1

#: JSON key under which HELLO options / WELCOME config carry the trace
#: context (shared with :mod:`repro.telemetry.tracing`).
TRACE_KEY = TRACE_OPTION

HELLO = 1
WELCOME = 2
DATA = 3
ACK = 4
FIN = 5
FIN_ACK = 6
REJECT = 7

_HEADER = struct.Struct("!HBB")
_DATA = struct.Struct("!IIBBd")
_ACK = struct.Struct("!IId")
_SESSION = struct.Struct("!I")

#: Bytes of a DATA frame that are header, not padding.
DATA_OVERHEAD = _HEADER.size + _DATA.size
#: Smallest packet_size the service accepts (room for the DATA header).
MIN_PACKET_SIZE = DATA_OVERHEAD

_JSON_SEPARATORS = (",", ":")


class ProtocolError(ValueError):
    """A datagram that is not a well-formed service frame."""


@dataclass(frozen=True)
class HelloFrame:
    nonce: int
    options: dict = field(default_factory=dict)


@dataclass(frozen=True)
class WelcomeFrame:
    session_id: int
    config: dict = field(default_factory=dict)


@dataclass(frozen=True)
class DataFrame:
    session_id: int
    seq: int
    layer: int
    active: int
    send_ts: float
    size: int  # nominal on-wire size including padding


@dataclass(frozen=True)
class AckFrame:
    session_id: int
    acked_seq: int
    echo_ts: float


@dataclass(frozen=True)
class FinFrame:
    session_id: int


@dataclass(frozen=True)
class FinAckFrame:
    session_id: int
    summary: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RejectFrame:
    reason: str


Frame = Union[
    HelloFrame, WelcomeFrame, DataFrame, AckFrame,
    FinFrame, FinAckFrame, RejectFrame,
]


def _json_body(payload: dict) -> bytes:
    # Control frames only (HELLO/WELCOME/FIN): DATA and ACK use struct.
    # The hot-path reachability heuristic cannot see frame-type dispatch.
    return json.dumps(  # repro-lint: disable=RL013
        payload, sort_keys=True, separators=_JSON_SEPARATORS).encode()


def _parse_json(body: bytes, what: str) -> dict:
    try:
        # Control frames only; DATA/ACK decode goes through struct.
        out = json.loads(body.decode())  # repro-lint: disable=RL013
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad {what} body: {exc}") from exc
    if not isinstance(out, dict):
        raise ProtocolError(f"bad {what} body: expected object")
    return out


# ------------------------------------------------------------------ encode


def encode_hello(nonce: int, options: dict) -> bytes:
    return (_HEADER.pack(MAGIC, VERSION, HELLO)
            + _SESSION.pack(nonce) + _json_body(options))


def encode_welcome(session_id: int, config: dict) -> bytes:
    return (_HEADER.pack(MAGIC, VERSION, WELCOME)
            + _SESSION.pack(session_id) + _json_body(config))


def encode_data(session_id: int, seq: int, layer: int, active: int,
                send_ts: float, size: int) -> bytes:
    if size < DATA_OVERHEAD:
        raise ProtocolError(
            f"DATA size {size} below frame overhead {DATA_OVERHEAD}")
    head = (_HEADER.pack(MAGIC, VERSION, DATA)
            + _DATA.pack(session_id, seq, layer, active, send_ts))
    return head + b"\x00" * (size - len(head))


def encode_ack(session_id: int, acked_seq: int, echo_ts: float) -> bytes:
    return (_HEADER.pack(MAGIC, VERSION, ACK)
            + _ACK.pack(session_id, acked_seq, echo_ts))


def encode_fin(session_id: int) -> bytes:
    return _HEADER.pack(MAGIC, VERSION, FIN) + _SESSION.pack(session_id)


def encode_fin_ack(session_id: int, summary: dict) -> bytes:
    return (_HEADER.pack(MAGIC, VERSION, FIN_ACK)
            + _SESSION.pack(session_id) + _json_body(summary))


def encode_reject(reason: str) -> bytes:
    return (_HEADER.pack(MAGIC, VERSION, REJECT)
            + _json_body({"reason": reason}))


# ------------------------------------------------------------------ decode


def decode(datagram: bytes) -> Frame:
    """Parse one datagram; raises :class:`ProtocolError` when malformed."""
    if len(datagram) < _HEADER.size:
        raise ProtocolError(f"short frame ({len(datagram)} bytes)")
    magic, version, ftype = _HEADER.unpack_from(datagram)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported version {version}")
    body = datagram[_HEADER.size:]
    if ftype == DATA:
        if len(body) < _DATA.size:
            raise ProtocolError("truncated DATA frame")
        session_id, seq, layer, active, send_ts = _DATA.unpack_from(body)
        return DataFrame(session_id, seq, layer, active, send_ts,
                         size=len(datagram))
    if ftype == ACK:
        if len(body) != _ACK.size:
            raise ProtocolError("malformed ACK frame")
        session_id, acked_seq, echo_ts = _ACK.unpack(body)
        return AckFrame(session_id, acked_seq, echo_ts)
    if ftype == HELLO:
        if len(body) < _SESSION.size:
            raise ProtocolError("truncated HELLO frame")
        (nonce,) = _SESSION.unpack_from(body)
        return HelloFrame(nonce, _parse_json(body[_SESSION.size:], "HELLO"))
    if ftype == WELCOME:
        if len(body) < _SESSION.size:
            raise ProtocolError("truncated WELCOME frame")
        (session_id,) = _SESSION.unpack_from(body)
        return WelcomeFrame(
            session_id, _parse_json(body[_SESSION.size:], "WELCOME"))
    if ftype == FIN:
        if len(body) != _SESSION.size:
            raise ProtocolError("malformed FIN frame")
        (session_id,) = _SESSION.unpack(body)
        return FinFrame(session_id)
    if ftype == FIN_ACK:
        if len(body) < _SESSION.size:
            raise ProtocolError("truncated FIN_ACK frame")
        (session_id,) = _SESSION.unpack_from(body)
        return FinAckFrame(
            session_id, _parse_json(body[_SESSION.size:], "FIN_ACK"))
    if ftype == REJECT:
        payload = _parse_json(body, "REJECT")
        reason = payload.get("reason")
        if not isinstance(reason, str):
            raise ProtocolError("REJECT without a reason")
        return RejectFrame(reason)
    raise ProtocolError(f"unknown frame type {ftype}")
